"""``python -m repro.analysis`` runs the invariant linter (see
:mod:`repro.analysis.lint`); the analytical model lives in the sibling
modules of this package and has no CLI of its own."""

import sys

from repro.analysis.lint.cli import main

if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Output was piped into a pager/head that quit early.
        sys.exit(0)
