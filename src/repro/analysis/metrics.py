"""The four performance metrics of Sec. 4.1, as standalone evaluators.

Each function builds (or accepts) a :class:`~repro.analysis.ring_model.RingModel`,
runs the recursion at one broadcast probability, and extracts one metric:

======================================  =============  ==========================
function                                paper metric   figure
======================================  =============  ==========================
:func:`reachability_at_latency`         metric 1       Fig. 4 (max) / Fig. 8 (sim)
:func:`latency_at_reachability`         metric 3       Fig. 5 (min) / Fig. 9 (sim)
:func:`energy_at_reachability`          metric 4       Fig. 6 (min) / Fig. 10 (sim)
:func:`reachability_at_energy`          metric 5       Fig. 7 (max) / Fig. 11 (sim)
======================================  =============  ==========================

Metrics 2 and 6 (minimizing energy or latency under a latency/energy
constraint) are excluded for the paper's reason: their optimum is the
degenerate "never broadcast".

Latency-constrained evaluation truncates the recursion at the constraint;
the other metrics run the wave to quiescence (bounded by ``max_phases``).
"""

from __future__ import annotations

import math

from repro.analysis.config import AnalysisConfig
from repro.analysis.ring_model import RingModel
from repro.utils.validation import check_positive, check_positive_int

__all__ = [
    "reachability_at_latency",
    "latency_at_reachability",
    "energy_at_reachability",
    "reachability_at_energy",
]

#: Phase budget for run-to-quiescence metrics.  At the paper's smallest
#: probabilities the wave takes tens of phases to die; 200 is far past
#: anything observable.
QUIESCENCE_PHASES = 200


def _model(config_or_model: AnalysisConfig | RingModel) -> RingModel:
    if isinstance(config_or_model, RingModel):
        return config_or_model
    return RingModel(config_or_model)


def reachability_at_latency(
    config: AnalysisConfig | RingModel, p: float, latency: float
) -> float:
    """Metric 1: reachability achieved within ``latency`` time phases."""
    latency = check_positive("latency", latency)
    model = _model(config)
    trace = model.run(p, max_phases=max(1, math.ceil(latency)))
    return trace.reachability_after(latency)


def latency_at_reachability(
    config: AnalysisConfig | RingModel,
    p: float,
    reachability: float,
    *,
    max_phases: int = QUIESCENCE_PHASES,
) -> float:
    """Metric 3: fractional phases needed for a reachability target.

    Raises :class:`~repro.errors.InfeasibleConstraintError` when the
    target is unattainable at this ``(p, rho)`` (plotted as gaps in
    Fig. 5).
    """
    max_phases = check_positive_int("max_phases", max_phases)
    model = _model(config)
    trace = model.run(p, max_phases=max_phases)
    return trace.latency_to(reachability)


def energy_at_reachability(
    config: AnalysisConfig | RingModel,
    p: float,
    reachability: float,
    *,
    max_phases: int = QUIESCENCE_PHASES,
) -> float:
    """Metric 4: expected broadcasts spent reaching a reachability target."""
    max_phases = check_positive_int("max_phases", max_phases)
    model = _model(config)
    trace = model.run(p, max_phases=max_phases)
    return trace.broadcasts_to(reachability)


def reachability_at_energy(
    config: AnalysisConfig | RingModel,
    p: float,
    budget: float,
    *,
    max_phases: int = QUIESCENCE_PHASES,
) -> float:
    """Metric 5: reachability achieved within a broadcast budget."""
    budget = check_positive("budget", budget)
    max_phases = check_positive_int("max_phases", max_phases)
    model = _model(config)
    trace = model.run(p, max_phases=max_phases)
    return trace.reachability_within_energy(budget)
