"""Extending the analytical framework to the other broadcast families.

The paper's future work (Sec. 2) names the extension of its analysis to
the area-based and neighbor-knowledge schemes.  The key observation that
makes a first-order extension possible: the ring recursion only sees a
scheme through *how many freshly informed nodes relay* — the
``g(x) * p`` term.  Any suppression scheme whose relay decision is
(approximately) independent of position therefore has a PB_CAM
*surrogate*: probability-based broadcast at the scheme's effective
relay fraction ``p_eff``.

Two ways to obtain ``p_eff``:

* **closed form** where geometry gives one — for the distance (area-
  based) scheme, the informing sender is approximately area-uniform in
  the receiver's range disk, so
  ``P(relay) = P(dist >= t·r) = 1 - t^2`` (:func:`distance_effective_probability`);
* **measurement** for any scheme — run a few simulations and read the
  realized relay fraction off the energy ledger
  (:func:`measured_relay_fraction`), then model with that.

:func:`surrogate_model` packages the workflow and reports the surrogate
trace next to the simulated ground truth; the benchmark
``bench_extension_surrogates.py`` quantifies the approximation error per
scheme.  The surrogate deliberately ignores the *spatial correlation*
of suppression decisions (distance-based relays sit near the wavefront,
which helps propagation), so it is a lower-fidelity model than the
native PB analysis — the error column is the honest price tag.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.config import AnalysisConfig
from repro.analysis.ring_model import RingModel
from repro.analysis.trace import BroadcastTrace
from repro.protocols.base import RelayPolicy
from repro.sim.config import SimulationConfig
from repro.sim.results import RunResult
from repro.sim.runner import replicate
from repro.utils.rng import SeedLike
from repro.utils.validation import check_positive_int, check_probability

__all__ = [
    "distance_effective_probability",
    "measured_relay_fraction",
    "SurrogateResult",
    "surrogate_model",
]


def distance_effective_probability(threshold: float, p: float = 1.0) -> float:
    """Closed-form relay fraction of the distance-based scheme.

    A receiver relays iff its informing sender lies at distance
    ``>= threshold * r``.  With nodes uniform in the plane, the sender's
    position within the receiver's range disk is approximately
    area-uniform, so the relay probability is the annulus fraction
    ``1 - threshold^2`` (times any extra thinning ``p``).
    """
    threshold = check_probability("threshold", threshold)
    p = check_probability("p", p)
    return p * (1.0 - threshold**2)


def measured_relay_fraction(
    policy: RelayPolicy,
    config: SimulationConfig,
    seed: SeedLike,
    *,
    replications: int = 6,
) -> float:
    """Realized relay fraction of any scheme, from simulation.

    ``(broadcasts - 1) / informed``: of the nodes that got the packet,
    how many re-broadcast it (the source's own transmission excluded
    from both sides).
    """
    check_positive_int("replications", replications)
    runs = replicate(policy, config, replications, seed)
    num = sum(r.broadcasts_total - 1 for r in runs)
    den = sum(int(r.new_informed_by_slot.sum()) for r in runs)
    if den == 0:
        return 0.0
    return num / den


@dataclass(frozen=True)
class SurrogateResult:
    """A suppression scheme modeled as PB_CAM at its effective probability.

    Attributes
    ----------
    scheme:
        The policy's name.
    p_eff:
        The effective relay fraction used.
    p_eff_source:
        ``"closed-form"`` or ``"measured"``.
    trace:
        The surrogate's analytical trace (a plain ring-model run).
    simulated:
        The ground-truth runs the surrogate is judged against (empty if
        validation was skipped).
    """

    scheme: str
    p_eff: float
    p_eff_source: str
    trace: BroadcastTrace
    simulated: list[RunResult] = field(default_factory=list, repr=False)

    def reachability_error(self, phases: float) -> float:
        """|surrogate - simulated| reachability within a phase budget."""
        if not self.simulated:
            raise ValueError("surrogate was built without validation runs")
        sim = float(
            np.mean([r.reachability_after_phases(phases) for r in self.simulated])
        )
        return abs(self.trace.reachability_after(phases) - sim)


def surrogate_model(
    policy: RelayPolicy,
    config: AnalysisConfig,
    seed: SeedLike = None,
    *,
    p_eff: float | None = None,
    replications: int = 6,
    validate: bool = True,
    max_phases: int = 60,
) -> SurrogateResult:
    """Model a suppression scheme analytically via its relay fraction.

    Parameters
    ----------
    policy:
        The scheme (any :class:`~repro.protocols.base.RelayPolicy`).
    config:
        The analytical network model.
    p_eff:
        Effective probability to use; ``None`` measures it from
        simulation (closed forms, where known, can be passed in).
    replications:
        Simulations for measuring and/or validating.
    validate:
        Keep the ground-truth runs on the result for error reporting.
    """
    from repro.utils.rng import as_seed_sequence

    sim_config = SimulationConfig(analysis=config)
    measure_seed, validate_seed = as_seed_sequence(seed).spawn(2)
    runs: list[RunResult] = []
    if p_eff is None:
        p_eff = measured_relay_fraction(
            policy, sim_config, measure_seed, replications=replications
        )
        source = "measured"
    else:
        p_eff = check_probability("p_eff", p_eff)
        source = "closed-form"
    if validate:
        runs = replicate(policy, sim_config, replications, validate_seed)
    trace = RingModel(config).run(p_eff, max_phases=max_phases)
    return SurrogateResult(
        scheme=policy.name,
        p_eff=float(p_eff),
        p_eff_source=source,
        trace=trace,
        simulated=runs,
    )
