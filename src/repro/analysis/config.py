"""Configuration of the analytical network model.

Mirrors the paper's network-model box in Fig. 1(b): a uniform deployment
on a circle of radius ``P*r`` with density ``delta``, communication
model CAM, broadcast primitive, and the phase/slot backoff of Sec. 4.2.
Everything downstream (ring model, metrics, optimizers, simulators) is
parameterized by one :class:`AnalysisConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Literal

import numpy as np

from repro.utils.validation import (
    check_in,
    check_positive,
    check_positive_int,
)

__all__ = ["AnalysisConfig"]

MuMethod = Literal["interpolate", "poisson"]


@dataclass(frozen=True)
class AnalysisConfig:
    """Parameters of the PB_CAM analytical model.

    Parameters
    ----------
    n_rings:
        The paper's ``P``: the field is a disk of radius ``P * radius``
        partitioned into ``P`` rings of width ``radius``.  Paper uses 5.
    rho:
        Node density expressed as the expected number of neighbors
        within transmission range, ``rho = delta * pi * r^2``
        (Sec. 4.2.3).  Paper sweeps 20..140.
    slots:
        Slots per time phase, the paper's ``s`` (paper uses 3).
    radius:
        Transmission radius ``r``.  The analysis is scale-free in ``r``;
        it only matters when comparing against a simulator deployment
        with physical units.
    quad_nodes:
        Gauss–Legendre node count for the radial integral of Eq. (4).
    mu_method:
        How ``mu`` is extended to the real-valued expected transmitter
        count ``g(x) * p``: ``"interpolate"`` (paper-faithful linear
        interpolation between integer ``K``) or ``"poisson"`` (model the
        count as Poisson; see DESIGN.md ablation 1).
    carrier_factor:
        Carrier-sense radius as a multiple of the transmission radius,
        used only by :class:`repro.analysis.carrier_model.CarrierRingModel`
        (Appendix A; paper assumes 2).
    """

    n_rings: int = 5
    rho: float = 60.0
    slots: int = 3
    radius: float = 1.0
    quad_nodes: int = 96
    mu_method: MuMethod = "interpolate"
    carrier_factor: float = 2.0

    def __post_init__(self) -> None:
        check_positive_int("n_rings", self.n_rings)
        check_positive("rho", self.rho)
        check_positive_int("slots", self.slots)
        check_positive("radius", self.radius)
        check_positive_int("quad_nodes", self.quad_nodes, minimum=2)
        check_in("mu_method", self.mu_method, ("interpolate", "poisson"))
        if self.carrier_factor < 1.0:
            raise ValueError(
                f"carrier_factor={self.carrier_factor} must be >= 1 "
                "(carrier-sense range cannot be shorter than transmission range)"
            )

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def delta(self) -> float:
        """Node density per unit area: ``rho / (pi r^2)``."""
        return self.rho / (np.pi * self.radius**2)

    @property
    def field_radius(self) -> float:
        """Radius of the sensor field, ``P * r``."""
        return self.n_rings * self.radius

    @property
    def n_nodes(self) -> float:
        """Expected node count ``N = delta * pi * (P r)^2 = rho * P^2``."""
        return self.rho * self.n_rings**2

    @property
    def carrier_radius(self) -> float:
        """Carrier-sense radius in the same units as ``radius``."""
        return self.carrier_factor * self.radius

    def with_rho(self, rho: float) -> "AnalysisConfig":
        """A copy of this configuration at a different density."""
        return replace(self, rho=rho)

    def with_(self, **changes) -> "AnalysisConfig":
        """A copy with arbitrary fields replaced (validated again)."""
        return replace(self, **changes)
