"""The PB_CAM analytical framework (paper Sec. 4).

This package is the paper's primary contribution: an analytical model of
probability-based broadcasting under the Collision Aware Model on a
uniform disk deployment, and optimizers for the four performance metrics
of Sec. 4.1.

Typical use::

    from repro.analysis import AnalysisConfig, RingModel, optimal_probability

    cfg = AnalysisConfig(n_rings=5, rho=100, slots=3)
    trace = RingModel(cfg).run(p=0.13, max_phases=5)
    trace.reachability_after(5)          # Fig. 4(a) point

    best = optimal_probability(cfg, metric="reachability_at_latency",
                               constraint=5)
    best.p, best.value                   # Fig. 4(b) point
"""

from repro.analysis.config import AnalysisConfig
from repro.analysis.ring_model import RingModel
from repro.analysis.carrier_model import CarrierRingModel
from repro.analysis.trace import BroadcastTrace
from repro.analysis.metrics import (
    energy_at_reachability,
    latency_at_reachability,
    reachability_at_energy,
    reachability_at_latency,
)
from repro.analysis.optimizer import (
    METRICS,
    OptimizationResult,
    TradeoffCurve,
    optimal_intensity,
    optimal_probability,
    sweep_metric,
    tradeoff_curve,
)
from repro.analysis.flooding import (
    flooding_cfm_summary,
    flooding_success_rate,
    flooding_trace,
)
from repro.analysis.refined import (
    DensityAwareCostModel,
    refined_flooding_summary,
    success_rate_vs_density,
)
from repro.analysis.extensions import (
    SurrogateResult,
    distance_effective_probability,
    measured_relay_fraction,
    surrogate_model,
)
from repro.analysis.sensitivity import (
    MismatchResult,
    RobustnessBand,
    density_mismatch_penalty,
    robust_probability_band,
)

__all__ = [
    "AnalysisConfig",
    "RingModel",
    "CarrierRingModel",
    "BroadcastTrace",
    "reachability_at_latency",
    "latency_at_reachability",
    "energy_at_reachability",
    "reachability_at_energy",
    "METRICS",
    "OptimizationResult",
    "TradeoffCurve",
    "optimal_intensity",
    "optimal_probability",
    "sweep_metric",
    "tradeoff_curve",
    "flooding_cfm_summary",
    "flooding_success_rate",
    "flooding_trace",
    "DensityAwareCostModel",
    "refined_flooding_summary",
    "success_rate_vs_density",
    "MismatchResult",
    "RobustnessBand",
    "density_mismatch_penalty",
    "robust_probability_band",
    "SurrogateResult",
    "distance_effective_probability",
    "measured_relay_fraction",
    "surrogate_model",
]
