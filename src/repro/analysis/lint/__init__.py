"""AST-based invariant linter for the repro codebase.

The guarantees the library documents — bit-identical re-runs from
provenance manifests, telemetry that never affects result identity,
loop-free hot paths — are contracts, not emergent properties.  This
package encodes them as mechanical checks over the Python ``ast`` so a
stray ``np.random.seed()`` or a telemetry field that participates in
dataclass equality fails CI instead of silently weakening a guarantee.

Pieces:

* :mod:`repro.analysis.lint.core` — :class:`Finding`, the rule
  registry, per-line suppression parsing
  (``# repro: allow(rule-id) — reason``), and the file/tree checker.
* :mod:`repro.analysis.lint.rules` — the invariant rules themselves.
* :mod:`repro.analysis.lint.baseline` — the committed-baseline
  mechanism for grandfathered findings (target: empty).
* :mod:`repro.analysis.lint.report` — text and JSON reporters.
* :mod:`repro.analysis.lint.cli` — ``python -m repro.analysis``.
"""

from repro.analysis.lint.baseline import Baseline, load_baseline, save_baseline
from repro.analysis.lint.core import (
    Finding,
    Rule,
    all_rules,
    check_paths,
    check_source,
    get_rule,
    register,
)
from repro.analysis.lint.report import render_json, render_text

__all__ = [
    "Finding",
    "Rule",
    "register",
    "get_rule",
    "all_rules",
    "check_source",
    "check_paths",
    "Baseline",
    "load_baseline",
    "save_baseline",
    "render_text",
    "render_json",
]
