"""``python -m repro.analysis`` / ``repro-lint`` — run the invariant linter.

Runs the per-module AST rules and the whole-program flow analyses
(seed provenance, determinism taint, effect contracts) in one pass.
Exit codes: 0 clean (or everything baselined/suppressed), 1 new
findings, 2 usage or I/O error.  Run from the repo root so the
path-scoped rules see ``src/repro/...`` paths::

    python -m repro.analysis src tests benchmarks
    python -m repro.analysis --format json src
    python -m repro.analysis --format sarif src > lint.sarif
    python -m repro.analysis --write-baseline src tests
    python -m repro.analysis --write-effects src
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.lint.baseline import (
    fingerprint_findings,
    load_baseline,
    save_baseline,
)
from repro.analysis.lint.core import (
    all_project_rules,
    all_rules,
    check_paths,
    iter_python_files,
)
from repro.analysis.lint.report import render_json, render_sarif, render_text

__all__ = ["main", "build_parser"]

DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples")
DEFAULT_BASELINE = "lint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "AST and whole-program dataflow invariant linter for the "
            "repro codebase."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files/directories to check (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file of grandfathered findings (default: {DEFAULT_BASELINE}; "
        "a missing file is an empty baseline)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file; every unsuppressed finding fails",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline file from the current findings and exit 0",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental analysis cache (.repro-lint-cache/)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="override the incremental cache directory",
    )
    parser.add_argument(
        "--write-effects",
        action="store_true",
        help="regenerate effects-manifest.json from inference and exit 0",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="RULE-ID",
        help="check only this rule (repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    rules = all_rules()
    project_rules = all_project_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.id:20s} {rule.summary}")
        for prule in project_rules:
            print(f"{prule.id:20s} [project] {prule.summary}")
        return 0
    if args.rule:
        known = {r.id for r in rules} | {r.id for r in project_rules}
        unknown = [r for r in args.rule if r not in known]
        if unknown:
            print(f"error: unknown rule id(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
        wanted = set(args.rule)
        rules = [r for r in rules if r.id in wanted]
        project_rules = [r for r in project_rules if r.id in wanted]

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    root = Path.cwd()

    if args.write_effects:
        from repro.analysis.flow.rules import (
            EFFECTS_MANIFEST_NAME,
            effects_manifest_for_paths,
        )

        manifest = effects_manifest_for_paths(
            args.paths,
            root=root,
            use_cache=not args.no_cache,
            cache_dir=args.cache_dir,
        )
        out = root / EFFECTS_MANIFEST_NAME
        out.write_text(json.dumps(manifest, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {len(manifest)} impure function(s) to {out.name}")
        return 0

    parse_errors: list[str] = []
    findings, unused = check_paths(
        args.paths,
        rules=rules,
        root=root,
        on_error=lambda f, exc: parse_errors.append(f"{f}: {exc.msg} (line {exc.lineno})"),
        project_rules=project_rules,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
    )
    files_checked = sum(1 for _ in iter_python_files(args.paths))
    for err in parse_errors:
        print(f"warning: skipped unparseable file {err}", file=sys.stderr)

    suppressed = [f for f in findings if f.suppressed]
    active = [f for f in findings if not f.suppressed]

    if args.write_baseline:
        baseline = save_baseline(args.baseline, active)
        print(f"wrote {len(baseline)} finding(s) to {args.baseline}")
        return 0

    try:
        baseline = load_baseline(args.baseline)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.no_baseline:
        baseline.fingerprints = set()

    new: list = []
    baselined: list = []
    for f, fp in fingerprint_findings(active):
        (baselined if fp in baseline else new).append(f)

    if args.format == "json":
        print(render_json(new, baselined, suppressed, files_checked=files_checked))
    elif args.format == "sarif":
        print(
            render_sarif(
                new,
                baselined,
                suppressed,
                rules=[*rules, *project_rules],
            )
        )
    else:
        print(
            render_text(
                new,
                baselined,
                suppressed,
                unused_suppressions=unused,
                files_checked=files_checked,
            )
        )
    return 1 if new else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
