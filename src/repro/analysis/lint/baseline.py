"""Committed-baseline support for grandfathered findings.

The baseline is a JSON file of finding fingerprints.  The linter fails
only on findings *not* in the baseline, so a rule can be introduced
before the last offender is fixed — but the repo's committed baseline
is empty and should stay that way; the mechanism exists so a future
rule rollout never has to choose between "land the rule" and "fix the
world in one commit".

Fingerprints are content-based (rule id + path + source snippet +
same-snippet occurrence index, see :meth:`Finding.fingerprint`), so
inserting unrelated lines above a grandfathered finding does not
resurrect it, while editing the offending line itself does.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.lint.core import Finding

__all__ = ["Baseline", "load_baseline", "save_baseline", "fingerprint_findings"]

_VERSION = 1


@dataclass
class Baseline:
    """A set of grandfathered finding fingerprints."""

    fingerprints: set[str] = field(default_factory=set)
    #: location annotations for humans reading the file; not consulted
    #: when matching (fingerprints are the identity).
    entries: list[dict[str, object]] = field(default_factory=list)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.fingerprints

    def __len__(self) -> int:
        return len(self.fingerprints)


def fingerprint_findings(findings: Iterable[Finding]) -> list[tuple[Finding, str]]:
    """Pair each finding with its occurrence-disambiguated fingerprint."""
    seen: dict[str, int] = {}
    out: list[tuple[Finding, str]] = []
    for f in findings:
        base = f"{f.rule}\x00{f.path}\x00{f.snippet}"
        occurrence = seen.get(base, 0)
        seen[base] = occurrence + 1
        out.append((f, f.fingerprint(occurrence)))
    return out


def load_baseline(path: str | Path) -> Baseline:
    """Load a baseline file; a missing file is an empty baseline."""
    p = Path(path)
    if not p.exists():
        return Baseline()
    doc = json.loads(p.read_text(encoding="utf-8"))
    if doc.get("version") != _VERSION:
        raise ValueError(
            f"unsupported baseline version {doc.get('version')!r} in {p}"
        )
    entries = list(doc.get("findings", []))
    return Baseline(
        fingerprints={str(e["fingerprint"]) for e in entries},
        entries=entries,
    )


def save_baseline(path: str | Path, findings: Sequence[Finding]) -> Baseline:
    """Write the current (unsuppressed) findings as the new baseline."""
    entries: list[dict[str, object]] = []
    for f, fp in fingerprint_findings(findings):
        entries.append(
            {
                "fingerprint": fp,
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "message": f.message,
            }
        )
    doc = {"version": _VERSION, "findings": entries}
    Path(path).write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return Baseline(
        fingerprints={str(e["fingerprint"]) for e in entries}, entries=entries
    )
