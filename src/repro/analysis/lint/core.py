"""Linter plumbing: findings, the rule registry, suppressions, checking.

A rule is a small object with an ``id``, a one-line ``summary``, a
path-scoping predicate (:meth:`Rule.applies`) and a :meth:`Rule.check`
that walks a parsed module and yields :class:`Finding` objects.  Rules
register themselves into a module-level registry via :func:`register`
so the CLI, the pytest hook and the self-tests all see the same set.

Suppressions are per-finding and must carry a reason::

    informed = np.append(informed, fresh)  # repro: allow(vec-object-dtype) — cold setup path

A suppression comment applies to findings on its own line, or — when it
is the entire line — to the first following line that holds code.  A
reason is mandatory; a bare ``# repro: allow(rule)`` does not suppress
(the finding survives, which is how you notice the malformed comment).
"""

from __future__ import annotations

import ast
import hashlib
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

__all__ = [
    "Finding",
    "Suppression",
    "ModuleContext",
    "Rule",
    "register",
    "get_rule",
    "all_rules",
    "check_source",
    "check_paths",
    "iter_python_files",
]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  #: repo-relative posix path
    line: int  #: 1-based source line
    col: int  #: 0-based column
    message: str
    snippet: str = ""  #: stripped source line, for stable fingerprints
    suppressed: bool = False
    suppress_reason: str = ""

    def fingerprint(self, occurrence: int = 0) -> str:
        """Content-based identity, stable under unrelated line drift.

        The line *number* is deliberately excluded: inserting code above
        a grandfathered finding must not turn it into a "new" one.  Two
        identical snippets in one file are told apart by ``occurrence``
        (their top-to-bottom index among same-fingerprint findings).
        """
        raw = f"{self.rule}\x00{self.path}\x00{self.snippet}\x00{occurrence}"
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"


#: Matches comments of the form ``repro: allow(rule-a, rule-b) — reason``
#: (reason mandatory; the dash may be an em/en dash or a plain hyphen).
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow\(\s*(?P<rules>[a-z0-9_*,\s-]+?)\s*\)\s*(?:[—–-]+\s*)?(?P<reason>.*)$"
)


@dataclass
class Suppression:
    """A parsed ``# repro: allow(...)`` comment."""

    line: int  #: line the comment sits on
    rules: tuple[str, ...]
    reason: str
    used: bool = False

    @property
    def valid(self) -> bool:
        return bool(self.reason.strip())

    def covers(self, rule_id: str) -> bool:
        return "*" in self.rules or rule_id in self.rules


def parse_suppressions(source: str) -> dict[int, Suppression]:
    """Map *effective* line number -> suppression.

    Only real ``COMMENT`` tokens count (a suppression example inside a
    docstring is documentation, not a suppression).  A comment on a code
    line guards that line; a comment that is the whole line guards the
    next non-blank, non-comment line.
    """
    lines = source.splitlines()
    out: dict[int, Suppression] = {}
    n = len(lines)
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return out
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        m = _SUPPRESS_RE.search(tok.string)
        if m is None:
            continue
        i = tok.start[0]
        rules = tuple(r.strip() for r in m.group("rules").split(",") if r.strip())
        sup = Suppression(line=i, rules=rules, reason=m.group("reason").strip())
        target = i
        if lines[i - 1].lstrip().startswith("#"):
            j = i  # comment-only line: guard the next code line
            while j < n:
                nxt = lines[j].strip()
                if nxt and not nxt.startswith("#"):
                    target = j + 1
                    break
                j += 1
        out[target] = sup
    return out


@dataclass
class ModuleContext:
    """Everything a rule needs to check one module."""

    path: str  #: repo-relative posix path
    tree: ast.Module
    lines: Sequence[str]
    suppressions: dict[int, Suppression] = field(default_factory=dict)

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(
        self, rule: str, node: ast.AST, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        sup = self.suppressions.get(line)
        suppressed = sup is not None and sup.valid and sup.covers(rule)
        if suppressed and sup is not None:
            sup.used = True
        return Finding(
            rule=rule,
            path=self.path,
            line=line,
            col=col,
            message=message,
            snippet=self.snippet(line),
            suppressed=suppressed,
            suppress_reason=sup.reason if (suppressed and sup is not None) else "",
        )


class Rule:
    """Base class for invariant rules.

    Subclasses set :attr:`id` and :attr:`summary`, optionally override
    :meth:`applies` for path scoping, and implement :meth:`check`.
    """

    id: str = ""
    summary: str = ""

    def applies(self, path: str) -> bool:
        return True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and add to the global registry."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return cls


def get_rule(rule_id: str) -> Rule:
    return _REGISTRY[rule_id]


def all_rules() -> list[Rule]:
    """Registered rules, sorted by id for stable output."""
    # Importing the rules module populates the registry on first use.
    from repro.analysis.lint import rules as _rules  # noqa: F401

    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def check_source(
    source: str,
    path: str,
    rules: Iterable[Rule] | None = None,
) -> list[Finding]:
    """Check one module's source text; returns findings incl. suppressed.

    ``path`` is the repo-relative posix path rules scope on; it need not
    exist on disk (the self-tests lint fixture snippets under synthetic
    paths like ``src/repro/sim/fake.py``).
    """
    selected = list(all_rules() if rules is None else rules)
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    ctx = ModuleContext(
        path=path,
        tree=tree,
        lines=lines,
        suppressions=parse_suppressions(source),
    )
    findings: list[Finding] = []
    for rule in selected:
        if rule.applies(path):
            findings.extend(rule.check(ctx))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Yield ``.py`` files under the given files/directories, sorted."""
    seen: set[Path] = set()
    for p in paths:
        root = Path(p)
        if root.is_file():
            candidates: Iterable[Path] = [root] if root.suffix == ".py" else []
        else:
            candidates = sorted(root.rglob("*.py"))
        for f in candidates:
            if "__pycache__" in f.parts or f in seen:
                continue
            seen.add(f)
            yield f


def relative_posix(path: Path, root: Path | None = None) -> str:
    """``path`` as a posix path relative to ``root`` (default: cwd)."""
    base = Path.cwd() if root is None else root
    try:
        rel = path.resolve().relative_to(base.resolve())
    except ValueError:
        rel = Path(os.path.relpath(path, base))
    return rel.as_posix()


def check_paths(
    paths: Sequence[str | Path],
    rules: Iterable[Rule] | None = None,
    root: Path | None = None,
    on_error: Callable[[Path, SyntaxError], None] | None = None,
) -> tuple[list[Finding], list[Suppression]]:
    """Check every Python file under ``paths``.

    Returns ``(findings, unused_suppressions)``; findings include
    suppressed ones (reporters and the baseline decide what counts).
    Unparseable files are reported through ``on_error`` and skipped —
    the linter must not crash on a file Python itself would reject,
    because CI runs it before the test suite.
    """
    selected = list(all_rules() if rules is None else rules)
    findings: list[Finding] = []
    unused: list[Suppression] = []
    for file in iter_python_files(paths):
        rel = relative_posix(file, root)
        try:
            source = file.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=rel)
        except SyntaxError as exc:
            if on_error is not None:
                on_error(file, exc)
            continue
        lines = source.splitlines()
        ctx = ModuleContext(
            path=rel,
            tree=tree,
            lines=lines,
            suppressions=parse_suppressions(source),
        )
        for rule in selected:
            if rule.applies(rel):
                findings.extend(rule.check(ctx))
        unused.extend(
            s for s in ctx.suppressions.values() if s.valid and not s.used
        )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, unused
