"""Linter plumbing: findings, the rule registry, suppressions, checking.

A rule is a small object with an ``id``, a one-line ``summary``, a
path-scoping predicate (:meth:`Rule.applies`) and a :meth:`Rule.check`
that walks a parsed module and yields :class:`Finding` objects.  Rules
register themselves into a module-level registry via :func:`register`
so the CLI, the pytest hook and the self-tests all see the same set.

Suppressions are per-finding and must carry a reason::

    informed = np.append(informed, fresh)  # repro: allow(vec-object-dtype) — cold setup path

A suppression comment applies to findings on its own line, or — when it
is the entire line — to the first following line that holds code.  A
reason is mandatory; a bare ``# repro: allow(rule)`` does not suppress
(the finding survives, which is how you notice the malformed comment).
"""

from __future__ import annotations

import ast
import hashlib
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

__all__ = [
    "Finding",
    "Suppression",
    "ModuleContext",
    "ProjectContext",
    "Rule",
    "ProjectRule",
    "register",
    "register_project",
    "get_rule",
    "all_rules",
    "all_project_rules",
    "check_source",
    "check_paths",
    "check_project_sources",
    "iter_python_files",
]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  #: repo-relative posix path
    line: int  #: 1-based source line
    col: int  #: 0-based column
    message: str
    snippet: str = ""  #: stripped source line, for stable fingerprints
    suppressed: bool = False
    suppress_reason: str = ""

    def fingerprint(self, occurrence: int = 0) -> str:
        """Content-based identity, stable under unrelated line drift.

        The line *number* is deliberately excluded: inserting code above
        a grandfathered finding must not turn it into a "new" one.  Two
        identical snippets in one file are told apart by ``occurrence``
        (their top-to-bottom index among same-fingerprint findings).
        """
        raw = f"{self.rule}\x00{self.path}\x00{self.snippet}\x00{occurrence}"
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"


#: Matches comments of the form ``repro: allow(rule-a, rule-b) — reason``
#: (reason mandatory; the dash may be an em/en dash or a plain hyphen).
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow\(\s*(?P<rules>[a-z0-9_*,\s-]+?)\s*\)\s*(?:[—–-]+\s*)?(?P<reason>.*)$"
)


@dataclass
class Suppression:
    """A parsed ``# repro: allow(...)`` comment."""

    line: int  #: line the comment sits on
    rules: tuple[str, ...]
    reason: str
    used: bool = False

    @property
    def valid(self) -> bool:
        return bool(self.reason.strip())

    def covers(self, rule_id: str) -> bool:
        return "*" in self.rules or rule_id in self.rules


def parse_suppressions(source: str) -> dict[int, Suppression]:
    """Map *effective* line number -> suppression.

    Only real ``COMMENT`` tokens count (a suppression example inside a
    docstring is documentation, not a suppression).  A comment on a code
    line guards that line; a comment that is the whole line guards the
    next non-blank, non-comment line.
    """
    lines = source.splitlines()
    out: dict[int, Suppression] = {}
    n = len(lines)
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return out
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        m = _SUPPRESS_RE.search(tok.string)
        if m is None:
            continue
        i = tok.start[0]
        rules = tuple(r.strip() for r in m.group("rules").split(",") if r.strip())
        sup = Suppression(line=i, rules=rules, reason=m.group("reason").strip())
        target = i
        if lines[i - 1].lstrip().startswith("#"):
            j = i  # comment-only line: guard the next code line
            while j < n:
                nxt = lines[j].strip()
                if nxt and not nxt.startswith("#"):
                    target = j + 1
                    break
                j += 1
        out[target] = sup
    return out


@dataclass
class ModuleContext:
    """Everything a rule needs to check one module."""

    path: str  #: repo-relative posix path
    tree: ast.Module
    lines: Sequence[str]
    suppressions: dict[int, Suppression] = field(default_factory=dict)
    source: str = ""  #: raw text (project rules feed it to the fact cache)

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(
        self, rule: str, node: ast.AST, message: str
    ) -> Finding:
        return self.finding_at(
            rule,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0),
            message,
        )

    def finding_at(
        self, rule: str, line: int, col: int, message: str
    ) -> Finding:
        sup = self.suppressions.get(line)
        suppressed = sup is not None and sup.valid and sup.covers(rule)
        if suppressed and sup is not None:
            sup.used = True
        return Finding(
            rule=rule,
            path=self.path,
            line=line,
            col=col,
            message=message,
            snippet=self.snippet(line),
            suppressed=suppressed,
            suppress_reason=sup.reason if (suppressed and sup is not None) else "",
        )


@dataclass
class ProjectContext:
    """Everything a whole-program rule needs: all module contexts.

    Project rules see every checked module at once (the flow analyses
    build a cross-module call graph), attach findings to individual
    files through the same suppression machinery as per-module rules,
    and share expensive intermediates through :attr:`memo` (the flow
    program — symbol table + call graph — is built once per check run,
    not once per rule).
    """

    modules: dict[str, ModuleContext]  #: repo-relative posix path -> ctx
    root: Path | None = None  #: repo root (manifest + cache locations)
    cache_dir: Path | None = None  #: override for the fact-cache dir
    use_cache: bool = True
    memo: dict = field(default_factory=dict)

    def finding(
        self, rule: str, path: str, line: int, col: int, message: str
    ) -> Finding:
        ctx = self.modules.get(path)
        if ctx is not None:
            return ctx.finding_at(rule, line, col, message)
        # findings on non-module artifacts (e.g. the effects manifest)
        return Finding(rule=rule, path=path, line=line, col=col, message=message)


class Rule:
    """Base class for invariant rules.

    Subclasses set :attr:`id` and :attr:`summary`, optionally override
    :meth:`applies` for path scoping, and implement :meth:`check`.
    """

    id: str = ""
    summary: str = ""

    def applies(self, path: str) -> bool:
        return True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError


class ProjectRule:
    """Base class for whole-program rules (one check over all modules)."""

    id: str = ""
    summary: str = ""

    def check_project(self, pctx: ProjectContext) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, Rule] = {}
_PROJECT_REGISTRY: dict[str, ProjectRule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and add to the global registry."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return cls


def register_project(cls: type[ProjectRule]) -> type[ProjectRule]:
    """Class decorator: instantiate and add to the project registry."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"project rule {cls.__name__} has no id")
    if rule.id in _PROJECT_REGISTRY or rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _PROJECT_REGISTRY[rule.id] = rule
    return cls


def get_rule(rule_id: str) -> Rule:
    return _REGISTRY[rule_id]


def all_rules() -> list[Rule]:
    """Registered rules, sorted by id for stable output."""
    # Importing the rules module populates the registry on first use.
    from repro.analysis.lint import rules as _rules  # noqa: F401

    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def all_project_rules() -> list[ProjectRule]:
    """Registered whole-program rules, sorted by id."""
    from repro.analysis.flow import rules as _flow_rules  # noqa: F401

    return [_PROJECT_REGISTRY[k] for k in sorted(_PROJECT_REGISTRY)]


def check_source(
    source: str,
    path: str,
    rules: Iterable[Rule] | None = None,
) -> list[Finding]:
    """Check one module's source text; returns findings incl. suppressed.

    ``path`` is the repo-relative posix path rules scope on; it need not
    exist on disk (the self-tests lint fixture snippets under synthetic
    paths like ``src/repro/sim/fake.py``).
    """
    selected = list(all_rules() if rules is None else rules)
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    ctx = ModuleContext(
        path=path,
        tree=tree,
        lines=lines,
        suppressions=parse_suppressions(source),
    )
    findings: list[Finding] = []
    for rule in selected:
        if rule.applies(path):
            findings.extend(rule.check(ctx))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Yield ``.py`` files under the given files/directories, sorted."""
    seen: set[Path] = set()
    for p in paths:
        root = Path(p)
        if root.is_file():
            candidates: Iterable[Path] = [root] if root.suffix == ".py" else []
        else:
            candidates = sorted(root.rglob("*.py"))
        for f in candidates:
            if "__pycache__" in f.parts or f in seen:
                continue
            seen.add(f)
            yield f


def relative_posix(path: Path, root: Path | None = None) -> str:
    """``path`` as a posix path relative to ``root`` (default: cwd)."""
    base = Path.cwd() if root is None else root
    try:
        rel = path.resolve().relative_to(base.resolve())
    except ValueError:
        rel = Path(os.path.relpath(path, base))
    return rel.as_posix()


def check_paths(
    paths: Sequence[str | Path],
    rules: Iterable[Rule] | None = None,
    root: Path | None = None,
    on_error: Callable[[Path, SyntaxError], None] | None = None,
    project_rules: Iterable[ProjectRule] | None = None,
    use_cache: bool = True,
    cache_dir: str | Path | None = None,
) -> tuple[list[Finding], list[Suppression]]:
    """Check every Python file under ``paths``.

    Two phases: per-module rules run file by file, then whole-program
    rules (``project_rules``; default: all registered) run once over
    every parsed module.  Unused suppressions are collected *after*
    both phases, so a suppression consumed by a project rule counts as
    used.  Returns ``(findings, unused_suppressions)``; findings
    include suppressed ones (reporters and the baseline decide what
    counts).  Unparseable files are reported through ``on_error`` and
    skipped — the linter must not crash on a file Python itself would
    reject, because CI runs it before the test suite.
    """
    selected = list(all_rules() if rules is None else rules)
    proj_selected = list(
        all_project_rules() if project_rules is None else project_rules
    )
    findings: list[Finding] = []
    contexts: list[ModuleContext] = []
    for file in iter_python_files(paths):
        rel = relative_posix(file, root)
        try:
            source = file.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=rel)
        except SyntaxError as exc:
            if on_error is not None:
                on_error(file, exc)
            continue
        ctx = ModuleContext(
            path=rel,
            tree=tree,
            lines=source.splitlines(),
            suppressions=parse_suppressions(source),
            source=source,
        )
        contexts.append(ctx)
        for rule in selected:
            if rule.applies(rel):
                findings.extend(rule.check(ctx))
    if proj_selected:
        pctx = ProjectContext(
            modules={c.path: c for c in contexts},
            root=root,
            cache_dir=Path(cache_dir) if cache_dir is not None else None,
            use_cache=use_cache,
        )
        for prule in proj_selected:
            findings.extend(prule.check_project(pctx))
    unused = [
        s
        for ctx in contexts
        for s in ctx.suppressions.values()
        if s.valid and not s.used
    ]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, unused


def check_project_sources(
    sources: dict[str, str],
    project_rules: Iterable[ProjectRule] | None = None,
    root: Path | None = None,
) -> list[Finding]:
    """Run whole-program rules over in-memory sources (for self-tests).

    ``sources`` maps synthetic repo-relative paths (``src/repro/...``)
    to module text.  The fact cache is disabled and, with no ``root``,
    no effects manifest is consulted.
    """
    selected = list(
        all_project_rules() if project_rules is None else project_rules
    )
    modules: dict[str, ModuleContext] = {}
    for path in sorted(sources):
        source = sources[path]
        modules[path] = ModuleContext(
            path=path,
            tree=ast.parse(source, filename=path),
            lines=source.splitlines(),
            suppressions=parse_suppressions(source),
            source=source,
        )
    pctx = ProjectContext(modules=modules, root=root, use_cache=False)
    findings: list[Finding] = []
    for prule in selected:
        findings.extend(prule.check_project(pctx))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
