"""The invariant rules.

Each rule encodes one contract the library documents elsewhere:

========================  =====================================================
``det-global-rng``        Seeds flow through :mod:`repro.utils.rng`; nothing
                          touches process-global RNG state.
``det-wallclock``         Result-affecting code never reads the wall clock.
``dep-runtime-scipy``     ``src/repro`` has no runtime scipy dependency.
``obs-neutrality``        Telemetry never participates in result identity,
                          and tracing costs nothing when disabled.
``vec-object-dtype``      Hot paths stay vectorized: no object arrays,
                          ``np.vectorize`` or ``np.append``.
``err-silent-except``     No silently swallowed exceptions.
========================  =====================================================

Seed threading and store-key purity were per-module rules here through
PR 8 (``api-seed-kwarg``, ``store-key-purity``); they are now enforced
by actual dataflow in the whole-program rules of
:mod:`repro.analysis.flow.rules` (``flow-seed-provenance``,
``flow-det-taint``, ``flow-effects``).

Scoping is by repo-relative path (the linter is run from the repo
root); fixture snippets in the self-tests pick their synthetic paths to
land inside or outside each rule's scope.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import ClassVar, Iterator

from repro.analysis.lint.core import Finding, ModuleContext, Rule, register

__all__ = [
    "ImportMap",
    "DetGlobalRng",
    "DetWallclock",
    "DepRuntimeScipy",
    "ObsNeutrality",
    "VecObjectDtype",
    "ErrSilentExcept",
]


@dataclass
class ImportMap:
    """What the module's import statements bound each local name to."""

    #: names bound to the ``numpy`` package (``import numpy as np``)
    numpy: set[str] = field(default_factory=set)
    #: names bound to ``numpy.random`` itself
    numpy_random: set[str] = field(default_factory=set)
    #: names bound to the stdlib ``random`` module
    py_random: set[str] = field(default_factory=set)
    #: names bound to the stdlib ``time`` module
    time: set[str] = field(default_factory=set)
    #: names bound to the stdlib ``datetime`` module
    datetime_mod: set[str] = field(default_factory=set)
    #: local name -> (source module, original name) for ``from m import x``
    from_imports: dict[str, tuple[str, str]] = field(default_factory=dict)

    @classmethod
    def of(cls, tree: ast.Module) -> "ImportMap":
        m = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "numpy":
                        m.numpy.add(bound)
                    elif alias.name == "numpy.random":
                        if alias.asname:
                            m.numpy_random.add(bound)
                        else:  # ``import numpy.random`` binds ``numpy``
                            m.numpy.add(bound)
                    elif alias.name == "random":
                        m.py_random.add(bound)
                    elif alias.name == "time":
                        m.time.add(bound)
                    elif alias.name == "datetime":
                        m.datetime_mod.add(bound)
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if node.module == "numpy" and alias.name == "random":
                        m.numpy_random.add(bound)
                    else:
                        m.from_imports[bound] = (node.module, alias.name)
        return m


def _in_src_repro(path: str) -> bool:
    return path.startswith("src/repro/")


def _call_name(func: ast.expr) -> str:
    """Best-effort dotted name of a call target, for matching."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        base = _call_name(func.value)
        return f"{base}.{func.attr}" if base else func.attr
    return ""


#: numpy.random attributes that are construction, not global state.
_SAFE_NP_RANDOM = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "MT19937",
    "Philox",
    "SFC64",
}

#: stdlib ``random`` attributes that do not touch the global instance.
_SAFE_PY_RANDOM = {"Random"}


@register
class DetGlobalRng(Rule):
    """Global RNG state breaks replayability: two call sites that share
    the hidden global stream are coupled through scheduling order, so
    the provenance manifest's root seed no longer pins the run."""

    id = "det-global-rng"
    summary = (
        "no np.random.* / random.* global-state calls; seeds flow through "
        "repro.utils.rng (RngFactory / spawn_rngs) as explicit Generators"
    )

    _ALLOW = ("src/repro/utils/rng.py",)

    def applies(self, path: str) -> bool:
        return path not in self._ALLOW

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        imports = ImportMap.of(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                recv = func.value
                # np.random.X(...) / numpy.random.X(...)
                is_np_random = (
                    isinstance(recv, ast.Attribute)
                    and recv.attr == "random"
                    and isinstance(recv.value, ast.Name)
                    and recv.value.id in imports.numpy
                ) or (isinstance(recv, ast.Name) and recv.id in imports.numpy_random)
                if is_np_random and func.attr not in _SAFE_NP_RANDOM:
                    yield ctx.finding(
                        self.id,
                        node,
                        f"numpy global-RNG call np.random.{func.attr}(); "
                        "pass an explicit Generator from repro.utils.rng",
                    )
                elif (
                    isinstance(recv, ast.Name)
                    and recv.id in imports.py_random
                    and func.attr not in _SAFE_PY_RANDOM
                ):
                    yield ctx.finding(
                        self.id,
                        node,
                        f"stdlib global-RNG call random.{func.attr}(); "
                        "use a seeded numpy Generator instead",
                    )
            elif isinstance(func, ast.Name):
                origin = imports.from_imports.get(func.id)
                if origin is None:
                    continue
                module, name = origin
                if module == "random" and name not in _SAFE_PY_RANDOM:
                    yield ctx.finding(
                        self.id,
                        node,
                        f"stdlib global-RNG call {name}() (from random import); "
                        "use a seeded numpy Generator instead",
                    )
                elif module == "numpy.random" and name not in _SAFE_NP_RANDOM:
                    yield ctx.finding(
                        self.id,
                        node,
                        f"numpy global-RNG call {name}() (from numpy.random import); "
                        "pass an explicit Generator from repro.utils.rng",
                    )


@register
class DetWallclock(Rule):
    """Wall-clock reads in result-affecting code make re-runs diverge.
    Timing telemetry uses ``time.perf_counter`` (not flagged) and lives
    behind the metrics registry; only provenance/progress may stamp
    real dates."""

    id = "det-wallclock"
    summary = (
        "no time.time() / datetime.now() in result-affecting modules "
        "(allowlist: obs/provenance.py, obs/progress.py)"
    )

    _ALLOW = (
        "src/repro/obs/provenance.py",
        "src/repro/obs/progress.py",
    )
    _DT_METHODS: ClassVar[set[str]] = {"now", "utcnow", "today"}

    def applies(self, path: str) -> bool:
        return _in_src_repro(path) and path not in self._ALLOW

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        imports = ImportMap.of(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                recv = func.value
                if (
                    func.attr == "time"
                    and isinstance(recv, ast.Name)
                    and recv.id in imports.time
                ):
                    yield ctx.finding(
                        self.id,
                        node,
                        "wall-clock read time.time(); results must not depend on "
                        "when they are computed",
                    )
                elif func.attr in self._DT_METHODS and self._is_datetime_class(
                    recv, imports
                ):
                    yield ctx.finding(
                        self.id,
                        node,
                        f"wall-clock read datetime.{func.attr}(); results must not "
                        "depend on when they are computed",
                    )
            elif isinstance(func, ast.Name):
                origin = imports.from_imports.get(func.id)
                if origin == ("time", "time"):
                    yield ctx.finding(
                        self.id,
                        node,
                        "wall-clock read time() (from time import time); results "
                        "must not depend on when they are computed",
                    )

    @staticmethod
    def _is_datetime_class(recv: ast.expr, imports: ImportMap) -> bool:
        # ``datetime.now()`` via ``from datetime import datetime/date``
        if isinstance(recv, ast.Name):
            origin = imports.from_imports.get(recv.id)
            return origin is not None and origin[0] == "datetime"
        # ``datetime.datetime.now()`` via ``import datetime``
        return (
            isinstance(recv, ast.Attribute)
            and recv.attr in {"datetime", "date"}
            and isinstance(recv.value, ast.Name)
            and recv.value.id in imports.datetime_mod
        )


@register
class DepRuntimeScipy(Rule):
    """scipy is a test-only dependency: :func:`repro.utils.stats.gammaln`
    and :func:`repro.utils.stats.norm_ppf` cover the numerical needs, and
    keeping scipy off the import path keeps cold start fast and the
    runtime footprint small.  ``if TYPE_CHECKING:`` imports are exempt."""

    id = "dep-runtime-scipy"
    summary = "no runtime scipy imports under src/repro (tests may import it)"

    def applies(self, path: str) -> bool:
        return _in_src_repro(path)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        type_checking_only: set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.If) and self._is_type_checking(node.test):
                for sub in node.body:
                    for inner in ast.walk(sub):
                        type_checking_only.add(id(inner))
        for node in ast.walk(ctx.tree):
            if id(node) in type_checking_only:
                continue
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "scipy" or alias.name.startswith("scipy."):
                        yield ctx.finding(
                            self.id,
                            node,
                            f"runtime import of {alias.name}; use repro.utils.stats "
                            "(gammaln, norm_ppf) or move scipy into the tests",
                        )
            elif isinstance(node, ast.ImportFrom):
                mod = node.module or ""
                if node.level == 0 and (mod == "scipy" or mod.startswith("scipy.")):
                    yield ctx.finding(
                        self.id,
                        node,
                        f"runtime import from {mod}; use repro.utils.stats "
                        "(gammaln, norm_ppf) or move scipy into the tests",
                    )

    @staticmethod
    def _is_type_checking(test: ast.expr) -> bool:
        return (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
            isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
        )


#: substrings of an annotation that mark a field as telemetry-typed.
_TELEMETRY_ANNOTATIONS = ("Tracer", "Sink", "MetricsSnapshot", "MetricsRegistry")


@register
class ObsNeutrality(Rule):
    """Two halves of one contract (DESIGN.md, "Observability"):

    * telemetry attached to a ``*Result`` dataclass must opt out of
      equality (``compare=False``), so a traced run and an untraced run
      of the same seed compare equal;
    * tracer emission must use the hoisted guard from PR 2 —
      ``emit = tracer.emit if tracer.enabled else None`` once per run,
      ``if emit is not None: emit(...)`` per slot — so a disabled
      tracer costs one attribute read, not a method call per event;
    * span profiling (PR 8) follows the same discipline — ``begin =
      prof.begin if prof.enabled else None`` once per call, spans opened
      via ``begin(...) if begin is not None else None`` — so a direct
      ``prof.begin(...)``/``prof.end(...)`` attribute call outside
      :mod:`repro.obs` is a finding: it would allocate a span handle
      even when profiling is disabled.

    A field literally named ``trace`` is only flagged when its
    annotation is telemetry-typed: ``RunResult.trace`` is a
    :class:`~repro.analysis.trace.BroadcastTrace`, the *semantic*
    execution record, and must keep participating in equality.
    """

    id = "obs-neutrality"
    summary = (
        "telemetry fields on *Result dataclasses need compare=False; "
        "tracer.emit and profiler.begin/end go through hoisted enabled-guards"
    )

    _SPAN_METHODS: ClassVar[set[str]] = {"begin", "end"}

    def applies(self, path: str) -> bool:
        return _in_src_repro(path)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        yield from self._check_result_fields(ctx)
        if not ctx.path.startswith("src/repro/obs/"):
            yield from self._check_emit_sites(ctx)
            yield from self._check_span_sites(ctx)

    def _check_result_fields(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.ClassDef)
                and node.name.endswith("Result")
                and any(self._is_dataclass_deco(d) for d in node.decorator_list)
            ):
                continue
            for stmt in node.body:
                if not (
                    isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                ):
                    continue
                name = stmt.target.id
                ann = ast.unparse(stmt.annotation)
                telemetry_typed = any(t in ann for t in _TELEMETRY_ANNOTATIONS)
                if name not in {"metrics", "telemetry"} and not telemetry_typed:
                    continue
                if not self._has_compare_false(stmt.value):
                    yield ctx.finding(
                        self.id,
                        stmt,
                        f"telemetry field {node.name}.{name} must declare "
                        "field(..., compare=False) so telemetry never affects "
                        "result identity",
                    )

    def _check_emit_sites(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "emit"
                and self._is_tracer_expr(node.func.value)
            ):
                continue
            yield ctx.finding(
                self.id,
                node,
                "direct tracer.emit() call; hoist the guard once "
                "(emit = tracer.emit if tracer.enabled else None) and call "
                "emit(...) behind `if emit is not None`",
            )

    def _check_span_sites(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._SPAN_METHODS
                and self._is_profiler_expr(node.func.value)
            ):
                continue
            yield ctx.finding(
                self.id,
                node,
                f"direct profiler.{node.func.attr}() call; hoist the guard once "
                "(begin = prof.begin if prof.enabled else None) and open spans "
                "via `begin(...) if begin is not None else None`",
            )

    @staticmethod
    def _is_dataclass_deco(deco: ast.expr) -> bool:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(target, ast.Name):
            return target.id == "dataclass"
        return isinstance(target, ast.Attribute) and target.attr == "dataclass"

    @staticmethod
    def _has_compare_false(value: ast.expr | None) -> bool:
        if not (isinstance(value, ast.Call) and _call_name(value.func).endswith("field")):
            return False
        for kw in value.keywords:
            if kw.arg == "compare" and isinstance(kw.value, ast.Constant):
                return kw.value.value is False
        return False

    @staticmethod
    def _is_tracer_expr(expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name):
            return "tracer" in expr.id.lower()
        if isinstance(expr, ast.Attribute):
            return "tracer" in expr.attr.lower()
        if isinstance(expr, ast.Call):
            return _call_name(expr.func).endswith("get_tracer")
        return False

    @staticmethod
    def _is_profiler_expr(expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name):
            return "prof" in expr.id.lower()
        if isinstance(expr, ast.Attribute):
            return "prof" in expr.attr.lower()
        if isinstance(expr, ast.Call):
            name = _call_name(expr.func)
            return name.endswith(("profiler", "get_profiler"))
        return False


@register
class VecObjectDtype(Rule):
    """The PR-1 speedups depend on the hot paths staying vectorized:
    object arrays fall back to per-element Python dispatch,
    ``np.vectorize`` is a Python loop in disguise, and ``np.append``
    reallocates the whole array per call."""

    id = "vec-object-dtype"
    summary = (
        "no dtype=object, np.vectorize or np.append in hot-path modules "
        "(sim/engine.py, collision/*, geometry/*, the batch channel kernels "
        "in models/, network/topology.py)"
    )

    _HOT_PREFIXES = ("src/repro/collision/", "src/repro/geometry/")
    # The replication-batched engine made the channel kernels and the
    # stacked CSR builder first-class (R, nodes) hot paths.
    _HOT_FILES = (
        "src/repro/sim/engine.py",
        "src/repro/models/cam.py",
        "src/repro/models/cfm.py",
        "src/repro/models/channel.py",
        "src/repro/network/topology.py",
    )
    _BANNED_NP: ClassVar[set[str]] = {"vectorize", "append"}

    def applies(self, path: str) -> bool:
        return path in self._HOT_FILES or path.startswith(self._HOT_PREFIXES)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        imports = ImportMap.of(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            for kw in node.keywords:
                if kw.arg == "dtype" and self._is_object_dtype(kw.value, imports):
                    yield ctx.finding(
                        self.id,
                        node,
                        "object-dtype array in a hot-path module; object arrays "
                        "dispatch per element and defeat vectorization",
                    )
            banned = self._banned_call(node.func, imports)
            if banned:
                yield ctx.finding(
                    self.id,
                    node,
                    f"np.{banned}() in a hot-path module; "
                    + (
                        "it is a Python loop in disguise — write the array "
                        "expression directly"
                        if banned == "vectorize"
                        else "it reallocates per call — preallocate or collect "
                        "then np.concatenate once"
                    ),
                )

    @staticmethod
    def _is_object_dtype(value: ast.expr, imports: ImportMap) -> bool:
        if isinstance(value, ast.Name) and value.id == "object":
            return True
        if isinstance(value, ast.Constant) and value.value == "object":
            return True
        return (
            isinstance(value, ast.Attribute)
            and value.attr in {"object_", "object"}
            and isinstance(value.value, ast.Name)
            and value.value.id in imports.numpy
        )

    def _banned_call(self, func: ast.expr, imports: ImportMap) -> str:
        if (
            isinstance(func, ast.Attribute)
            and func.attr in self._BANNED_NP
            and isinstance(func.value, ast.Name)
            and func.value.id in imports.numpy
        ):
            return func.attr
        if isinstance(func, ast.Name):
            origin = imports.from_imports.get(func.id)
            if origin is not None and origin[0] == "numpy" and origin[1] in self._BANNED_NP:
                return origin[1]
        return ""


@register
class ErrSilentExcept(Rule):
    """A swallowed exception turns a wrong answer into a quiet one.
    Catch narrowly, or handle visibly."""

    id = "err-silent-except"
    summary = "no bare `except:` and no `except Exception: pass` under src/"

    _BROAD: ClassVar[set[str]] = {"Exception", "BaseException"}

    def applies(self, path: str) -> bool:
        return path.startswith("src/")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield ctx.finding(
                    self.id,
                    node,
                    "bare except: catches SystemExit/KeyboardInterrupt too; "
                    "name the exceptions you mean",
                )
            elif self._is_broad(node.type) and self._is_silent(node.body):
                yield ctx.finding(
                    self.id,
                    node,
                    "except Exception with an empty body silently swallows "
                    "errors; narrow the type or handle it visibly",
                )

    def _is_broad(self, type_node: ast.expr) -> bool:
        if isinstance(type_node, ast.Tuple):
            return any(self._is_broad(e) for e in type_node.elts)
        name = _call_name(type_node)
        return name.split(".")[-1] in self._BROAD

    @staticmethod
    def _is_silent(body: list[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, (ast.Pass, ast.Continue)):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue  # docstring or bare ``...``
            return False
        return True
