"""Text and JSON reporters for lint findings."""

from __future__ import annotations

import json
from collections import Counter
from typing import Sequence

from repro.analysis.lint.baseline import fingerprint_findings
from repro.analysis.lint.core import Finding, Suppression

__all__ = ["render_text", "render_json", "render_sarif"]


def render_text(
    new: Sequence[Finding],
    baselined: Sequence[Finding] = (),
    suppressed: Sequence[Finding] = (),
    unused_suppressions: Sequence[Suppression] = (),
    files_checked: int = 0,
) -> str:
    """Human-oriented report: one line per finding plus a tally."""
    lines: list[str] = []
    for f in new:
        lines.append(f"{f.location()}  {f.rule}  {f.message}")
        if f.snippet:
            lines.append(f"    {f.snippet}")
    if baselined:
        lines.append("")
        lines.append(f"{len(baselined)} baselined finding(s) (grandfathered, not failing):")
        for f in baselined:
            lines.append(f"  {f.location()}  {f.rule}")
    if suppressed:
        lines.append("")
        lines.append(f"{len(suppressed)} suppressed finding(s):")
        for f in suppressed:
            lines.append(f"  {f.location()}  {f.rule}  — {f.suppress_reason}")
    for sup in unused_suppressions:
        lines.append(
            f"warning: unused suppression for ({', '.join(sup.rules)}) "
            f"at line {sup.line}"
        )
    lines.append("")
    by_rule = Counter(f.rule for f in new)
    tally = ", ".join(f"{rule}={n}" for rule, n in sorted(by_rule.items()))
    if new:
        lines.append(
            f"FAIL: {len(new)} new finding(s) in {files_checked} file(s)"
            + (f" [{tally}]" if tally else "")
        )
    else:
        lines.append(f"OK: no new findings in {files_checked} file(s)")
    return "\n".join(lines)


def render_json(
    new: Sequence[Finding],
    baselined: Sequence[Finding] = (),
    suppressed: Sequence[Finding] = (),
    files_checked: int = 0,
) -> str:
    """Machine-oriented report (stable keys; one JSON object)."""

    def encode(findings: Sequence[Finding]) -> list[dict[str, object]]:
        return [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
                "snippet": f.snippet,
                "fingerprint": fp,
                **(
                    {"suppress_reason": f.suppress_reason}
                    if f.suppressed
                    else {}
                ),
            }
            for f, fp in fingerprint_findings(findings)
        ]

    doc = {
        "files_checked": files_checked,
        "new": encode(new),
        "baselined": encode(baselined),
        "suppressed": encode(suppressed),
        "counts": {
            "new": len(new),
            "baselined": len(baselined),
            "suppressed": len(suppressed),
        },
    }
    return json.dumps(doc, indent=2)


def render_sarif(
    new: Sequence[Finding],
    baselined: Sequence[Finding] = (),
    suppressed: Sequence[Finding] = (),
    rules: Sequence[object] = (),
) -> str:
    """SARIF 2.1.0 report for CI code-scanning annotations.

    New findings carry level ``error``, grandfathered ones ``note``
    with ``baselineState: unchanged``; suppressed findings are included
    with an in-source suppression record so annotation UIs hide them
    without losing the audit trail.
    """

    def result(f: Finding, fp: str, level: str) -> dict[str, object]:
        doc: dict[str, object] = {
            "ruleId": f.rule,
            "level": level,
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": f.line,
                            "startColumn": f.col + 1,
                            **({"snippet": {"text": f.snippet}} if f.snippet else {}),
                        },
                    }
                }
            ],
            "partialFingerprints": {"reproLint/v1": fp},
        }
        if f.suppressed:
            doc["suppressions"] = [
                {
                    "kind": "inSource",
                    "justification": f.suppress_reason,
                }
            ]
        return doc

    results: list[dict[str, object]] = []
    for f, fp in fingerprint_findings(new):
        results.append(result(f, fp, "error"))
    for f, fp in fingerprint_findings(baselined):
        doc = result(f, fp, "note")
        doc["baselineState"] = "unchanged"
        results.append(doc)
    for f, fp in fingerprint_findings(suppressed):
        results.append(result(f, fp, "note"))

    sarif = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro-lint",
                        "rules": [
                            {
                                "id": getattr(r, "id", ""),
                                "shortDescription": {
                                    "text": getattr(r, "summary", "")
                                },
                            }
                            for r in rules
                        ],
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(sarif, indent=2)
