"""Optimal broadcast-probability search (the "Choose p" box of Fig. 1(b)).

The paper optimizes ``p`` by sweeping a grid (0.01 .. 1.00 in steps of
0.01 for the analysis; Sec. 4.2.3).  :func:`sweep_metric` evaluates one
metric over such a grid reusing a single :class:`RingModel`;
:func:`optimal_probability` picks the best grid point and can optionally
refine it by golden-section search between its grid neighbors.

Infeasible points (a reachability target that a small ``p`` can never
attain) evaluate to ``NaN`` in sweeps and are excluded from the optimum,
matching the gaps in the paper's Figs. 5(a)/6(a).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Literal

import numpy as np

from repro.analysis.config import AnalysisConfig
from repro.analysis.metrics import (
    QUIESCENCE_PHASES,
    energy_at_reachability,
    latency_at_reachability,
    reachability_at_energy,
    reachability_at_latency,
)
from repro.analysis.ring_model import RingModel
from repro.analysis.trace import BroadcastTrace
from repro.errors import InfeasibleConstraintError
from repro.utils.validation import check_in, check_positive

__all__ = [
    "MetricSpec",
    "METRICS",
    "OptimizationResult",
    "TradeoffCurve",
    "default_probability_grid",
    "sweep_metric",
    "optimal_probability",
    "tradeoff_curve",
    "optimal_intensity",
]


@dataclass(frozen=True)
class MetricSpec:
    """One optimizable metric: an evaluator plus its optimization sense.

    ``evaluate`` runs one scalar recursion per call (used by the
    golden-section refinement); grid sweeps instead run the batched
    recursion once and extract the metric from each trace with
    ``from_trace``, bounded by ``horizon(constraint)`` phases.
    """

    name: str
    evaluate: Callable[[RingModel, float, float], float]
    sense: Literal["max", "min"]
    constraint_name: str
    from_trace: Callable[[BroadcastTrace, float], float]
    horizon: Callable[[float], int]

    def better(self, a: float, b: float) -> bool:
        """True if value ``a`` beats value ``b`` under this metric's sense."""
        if math.isnan(a):
            return False
        if math.isnan(b):
            return True
        return a > b if self.sense == "max" else a < b


def _latency_horizon(latency: float) -> int:
    return max(1, math.ceil(check_positive("latency", latency)))


METRICS: dict[str, MetricSpec] = {
    "reachability_at_latency": MetricSpec(
        "reachability_at_latency",
        reachability_at_latency,
        "max",
        "latency",
        from_trace=lambda trace, latency: trace.reachability_after(latency),
        horizon=_latency_horizon,
    ),
    "latency_at_reachability": MetricSpec(
        "latency_at_reachability",
        latency_at_reachability,
        "min",
        "reachability",
        from_trace=lambda trace, target: trace.latency_to(target),
        horizon=lambda _: QUIESCENCE_PHASES,
    ),
    "energy_at_reachability": MetricSpec(
        "energy_at_reachability",
        energy_at_reachability,
        "min",
        "reachability",
        from_trace=lambda trace, target: trace.broadcasts_to(target),
        horizon=lambda _: QUIESCENCE_PHASES,
    ),
    "reachability_at_energy": MetricSpec(
        "reachability_at_energy",
        reachability_at_energy,
        "max",
        "energy budget",
        from_trace=lambda trace, budget: trace.reachability_within_energy(budget),
        horizon=lambda _: QUIESCENCE_PHASES,
    ),
}


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of an optimal-probability search.

    Attributes
    ----------
    metric:
        Metric name (a key of :data:`METRICS`).
    constraint:
        The constraint value the metric was evaluated under.
    p:
        The best broadcast probability found.
    value:
        The metric value at ``p``.
    p_grid, values:
        The sweep used for the search (``values`` holds ``NaN`` at
        infeasible points); useful for plotting the full curve.
    config:
        The analytical configuration.
    """

    metric: str
    constraint: float
    p: float
    value: float
    p_grid: np.ndarray = field(repr=False)
    values: np.ndarray = field(repr=False)
    config: AnalysisConfig = field(repr=False)

    @property
    def feasible_fraction(self) -> float:
        """Fraction of swept probabilities where the constraint was feasible."""
        return float(np.mean(~np.isnan(self.values)))


def default_probability_grid(step: float = 0.01) -> np.ndarray:
    """The paper's analysis grid: ``step, 2*step, ..., 1.0``."""
    step = check_positive("step", step)
    if step > 1.0:
        raise ValueError("grid step cannot exceed 1")
    n = int(round(1.0 / step))
    return np.linspace(step, n * step, n)


# Closed-form analytical sweep; the ring recursion is deterministic and
# draws no random numbers, so there is no seed to thread.
def sweep_metric(
    config: AnalysisConfig | RingModel,
    metric: str,
    constraint: float,
    p_grid: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate one metric over a probability grid.

    Returns
    -------
    (p_grid, values):
        ``values[i]`` is the metric at ``p_grid[i]``, ``NaN`` where the
        constraint is infeasible.
    """
    spec: MetricSpec = METRICS[check_in("metric", metric, METRICS)]
    model = config if isinstance(config, RingModel) else RingModel(config)
    grid = default_probability_grid() if p_grid is None else np.asarray(p_grid, float)
    if grid.ndim != 1 or grid.size == 0:
        raise ValueError("p_grid must be a non-empty 1-D array")
    # One batched recursion evaluates the whole grid; per-point metric
    # extraction from the traces is identical to spec.evaluate(model, p, c).
    traces = model.run_batch(grid, max_phases=spec.horizon(constraint))
    values = np.empty(grid.size)
    for i, trace in enumerate(traces):
        try:
            values[i] = spec.from_trace(trace, constraint)
        except InfeasibleConstraintError:
            values[i] = np.nan
    return grid, values


def _golden_refine(
    evaluate: Callable[[float], float],
    spec: MetricSpec,
    lo: float,
    hi: float,
    *,
    iterations: int = 24,
) -> tuple[float, float]:
    """Golden-section search for a unimodal metric on ``[lo, hi]``.

    Infeasible evaluations are treated as worst-possible, which pushes
    the search back into the feasible region.
    """
    worst = -math.inf if spec.sense == "max" else math.inf

    def f(p: float) -> float:
        try:
            return evaluate(p)
        except InfeasibleConstraintError:
            return worst

    invphi = (math.sqrt(5.0) - 1.0) / 2.0
    a, b = lo, hi
    c = b - invphi * (b - a)
    d = a + invphi * (b - a)
    fc, fd = f(c), f(d)
    for _ in range(iterations):
        if spec.better(fc, fd):
            b, d, fd = d, c, fc
            c = b - invphi * (b - a)
            fc = f(c)
        else:
            a, c, fc = c, d, fd
            d = a + invphi * (b - a)
            fd = f(d)
    p_best = c if spec.better(fc, fd) else d
    return p_best, f(p_best)


def optimal_intensity(
    config: AnalysisConfig | RingModel,
    metric: str,
    constraint: float,
    *,
    p_grid: np.ndarray | None = None,
    refine: bool = True,
) -> float:
    """The density-free optimum: the product ``p* · rho``.

    The ring recursion is invariant under ``(rho, p) → (k·rho, p/k)``
    (``g ∝ rho`` and ``mu`` sees ``g·p``; arrivals rescale by ``k``), so
    for any metric whose constraint is density-free the optimal
    *transmission intensity* ``p·rho`` — expected transmitters per
    transmission-range area per phase — is one number for the whole
    density family.  Tuning at a new density reduces to
    ``p = optimal_intensity / rho`` (clipped to 1), which is how the
    library implements Fig. 4(b)'s "rapidly decaying" curve in closed
    form once a single optimization has been paid.

    The invariance is exact for the expectation recursion; at small
    ``rho`` the clip ``p ≤ 1`` binds and the family leaves the invariant
    manifold (visible as the flattening of Fig. 4(b)'s left end).
    """
    result = optimal_probability(
        config, metric, constraint, p_grid=p_grid, refine=refine
    )
    return result.p * result.config.rho


@dataclass(frozen=True)
class TradeoffCurve:
    """The reachability/energy trade-off at a fixed latency budget.

    One point per swept probability: the reachability achieved within
    the budget and the broadcasts spent getting there.  ``efficient``
    marks the Pareto-optimal subset (no other point has both more
    reachability and fewer broadcasts) — the menu a deployment planner
    actually chooses from.
    """

    latency: float
    p_grid: np.ndarray = field(repr=False)
    reachability: np.ndarray = field(repr=False)
    broadcasts: np.ndarray = field(repr=False)
    efficient: np.ndarray = field(repr=False)
    config: AnalysisConfig = field(repr=False)

    def frontier(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(p, reachability, broadcasts)`` of the efficient points,
        ordered by increasing energy."""
        idx = np.flatnonzero(self.efficient)
        order = idx[np.argsort(self.broadcasts[idx])]
        return self.p_grid[order], self.reachability[order], self.broadcasts[order]


def tradeoff_curve(
    config: AnalysisConfig | RingModel,
    latency: float,
    *,
    p_grid: np.ndarray | None = None,
) -> TradeoffCurve:
    """Sweep the reachability-vs-energy trade-off at one latency budget.

    For every probability, one ring-model run yields both the
    reachability within ``latency`` phases and the broadcasts spent by
    then; the Pareto-efficient subset is marked.  This generalizes the
    paper's single-metric optima: metrics 1 and 5 are the two endpoints
    of this frontier.
    """
    latency = check_positive("latency", latency)
    model = config if isinstance(config, RingModel) else RingModel(config)
    grid = default_probability_grid() if p_grid is None else np.asarray(p_grid, float)
    reach = np.empty(grid.size)
    energy = np.empty(grid.size)
    horizon = max(1, math.ceil(latency))
    for i, trace in enumerate(model.run_batch(grid, max_phases=horizon)):
        reach[i] = trace.reachability_after(latency)
        energy[i] = trace.broadcasts_at(latency)
    # Pareto filter: efficient iff no point strictly dominates.
    efficient = np.ones(grid.size, dtype=bool)
    for i in range(grid.size):
        dominated = (reach >= reach[i]) & (energy <= energy[i])
        dominated &= (reach > reach[i]) | (energy < energy[i])
        if np.any(dominated):
            efficient[i] = False
    return TradeoffCurve(
        latency=latency,
        p_grid=grid,
        reachability=reach,
        broadcasts=energy,
        efficient=efficient,
        config=model.config,
    )


def optimal_probability(
    config: AnalysisConfig | RingModel,
    metric: str,
    constraint: float,
    *,
    p_grid: np.ndarray | None = None,
    refine: bool = False,
) -> OptimizationResult:
    """Find the broadcast probability optimizing one paper metric.

    Parameters
    ----------
    config:
        Analytical configuration, or a prebuilt model (e.g. a
        :class:`~repro.analysis.carrier_model.CarrierRingModel` to
        optimize under carrier-sense collisions).
    metric:
        One of :data:`METRICS`.
    constraint:
        Latency budget (phases), reachability target, or broadcast
        budget, depending on the metric.
    p_grid:
        Probability grid; defaults to the paper's 0.01-step grid.
    refine:
        If true, polish the best grid point with golden-section search
        between its grid neighbors (the metrics are smooth and, over the
        paper's parameter range, unimodal in ``p``).

    Raises
    ------
    InfeasibleConstraintError
        If no grid point satisfies the constraint.
    """
    spec: MetricSpec = METRICS[check_in("metric", metric, METRICS)]
    model = config if isinstance(config, RingModel) else RingModel(config)
    grid, values = sweep_metric(model, metric, constraint, p_grid)
    if np.all(np.isnan(values)):
        raise InfeasibleConstraintError(
            f"{metric} with constraint {constraint} is infeasible for every "
            f"swept probability (rho={model.config.rho})"
        )
    if spec.sense == "max":
        best_idx = int(np.nanargmax(values))
    else:
        best_idx = int(np.nanargmin(values))
    p_best = float(grid[best_idx])
    v_best = float(values[best_idx])

    if refine and grid.size >= 2:
        lo = float(grid[max(best_idx - 1, 0)])
        hi = float(grid[min(best_idx + 1, grid.size - 1)])
        if hi > lo:
            p_ref, v_ref = _golden_refine(
                lambda p: spec.evaluate(model, p, constraint), spec, lo, hi
            )
            if spec.better(v_ref, v_best):
                p_best, v_best = float(p_ref), float(v_ref)

    return OptimizationResult(
        metric=metric,
        constraint=float(constraint),
        p=p_best,
        value=v_best,
        p_grid=grid,
        values=values,
        config=model.config,
    )
