"""Execution traces of the analytical broadcast recursion.

A :class:`BroadcastTrace` records, per time phase, the expected number
of *newly informed* nodes in each ring and the expected number of
broadcasts performed.  All four paper metrics (Sec. 4.1) are derived
from a trace:

* reachability after a latency budget (Fig. 4),
* fractional-phase latency to a reachability target (Fig. 5),
* broadcast count ("energy") to a reachability target (Fig. 6),
* reachability within a broadcast budget (Fig. 7).

Fractional phases follow the paper's convention (Sec. 4.2.4): arrivals
and broadcasts within a phase are treated as uniformly spread over the
phase, so curves are piecewise-linear between phase boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.config import AnalysisConfig
from repro.errors import InfeasibleConstraintError
from repro.utils.validation import check_fraction, check_positive

__all__ = ["BroadcastTrace"]


@dataclass(frozen=True)
class BroadcastTrace:
    """Result of running the ring-model recursion (or a simulator adapter).

    Attributes
    ----------
    config:
        The analytical configuration the trace was produced under.
    p:
        Broadcast probability used.
    new_by_phase_ring:
        Shape ``(phases, n_rings)``: expected newly informed node count
        in ring ``j`` during phase ``i`` — the paper's ``n_j^i``.
        Row 0 is phase ``T_1`` (the source's own broadcast).
    broadcasts_by_phase:
        Shape ``(phases,)``: expected broadcasts performed during each
        phase.  Phase ``T_1`` contains exactly the source's broadcast.
    """

    config: AnalysisConfig
    p: float
    new_by_phase_ring: np.ndarray = field(repr=False)
    broadcasts_by_phase: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        new = np.asarray(self.new_by_phase_ring, dtype=float)
        bc = np.asarray(self.broadcasts_by_phase, dtype=float)
        if new.ndim != 2 or new.shape[1] != self.config.n_rings:
            raise ValueError(
                f"new_by_phase_ring must be (phases, {self.config.n_rings}), "
                f"got {new.shape}"
            )
        if bc.shape != (new.shape[0],):
            raise ValueError(
                f"broadcasts_by_phase must be ({new.shape[0]},), got {bc.shape}"
            )
        object.__setattr__(self, "new_by_phase_ring", new)
        object.__setattr__(self, "broadcasts_by_phase", bc)

    # ------------------------------------------------------------------
    # basic series
    # ------------------------------------------------------------------
    @property
    def phases(self) -> int:
        """Number of phases recorded."""
        return int(self.new_by_phase_ring.shape[0])

    @property
    def new_by_phase(self) -> np.ndarray:
        """Newly informed nodes per phase, summed over rings."""
        return self.new_by_phase_ring.sum(axis=1)

    @property
    def informed_total(self) -> float:
        """Expected number of informed nodes at the end of the trace."""
        return float(self.new_by_phase_ring.sum())

    @property
    def broadcasts_total(self) -> float:
        """Expected total broadcasts over the whole trace (the metric ``M``)."""
        return float(self.broadcasts_by_phase.sum())

    @property
    def cumulative_reachability(self) -> np.ndarray:
        """Reachability at the end of each phase: ``cum_informed / N``."""
        return np.cumsum(self.new_by_phase) / self.config.n_nodes

    @property
    def cumulative_broadcasts(self) -> np.ndarray:
        """Cumulative broadcasts at the end of each phase."""
        return np.cumsum(self.broadcasts_by_phase)

    @property
    def final_reachability(self) -> float:
        """Reachability when the recursion terminated."""
        return self.informed_total / self.config.n_nodes

    def informed_by_ring(self) -> np.ndarray:
        """Total informed per ring over the whole trace (length ``n_rings``)."""
        return self.new_by_phase_ring.sum(axis=0)

    # ------------------------------------------------------------------
    # paper metrics
    # ------------------------------------------------------------------
    def reachability_after(self, phases: float) -> float:
        """Reachability after a (possibly fractional) number of phases.

        A budget beyond the recorded trace returns the final value: the
        recursion is only truncated once arrivals are negligible.
        """
        phases = check_positive("phases", phases, allow_zero=True)
        cum = self.cumulative_reachability
        grid = np.arange(0, self.phases + 1, dtype=float)
        values = np.concatenate(([0.0], cum))
        if phases >= self.phases:
            return float(cum[-1])
        return float(np.interp(phases, grid, values))

    def latency_to(self, reachability: float) -> float:
        """Fractional phases needed to reach a reachability target.

        Raises
        ------
        InfeasibleConstraintError
            If the trace never attains the target (paper Fig. 5: for
            small ``p`` some targets are unattainable; those points are
            omitted from the figure).
        """
        target = check_fraction("reachability", reachability)
        cum = self.cumulative_reachability
        if cum[-1] < target:
            raise InfeasibleConstraintError(
                f"reachability {target:.3f} unattainable: trace peaks at "
                f"{cum[-1]:.3f} (p={self.p}, rho={self.config.rho})"
            )
        idx = int(np.searchsorted(cum, target))
        prev = cum[idx - 1] if idx > 0 else 0.0
        gain = cum[idx] - prev
        frac = 0.0 if gain <= 0 else (target - prev) / gain
        return float(idx + frac)

    def broadcasts_at(self, time_phases: float) -> float:
        """Cumulative broadcasts at a fractional phase time."""
        time_phases = check_positive("time_phases", time_phases, allow_zero=True)
        grid = np.arange(0, self.phases + 1, dtype=float)
        values = np.concatenate(([0.0], self.cumulative_broadcasts))
        if time_phases >= self.phases:
            return float(values[-1])
        return float(np.interp(time_phases, grid, values))

    def broadcasts_to(self, reachability: float) -> float:
        """Expected broadcasts spent by the time a reachability target is hit.

        This is the paper's energy metric for Fig. 6 ("the number of
        broadcasts ... required to achieve 72% reachability"): broadcasts
        are accumulated up to the fractional phase where the target is
        crossed.
        """
        return self.broadcasts_at(self.latency_to(reachability))

    def reachability_within_energy(self, budget: float) -> float:
        """Reachability achieved before exhausting a broadcast budget (Fig. 7).

        If the whole trace spends fewer broadcasts than the budget, the
        final reachability is returned.  Within the phase where the
        budget runs out, broadcasts and arrivals are interpolated with
        the same uniform-in-phase convention as the other metrics.
        """
        budget = check_positive("budget", budget)
        cum_b = self.cumulative_broadcasts
        if budget >= cum_b[-1]:
            # Read the same cumulative series the interpolated branch
            # reads: ``final_reachability`` sums the ring matrix in a
            # different order and can disagree by one ulp.
            return self.reachability_after(float(self.phases))
        # Invert broadcasts(t) at the budget, taking the LATEST time the
        # budget still holds: broadcasts(t) can be flat across phases
        # with no transmissions while reachability keeps accruing, and
        # the budget is not exceeded anywhere on the flat stretch.
        b_values = np.concatenate(([0.0], cum_b))
        idx = int(np.searchsorted(b_values, budget, side="right"))
        # idx is the first index with b_values > budget; the budget runs
        # out partway through phase `idx` (1-based).
        prev_b = b_values[idx - 1]
        gain = b_values[idx] - prev_b
        frac = (budget - prev_b) / gain
        t = (idx - 1) + frac
        return self.reachability_after(t)

    # ------------------------------------------------------------------
    def truncated(self, phases: int) -> "BroadcastTrace":
        """A copy containing only the first ``phases`` phases."""
        if phases < 1:
            raise ValueError("phases must be >= 1")
        phases = min(phases, self.phases)
        return BroadcastTrace(
            config=self.config,
            p=self.p,
            new_by_phase_ring=self.new_by_phase_ring[:phases].copy(),
            broadcasts_by_phase=self.broadcasts_by_phase[:phases].copy(),
        )
