"""Density-aware CFM cost functions — the paper's proposed middle ground.

The concluding remarks of the paper sketch a family of models between
CFM and CAM: keep CFM's reliable-transmission *semantics* (easy
programming) but make its cost functions ``t_f``/``e_f`` — or the
per-transmission *success rate* — functions of node density, so that
the price of contention resolution shows up in the analysis without
exposing collisions to the algorithm designer.

This module implements that sketch:

* :func:`success_rate_vs_density` — the per-transmission delivery
  success probability as a function of density, derived from the same
  collision mathematics as the ring model (a transmission to a given
  neighbor survives a slot iff no other nearby transmitter chose it);
* :class:`DensityAwareCostModel` — effective CFM costs obtained by
  charging each reliable transmission its expected number of attempts
  under that success rate (geometric retries);
* :func:`refined_flooding_summary` — the cost of reliable flooding
  predicted by the refined model, the quantity a designer would compare
  against plain CFM's ``O(N)`` energy / ``O(P)`` latency.

The refined model is validated against the CAM machinery in the tests
(its success rate matches the flooding success-rate analysis of
Fig. 12) and against the DES reliable-broadcast implementation in
``benchmarks/bench_refined_cfm.py``.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.analysis.config import AnalysisConfig
from repro.analysis.flooding import flooding_success_rate
from repro.models.costs import CostModel
from repro.utils.validation import check_positive, check_probability

__all__ = [
    "success_rate_vs_density",
    "DensityAwareCostModel",
    "RefinedFloodingSummary",
    "refined_flooding_summary",
]


def success_rate_vs_density(
    config: AnalysisConfig,
    p: float = 1.0,
    *,
    concurrency: float | None = None,
) -> float:
    """Per-transmission delivery success probability at density ``rho``.

    A transmission reaches a given neighbor in a slot iff no other
    transmitter within range of that neighbor picked the same slot.
    With ``K`` expected concurrent transmitters around the receiver
    (``K = concurrency * p``; ``concurrency`` defaults to ``rho``, the
    saturated/flooding case), independence across slots gives

        ``rate = ((s - 1) / s) ** max(K - 1, 0)``

    — the continuous extension used throughout the flooding analysis.

    Parameters
    ----------
    config:
        Network model (density, slots).
    p:
        Fraction of potential relays actually transmitting.
    concurrency:
        Expected transmitters in range of the receiver before thinning
        by ``p``; defaults to ``config.rho``.
    """
    p = check_probability("p", p)
    k = (config.rho if concurrency is None else check_positive(
        "concurrency", concurrency, allow_zero=True
    )) * p
    s = config.slots
    if s == 1:
        return 1.0 if k <= 1.0 else 0.0
    return float(((s - 1.0) / s) ** max(k - 1.0, 0.0))


@dataclass(frozen=True)
class DensityAwareCostModel:
    """CFM cost functions that grow with density (paper's refinement).

    Attributes
    ----------
    base:
        The raw per-attempt cost pair ``(t_a, e_a)``.
    success_rate:
        Per-attempt delivery success probability at this density.
    """

    base: CostModel
    success_rate: float

    def __post_init__(self) -> None:
        check_probability("success_rate", self.success_rate, allow_zero=False)

    @classmethod
    def for_density(
        cls,
        config: AnalysisConfig,
        p: float = 1.0,
        *,
        base: CostModel | None = None,
        method: str = "ring",
    ) -> "DensityAwareCostModel":
        """Build the refined model at a given density.

        ``method="ring"`` (default) runs the full ring-model flooding
        analysis and uses its aggregate success rate (the Fig. 12
        quantity, ``receivers="all"`` convention), which accounts for
        the spatial decay of contention as the wave passes — it tracks
        measured retry counts closely at low-to-mid densities.
        ``method="slot"`` instead uses the closed-form saturated bound
        of :func:`success_rate_vs_density` (every neighbor contending),
        a deliberately pessimistic worst case.
        """
        if method == "slot":
            rate = success_rate_vs_density(config, p)
        elif method == "ring":
            rate = flooding_success_rate(config, receivers="all").rate
        else:
            raise ValueError(f"unknown method {method!r}")
        return cls(base=base or CostModel.cam(), success_rate=rate)

    @property
    def expected_attempts(self) -> float:
        """Expected transmissions per reliable delivery (geometric retries)."""
        return 1.0 / self.success_rate

    def effective(self) -> CostModel:
        """The refined ``(t_f, e_f)``: per-attempt cost times expected attempts."""
        return CostModel(
            time=self.base.time * self.expected_attempts,
            energy=self.base.energy * self.expected_attempts,
        )


@dataclass(frozen=True)
class RefinedFloodingSummary:
    """Reliable flooding as priced by the refined CFM model.

    Attributes
    ----------
    reachability:
        1.0 — CFM semantics are reliable by construction.
    latency_phases:
        ``P * expected_attempts``: each ring-hop now pays retries.
    broadcasts:
        ``(N + 1) * expected_attempts`` transmissions in expectation.
    expected_attempts:
        The per-delivery retry factor the costs are built from.
    """

    reachability: float
    latency_phases: float
    broadcasts: float
    expected_attempts: float


def refined_flooding_summary(
    config: AnalysisConfig, *, method: str = "ring"
) -> RefinedFloodingSummary:
    """Price reliable flooding under the density-aware CFM.

    Contrast with :func:`repro.analysis.flooding.flooding_cfm_summary`,
    whose plain CFM costs are density-free — the refinement is exactly
    the paper's point: the ``O(N)``-broadcast claim hides a factor that
    blows up with density.
    """
    model = DensityAwareCostModel.for_density(config, method=method)
    attempts = model.expected_attempts
    return RefinedFloodingSummary(
        reachability=1.0,
        latency_phases=config.n_rings * attempts,
        broadcasts=(config.n_nodes + 1.0) * attempts,
        expected_attempts=attempts,
    )
