"""Simple-flooding analysis: CFM closed forms, CAM behaviour, Fig. 12.

Simple flooding is probability-based broadcasting with ``p = 1``
(Sec. 4).  Under CFM it is trivially analyzable — reachability 1, the
wavefront advances one ring per phase, and every node broadcasts exactly
once.  Under CAM it is the ``p = 1`` slice of the ring model, and the
paper's concluding experiment (Fig. 12) relates its per-broadcast
*success rate* to the optimal broadcast probability of Fig. 4(b).

The success rate of a broadcast is the fraction of the sender's
neighbors that receive it collision-free.  We derive it from the same
machinery as Eq. (4): in phase ``T_i``, a node at ring ``j``, offset
``x`` has ``g(x)`` transmitting neighbors, and the expected number of
packets it receives collision-free is the expected number of singleton
slots, ``g ((s-1)/s)^(g-1)``.  Integrating this over a receiver
population counts successful (packet, receiver) pairs; dividing by
(transmissions x rho) — each transmission is offered to ``rho``
neighbors on average — gives the phase's success rate.

The paper does not state whether already-informed neighbors count as
successful receivers.  Counting only *uninformed* receivers reproduces
Fig. 12's observation — an optimal-``p``/success-rate ratio that is
nearly constant in density (~10 here; the paper reports ~11) — so that
is the default; ``receivers="all"`` selects the other reading (ratio
~2, also roughly constant but drifting).  See EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.config import AnalysisConfig
from repro.analysis.ring_model import RingModel
from repro.analysis.trace import BroadcastTrace
from repro.collision.slots import expected_singleton_slots
from repro.utils.validation import check_in, check_positive_int

__all__ = [
    "FloodingCfmSummary",
    "flooding_cfm_summary",
    "flooding_trace",
    "SuccessRateResult",
    "flooding_success_rate",
]


@dataclass(frozen=True)
class FloodingCfmSummary:
    """Closed-form performance of simple flooding under CFM (Sec. 4).

    Attributes
    ----------
    reachability:
        Always 1.0: CFM transmissions are reliable and, at the paper's
        densities, the deployment is connected in expectation.
    latency_phases:
        ``P``: the wavefront crosses one ring of width ``r`` per phase.
    broadcasts:
        ``N + 1``: every node (plus the source) broadcasts exactly once.
    """

    reachability: float
    latency_phases: int
    broadcasts: float


def flooding_cfm_summary(config: AnalysisConfig) -> FloodingCfmSummary:
    """Simple flooding in CFM: the paper's ``O(Pr)`` time / ``O(Ne)`` energy."""
    return FloodingCfmSummary(
        reachability=1.0,
        latency_phases=config.n_rings,
        broadcasts=config.n_nodes + 1.0,
    )


def flooding_trace(
    config: AnalysisConfig | RingModel, *, max_phases: int = 200
) -> BroadcastTrace:
    """Simple flooding in CAM — the ``p = 1`` run of the ring model."""
    model = config if isinstance(config, RingModel) else RingModel(config)
    return model.run(1.0, max_phases=max_phases)


@dataclass(frozen=True)
class SuccessRateResult:
    """Per-phase and aggregate broadcast success rates of flooding in CAM.

    Attributes
    ----------
    rate:
        Aggregate success rate: collision-free (packet, receiver) pairs
        divided by offered pairs, over the whole execution (phase 1 —
        the source's solo, collision-free broadcast — excluded, since
        the paper correlates the rate of the *relaying* broadcasts).
    per_phase_rates:
        The same ratio per phase; index 0 (the source phase) is 1.0 by
        construction, ``NaN`` for phases with no transmissions.
    per_phase_transmissions:
        Expected transmissions per phase (the weights of the aggregate).
    receivers:
        Which receiver population was counted (``"uninformed"``/``"all"``).
    trace:
        The underlying flooding trace.
    """

    rate: float
    per_phase_rates: np.ndarray = field(repr=False)
    per_phase_transmissions: np.ndarray = field(repr=False)
    receivers: str = "uninformed"
    trace: BroadcastTrace | None = field(default=None, repr=False)


def flooding_success_rate(
    config: AnalysisConfig | RingModel,
    *,
    receivers: str = "uninformed",
    max_phases: int = 200,
) -> SuccessRateResult:
    """Average broadcast success rate of simple flooding in CAM (Fig. 12).

    Parameters
    ----------
    config:
        Analytical configuration or a prebuilt ring model.
    receivers:
        ``"uninformed"`` counts only receivers that have not yet been
        informed (default; see module docstring); ``"all"`` counts every
        in-range node.
    max_phases:
        Phase budget for the underlying flooding run.
    """
    check_in("receivers", receivers, ("uninformed", "all"))
    model = config if isinstance(config, RingModel) else RingModel(config)
    check_positive_int("max_phases", max_phases)
    cfg = model.config
    trace = model.run(1.0, max_phases=max_phases)
    new = trace.new_by_phase_ring  # (phases, P)
    phases = new.shape[0]

    rates = np.ones(phases)
    transmissions = np.zeros(phases)
    transmissions[0] = 1.0  # the source
    cum = new[0].copy()
    for i in range(1, phases):
        prev = new[i - 1]
        tx = float(prev.sum())
        transmissions[i] = tx
        if tx <= 0:
            rates[i] = np.nan
            cum += new[i]
            continue
        delivered = 0.0
        for j in range(1, cfg.n_rings + 1):
            g = model.informed_neighbors(j, prev)
            singles = expected_singleton_slots(g, cfg.slots)
            if receivers == "all":
                density = cfg.delta
            else:
                area = model.partition.ring_areas[j - 1]
                density = max(cfg.delta - cum[j - 1] / area, 0.0)
            delivered += density * model.ring_integral(j, singles)
        offered = tx * cfg.rho
        rates[i] = delivered / offered
        cum += new[i]

    weights = transmissions[1:]
    valid = ~np.isnan(rates[1:])
    if weights[valid].sum() > 0:
        aggregate = float(np.average(rates[1:][valid], weights=weights[valid]))
    else:  # degenerate: nothing ever transmitted after the source
        aggregate = 1.0
    return SuccessRateResult(
        rate=aggregate,
        per_phase_rates=rates,
        per_phase_transmissions=transmissions,
        receivers=receivers,
        trace=trace,
    )
