"""Appendix A: the ring recursion under a carrier-sense collision model.

In the carrier-sense variant, a transmission to ``u`` also fails when
any node within carrier-sense range of ``u`` (but outside transmission
range) transmits in the same slot.  The recursion is unchanged except
that the per-node reception probability becomes
``mu'(g(x) * p, h(x) * p, s)`` (Eq. A.3), where ``h(x)`` counts freshly
informed nodes in the carrier-sense annulus (Eq. A.2).

Note: the paper prints the integrand of Eq. (A.3) as
``mu'(g(x), h(x), s)``; consistency with Eq. (4) — only the nodes that
*decide* to broadcast contend — requires both arguments to be scaled by
``p``, which is what we implement.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.config import AnalysisConfig
from repro.analysis.ring_model import RingModel
from repro.collision.carrier import CarrierCollisionTable

__all__ = ["CarrierRingModel"]


class CarrierRingModel(RingModel):
    """Ring model with carrier-sense collisions (paper Appendix A).

    The carrier-sense radius is ``config.carrier_factor * config.radius``
    (the paper's "typically twice the transmission range" is the default
    ``carrier_factor = 2``).
    """

    def __init__(self, config: AnalysisConfig, *, exact_limit: int = 96):
        super().__init__(config)
        self._carrier_table = CarrierCollisionTable(exact_limit=exact_limit)
        x = self._rule.nodes * config.radius
        # B(x, k) per ring at quadrature nodes, plus the matching ring window.
        self._carrier_areas = []
        self._carrier_windows = []
        for j in range(1, config.n_rings + 1):
            self._carrier_areas.append(
                self.partition.carrier_areas(j, x, config.carrier_radius)
            )
            self._carrier_windows.append(
                self.partition.carrier_window(j, config.carrier_radius)
            )

    def carrier_neighbors(self, j: int, prev_new: np.ndarray) -> np.ndarray:
        """Eq. (A.2): expected freshly-informed nodes ``h(x)`` in the
        carrier-sense annulus of a node in ring ``j``.

        Accepts the same leading batch axes as
        :meth:`~repro.analysis.ring_model.RingModel.informed_neighbors`.
        """
        prev_new = np.asarray(prev_new, dtype=float)
        P = self.config.n_rings
        h = np.zeros(prev_new.shape[:-1] + (self.config.quad_nodes,))
        areas = self._carrier_areas[j - 1]
        for offset, k in enumerate(self._carrier_windows[j - 1]):
            if 1 <= k <= P:
                h += prev_new[..., k - 1, None] * areas[:, offset] / self._ring_areas[k - 1]
        return h

    def _reception_probability(self, j: int, p, prev_new: np.ndarray) -> np.ndarray:
        g = self.informed_neighbors(j, prev_new)
        h = self.carrier_neighbors(j, prev_new)
        return self._carrier_table.mu_real(g * p, h * p, self.config.slots)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        c = self.config
        return (
            f"CarrierRingModel(P={c.n_rings}, rho={c.rho}, s={c.slots}, "
            f"carrier={c.carrier_factor}r)"
        )
