"""How precisely must the broadcast probability be tuned?

The optimizers report a single best ``p``, but a deployment can rarely
set it exactly: densities drift, estimates err.  This module quantifies
the tolerance around the optimum:

* :func:`robust_probability_band` — the interval of ``p`` whose metric
  stays within a factor of the optimum (e.g. "any p in [0.07, 0.14]
  keeps ≥ 95% of the best reachability");
* :func:`density_mismatch_penalty` — the cost of tuning for the wrong
  density: optimize at ``rho_assumed``, deploy at ``rho_actual``.

Both build directly on the paper's Fig. 4 machinery; the flatness of
the bell curve near its peak is what makes PB_CAM practical, and these
helpers make that flatness a first-class, queryable quantity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.config import AnalysisConfig
from repro.analysis.optimizer import (
    METRICS,
    default_probability_grid,
    optimal_probability,
)
from repro.analysis.ring_model import RingModel
from repro.errors import InfeasibleConstraintError
from repro.utils.validation import check_fraction, check_in

__all__ = [
    "RobustnessBand",
    "robust_probability_band",
    "MismatchResult",
    "density_mismatch_penalty",
]


@dataclass(frozen=True)
class RobustnessBand:
    """The tolerance interval around an optimal probability.

    Attributes
    ----------
    p_opt / value_opt:
        The optimum itself.
    p_low / p_high:
        The widest contiguous grid interval containing ``p_opt`` whose
        metric values stay within ``tolerance`` of the optimum.
    tolerance:
        Acceptable relative degradation (e.g. 0.05 = within 95% for a
        maximized metric, within 105% of the minimum for a minimized
        one).
    """

    metric: str
    constraint: float
    p_opt: float
    value_opt: float
    p_low: float
    p_high: float
    tolerance: float

    @property
    def width(self) -> float:
        """Absolute width of the acceptable interval."""
        return self.p_high - self.p_low

    @property
    def relative_width(self) -> float:
        """Width relative to the optimum — the tuning slack in 'percent of p'."""
        return self.width / self.p_opt if self.p_opt else float("inf")


def robust_probability_band(
    config: AnalysisConfig | RingModel,
    metric: str,
    constraint: float,
    *,
    tolerance: float = 0.05,
    p_grid: np.ndarray | None = None,
) -> RobustnessBand:
    """Compute the near-optimal tolerance band for one paper metric."""
    check_fraction("tolerance", tolerance)
    spec = METRICS[check_in("metric", metric, METRICS)]
    result = optimal_probability(config, metric, constraint, p_grid=p_grid)
    grid, values = result.p_grid, result.values
    if spec.sense == "max":
        ok = values >= result.value * (1.0 - tolerance)
    else:
        ok = values <= result.value * (1.0 + tolerance)
    ok &= ~np.isnan(values)
    best_idx = int(np.nanargmin(np.abs(grid - result.p)))
    lo = best_idx
    while lo > 0 and ok[lo - 1]:
        lo -= 1
    hi = best_idx
    while hi < len(grid) - 1 and ok[hi + 1]:
        hi += 1
    return RobustnessBand(
        metric=metric,
        constraint=float(constraint),
        p_opt=result.p,
        value_opt=result.value,
        p_low=float(grid[lo]),
        p_high=float(grid[hi]),
        tolerance=tolerance,
    )


@dataclass(frozen=True)
class MismatchResult:
    """The price of tuning ``p`` against a wrong density estimate.

    Attributes
    ----------
    p_used:
        The probability chosen for the assumed density.
    value_achieved:
        The metric actually achieved at the true density with that ``p``
        (NaN if the constraint became infeasible).
    value_optimal:
        What the true-density optimum would have achieved.
    efficiency:
        ``achieved / optimal`` for maximized metrics,
        ``optimal / achieved`` for minimized ones (1.0 = no loss;
        0.0 when infeasible).
    """

    rho_assumed: float
    rho_actual: float
    p_used: float
    value_achieved: float
    value_optimal: float
    efficiency: float


def density_mismatch_penalty(
    config: AnalysisConfig,
    rho_assumed: float,
    metric: str = "reachability_at_latency",
    constraint: float = 5.0,
    *,
    p_grid: np.ndarray | None = None,
) -> MismatchResult:
    """Optimize at ``rho_assumed``, evaluate at ``config.rho``.

    For the latency-constrained metric the penalty is asymmetric —
    and not in the direction naive intuition suggests: *over*estimating
    density (``p`` too small) starves the wave and misses the deadline
    badly, while *under*estimating it (``p`` too large) only slides down
    the shallow right flank of the bell curve.  (At `rho=60`, a 3x
    underestimate keeps ~90% efficiency; a 3x overestimate drops to
    ~58%.)  Either way the loss motivates the paper's Fig. 12 proposal
    of tuning from a locally observable success rate instead of a
    density estimate.
    """
    spec = METRICS[check_in("metric", metric, METRICS)]
    grid = default_probability_grid() if p_grid is None else np.asarray(p_grid, float)
    assumed = optimal_probability(
        config.with_rho(rho_assumed), metric, constraint, p_grid=grid
    )
    actual_opt = optimal_probability(config, metric, constraint, p_grid=grid)
    model = RingModel(config)
    try:
        achieved = spec.evaluate(model, assumed.p, constraint)
    except InfeasibleConstraintError:
        achieved = float("nan")

    if np.isnan(achieved):
        efficiency = 0.0
    elif spec.sense == "max":
        efficiency = achieved / actual_opt.value if actual_opt.value else 1.0
    else:
        efficiency = actual_opt.value / achieved if achieved else 1.0
    return MismatchResult(
        rho_assumed=float(rho_assumed),
        rho_actual=float(config.rho),
        p_used=assumed.p,
        value_achieved=float(achieved),
        value_optimal=actual_opt.value,
        efficiency=float(efficiency),
    )
