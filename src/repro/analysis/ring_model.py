"""The ring-based phase recursion of Sec. 4.2.2 (Eq. 3 and Eq. 4).

The field is partitioned into ``P`` concentric rings of width ``r``.
The model tracks ``n_j^i``, the expected number of nodes in ring ``j``
that first receive the packet during phase ``T_i``:

* phase ``T_1``: only the source transmits, so every node in ring 1 is
  informed — ``n_1^1 = delta * pi * r^2 = rho``;
* phase ``T_i``: a still-uninformed node ``u`` in ring ``j`` at radial
  offset ``x`` sees ``g(x)`` freshly informed neighbors (Eq. 3), each of
  which broadcasts with probability ``p`` into one of ``s`` random
  slots; ``u`` is informed with probability ``mu(g(x) * p, s)``, and
  Eq. (4) integrates this over the ring's uninformed population.

The radial integral is evaluated with a fixed Gauss–Legendre rule and
all per-ring geometry (the ``A(x, k)`` areas) is precomputed at the
quadrature nodes, so one :class:`RingModel` instance amortizes its setup
over arbitrarily many probability sweeps.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.config import AnalysisConfig
from repro.analysis.trace import BroadcastTrace
from repro.collision.slots import SlotCollisionTable
from repro.geometry.rings import RingPartition
from repro.utils.quadrature import GaussLegendreRule
from repro.utils.validation import check_positive, check_positive_int, check_probability

__all__ = ["RingModel"]


class RingModel:
    """Analytical model of PB_CAM on a uniform disk deployment.

    Parameters
    ----------
    config:
        Model parameters; see :class:`repro.analysis.config.AnalysisConfig`.

    Notes
    -----
    Instances are immutable after construction and safe to reuse across
    many :meth:`run` calls (the collision table grows monotonically but
    its values never change).
    """

    #: Arrivals per phase below this fraction of the node population are
    #: treated as termination of the broadcast wave.
    DEFAULT_TOL = 1e-9

    def __init__(self, config: AnalysisConfig):
        self.config = config
        self.partition = RingPartition(config.n_rings, config.radius)
        self._rule = GaussLegendreRule.unit(config.quad_nodes)
        self._mu_table = SlotCollisionTable()
        # Precompute per-ring geometry at the quadrature nodes.
        # areas[j-1] has shape (quad_nodes, 3): A(x, j-1), A(x, j), A(x, j+1).
        x = self._rule.nodes * config.radius
        self._areas = [
            self.partition.transmission_areas(j, x)
            for j in range(1, config.n_rings + 1)
        ]
        # Radial weight (r(j-1) + x) * quadrature weight * 2*pi * r, per ring.
        # The extra factor `radius` maps the x-integral from [0,1] to [0,r].
        self._radial_weight = [
            2.0
            * np.pi
            * config.radius
            * (config.radius * (j - 1) + x)
            * self._rule.weights
            for j in range(1, config.n_rings + 1)
        ]
        self._ring_areas = self.partition.ring_areas

    # ------------------------------------------------------------------
    def informed_neighbors(self, j: int, prev_new: np.ndarray) -> np.ndarray:
        """Eq. (3): expected freshly-informed neighbors ``g(x)``.

        Parameters
        ----------
        j:
            Ring of the receiving node (1-based).
        prev_new:
            ``n_k^{i-1}`` per ring (length ``n_rings``).

        Returns
        -------
        numpy.ndarray
            ``g`` evaluated at the quadrature nodes of ring ``j``.
        """
        P = self.config.n_rings
        g = np.zeros(self.config.quad_nodes)
        for offset, k in enumerate((j - 1, j, j + 1)):
            if 1 <= k <= P:
                g += prev_new[k - 1] * self._areas[j - 1][:, offset] / self._ring_areas[k - 1]
        return g

    def ring_integral(self, j: int, values: np.ndarray) -> float:
        """Integrate node-pointwise ``values`` over ring ``j``.

        ``values`` must be sampled at this model's quadrature nodes; the
        result is ``∫∫_ring values dA`` — multiply by a node density to
        turn a per-node probability into an expected node count.
        """
        return float(np.dot(self._radial_weight[j - 1], values))

    def _reception_probability(self, j: int, p: float, prev_new: np.ndarray) -> np.ndarray:
        """``mu(g(x) * p, s)`` at the quadrature nodes of ring ``j``.

        Split out so the carrier-sense subclass can override just the
        collision law while inheriting the phase recursion.
        """
        g = self.informed_neighbors(j, prev_new)
        return self._mu_table.mu_real(g * p, self.config.slots, method=self.config.mu_method)

    # ------------------------------------------------------------------
    def run(
        self,
        p: float,
        *,
        max_phases: int = 200,
        tol: float | None = None,
        initial_informed: np.ndarray | None = None,
        initial_broadcasts: float = 1.0,
    ) -> BroadcastTrace:
        """Run the phase recursion and return the resulting trace.

        Parameters
        ----------
        p:
            Broadcast probability (``p = 1`` is simple flooding in CAM).
        max_phases:
            Hard phase budget.  Metrics with a latency constraint only
            need that many phases; energy metrics should leave this high
            enough for the wave to die out (the recursion stops early on
            its own, see ``tol``).
        tol:
            Termination threshold on per-phase arrivals, as a fraction
            of the node population.  Defaults to :attr:`DEFAULT_TOL`.
        initial_informed:
            Expected nodes informed during phase 1, per ring.  Defaults
            to the paper's setting — the center source fills ring 1
            (``[rho, 0, ..., 0]``).  Any radially symmetric seeding is
            valid (e.g. a query injected by nodes of an outer ring);
            entries may not exceed the ring populations.
        initial_broadcasts:
            Transmissions attributed to phase 1 (the paper's lone
            source broadcast = 1).

        Returns
        -------
        BroadcastTrace
        """
        p = check_probability("p", p, allow_zero=True)
        max_phases = check_positive_int("max_phases", max_phases)
        tol_abs = (self.DEFAULT_TOL if tol is None else check_positive("tol", tol)) * (
            self.config.n_nodes
        )

        cfg = self.config
        P = cfg.n_rings
        delta = cfg.delta

        if initial_informed is None:
            new = np.zeros(P)
            new[0] = cfg.rho  # T_1: the source informs all of ring 1
        else:
            new = np.asarray(initial_informed, dtype=float).copy()
            if new.shape != (P,):
                raise ValueError(f"initial_informed must have shape ({P},)")
            if np.any(new < 0):
                raise ValueError("initial_informed entries must be non-negative")
            caps = delta * self._ring_areas
            if np.any(new > caps * (1 + 1e-9)):
                raise ValueError(
                    "initial_informed exceeds a ring's expected population"
                )
        check_positive("initial_broadcasts", initial_broadcasts, allow_zero=True)
        cum = new.copy()
        history_new = [new.copy()]
        history_bcast = [float(initial_broadcasts)]

        for _ in range(2, max_phases + 1):
            nxt = np.zeros(P)
            for j in range(1, P + 1):
                capacity = delta * self._ring_areas[j - 1] - cum[j - 1]
                if capacity <= 0:
                    continue
                mu = self._reception_probability(j, p, new)
                uninformed_density = capacity / self._ring_areas[j - 1]
                integral = float(np.dot(self._radial_weight[j - 1], mu))
                nxt[j - 1] = min(integral * uninformed_density, capacity)
            bcast = p * float(new.sum())  # last phase's arrivals broadcast now
            history_bcast.append(bcast)
            history_new.append(nxt.copy())
            cum += nxt
            new = nxt
            if new.sum() < tol_abs:
                break

        return BroadcastTrace(
            config=cfg,
            p=p,
            new_by_phase_ring=np.array(history_new),
            broadcasts_by_phase=np.array(history_bcast),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        c = self.config
        return f"RingModel(P={c.n_rings}, rho={c.rho}, s={c.slots}, mu={c.mu_method})"
