"""The ring-based phase recursion of Sec. 4.2.2 (Eq. 3 and Eq. 4).

The field is partitioned into ``P`` concentric rings of width ``r``.
The model tracks ``n_j^i``, the expected number of nodes in ring ``j``
that first receive the packet during phase ``T_i``:

* phase ``T_1``: only the source transmits, so every node in ring 1 is
  informed — ``n_1^1 = delta * pi * r^2 = rho``;
* phase ``T_i``: a still-uninformed node ``u`` in ring ``j`` at radial
  offset ``x`` sees ``g(x)`` freshly informed neighbors (Eq. 3), each of
  which broadcasts with probability ``p`` into one of ``s`` random
  slots; ``u`` is informed with probability ``mu(g(x) * p, s)``, and
  Eq. (4) integrates this over the ring's uninformed population.

The radial integral is evaluated with a fixed Gauss–Legendre rule and
all per-ring geometry (the ``A(x, k)`` areas) is precomputed at the
quadrature nodes, so one :class:`RingModel` instance amortizes its setup
over arbitrarily many probability sweeps.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.config import AnalysisConfig
from repro.analysis.trace import BroadcastTrace
from repro.collision.slots import SlotCollisionTable
from repro.errors import ConfigurationError
from repro.geometry.rings import RingPartition
from repro.utils.quadrature import GaussLegendreRule
from repro.utils.validation import check_positive, check_positive_int, check_probability

__all__ = ["RingModel"]


class RingModel:
    """Analytical model of PB_CAM on a uniform disk deployment.

    Parameters
    ----------
    config:
        Model parameters; see :class:`repro.analysis.config.AnalysisConfig`.

    Notes
    -----
    Instances are immutable after construction and safe to reuse across
    many :meth:`run` calls (the collision table grows monotonically but
    its values never change).
    """

    #: Arrivals per phase below this fraction of the node population are
    #: treated as termination of the broadcast wave.
    DEFAULT_TOL = 1e-9

    def __init__(self, config: AnalysisConfig):
        self.config = config
        self.partition = RingPartition(config.n_rings, config.radius)
        self._rule = GaussLegendreRule.unit(config.quad_nodes)
        self._mu_table = SlotCollisionTable()
        # Precompute per-ring geometry at the quadrature nodes.
        # areas[j-1] has shape (quad_nodes, 3): A(x, j-1), A(x, j), A(x, j+1).
        x = self._rule.nodes * config.radius
        self._areas = [
            self.partition.transmission_areas(j, x)
            for j in range(1, config.n_rings + 1)
        ]
        # Radial weight (r(j-1) + x) * quadrature weight * 2*pi * r, per ring.
        # The extra factor `radius` maps the x-integral from [0,1] to [0,r].
        self._radial_weight = [
            2.0
            * np.pi
            * config.radius
            * (config.radius * (j - 1) + x)
            * self._rule.weights
            for j in range(1, config.n_rings + 1)
        ]
        self._ring_areas = self.partition.ring_areas
        # Eq. (3) weights A(x, k) / area(k) per receiving ring, folded
        # once so the recursion's hot loop is a bare multiply-accumulate.
        self._neighbor_weights = [
            [
                (k - 1, self._areas[j - 1][:, offset] / self._ring_areas[k - 1])
                for offset, k in enumerate((j - 1, j, j + 1))
                if 1 <= k <= config.n_rings
            ]
            for j in range(1, config.n_rings + 1)
        ]

    # ------------------------------------------------------------------
    def informed_neighbors(self, j: int, prev_new: np.ndarray) -> np.ndarray:
        """Eq. (3): expected freshly-informed neighbors ``g(x)``.

        Parameters
        ----------
        j:
            Ring of the receiving node (1-based).
        prev_new:
            ``n_k^{i-1}`` per ring (length ``n_rings``), or a batch of
            such vectors with any leading axes (``(..., n_rings)``).

        Returns
        -------
        numpy.ndarray
            ``g`` evaluated at the quadrature nodes of ring ``j``; shape
            ``(..., quad_nodes)`` with ``prev_new``'s leading axes.
        """
        prev_new = np.asarray(prev_new, dtype=float)
        g = np.zeros(prev_new.shape[:-1] + (self.config.quad_nodes,))
        for k_idx, weight in self._neighbor_weights[j - 1]:
            g += prev_new[..., k_idx, None] * weight
        return g

    def ring_integral(self, j: int, values: np.ndarray) -> float:
        """Integrate node-pointwise ``values`` over ring ``j``.

        ``values`` must be sampled at this model's quadrature nodes; the
        result is ``∫∫_ring values dA`` — multiply by a node density to
        turn a per-node probability into an expected node count.
        """
        return float(np.dot(self._radial_weight[j - 1], values))

    def _reception_probability(self, j: int, p, prev_new: np.ndarray) -> np.ndarray:
        """``mu(g(x) * p, s)`` at the quadrature nodes of ring ``j``.

        ``p`` is a scalar for the per-``p`` path; the batched recursion
        passes a ``(batch, 1)`` column alongside ``(batch, n_rings)``
        ``prev_new`` and receives ``(batch, quad_nodes)`` back.  Split
        out so the carrier-sense subclass can override just the
        collision law while inheriting the phase recursion.
        """
        g = self.informed_neighbors(j, prev_new)
        return self._mu_table.mu_real(g * p, self.config.slots, method=self.config.mu_method)

    def _validated_initial(self, initial_informed: np.ndarray | None) -> np.ndarray:
        """Phase-1 arrivals per ring, validated against the ring populations."""
        cfg = self.config
        P = cfg.n_rings
        if initial_informed is None:
            new = np.zeros(P)
            new[0] = cfg.rho  # T_1: the source informs all of ring 1
            return new
        new = np.asarray(initial_informed, dtype=float).copy()
        if new.shape != (P,):
            raise ValueError(f"initial_informed must have shape ({P},)")
        if np.any(new < 0):
            raise ValueError("initial_informed entries must be non-negative")
        caps = cfg.delta * self._ring_areas
        if np.any(new > caps * (1 + 1e-9)):
            raise ValueError(
                "initial_informed exceeds a ring's expected population"
            )
        return new

    # ------------------------------------------------------------------
    def run(
        self,
        p: float,
        *,
        max_phases: int = 200,
        tol: float | None = None,
        initial_informed: np.ndarray | None = None,
        initial_broadcasts: float = 1.0,
    ) -> BroadcastTrace:
        """Run the phase recursion and return the resulting trace.

        Parameters
        ----------
        p:
            Broadcast probability (``p = 1`` is simple flooding in CAM).
        max_phases:
            Hard phase budget.  Metrics with a latency constraint only
            need that many phases; energy metrics should leave this high
            enough for the wave to die out (the recursion stops early on
            its own, see ``tol``).
        tol:
            Termination threshold on per-phase arrivals, as a fraction
            of the node population.  Defaults to :attr:`DEFAULT_TOL`.
        initial_informed:
            Expected nodes informed during phase 1, per ring.  Defaults
            to the paper's setting — the center source fills ring 1
            (``[rho, 0, ..., 0]``).  Any radially symmetric seeding is
            valid (e.g. a query injected by nodes of an outer ring);
            entries may not exceed the ring populations.
        initial_broadcasts:
            Transmissions attributed to phase 1 (the paper's lone
            source broadcast = 1).

        Returns
        -------
        BroadcastTrace
        """
        p = check_probability("p", p, allow_zero=True)
        max_phases = check_positive_int("max_phases", max_phases)
        tol_abs = (self.DEFAULT_TOL if tol is None else check_positive("tol", tol)) * (
            self.config.n_nodes
        )

        cfg = self.config
        P = cfg.n_rings
        delta = cfg.delta

        new = self._validated_initial(initial_informed)
        check_positive("initial_broadcasts", initial_broadcasts, allow_zero=True)
        cum = new.copy()
        history_new = [new.copy()]
        history_bcast = [float(initial_broadcasts)]

        for _ in range(2, max_phases + 1):
            nxt = np.zeros(P)
            for j in range(1, P + 1):
                capacity = delta * self._ring_areas[j - 1] - cum[j - 1]
                if capacity <= 0:
                    continue
                mu = self._reception_probability(j, p, new)
                uninformed_density = capacity / self._ring_areas[j - 1]
                # Multiply-then-pairwise-sum (not BLAS dot): numpy's pairwise
                # reduction is bitwise identical between this 1-D form and the
                # row-wise batched form, which keeps run_batch exactly on
                # run()'s trajectory.
                integral = float((mu * self._radial_weight[j - 1]).sum())
                nxt[j - 1] = min(integral * uninformed_density, capacity)
            bcast = p * float(new.sum())  # last phase's arrivals broadcast now
            history_bcast.append(bcast)
            history_new.append(nxt.copy())
            cum += nxt
            new = nxt
            if new.sum() < tol_abs:
                break

        return BroadcastTrace(
            config=cfg,
            p=p,
            new_by_phase_ring=np.array(history_new),
            broadcasts_by_phase=np.array(history_bcast),
        )

    # ------------------------------------------------------------------
    def run_batch(
        self,
        p_grid: np.ndarray,
        *,
        max_phases: int = 200,
        tol: float | None = None,
        initial_informed: np.ndarray | None = None,
        initial_broadcasts: float = 1.0,
    ) -> list[BroadcastTrace]:
        """Run the phase recursion for a whole probability grid at once.

        The recursion of :meth:`run` carries an extra leading ``p``-axis:
        one pass over the phases evaluates every probability of
        ``p_grid`` simultaneously, turning the per-phase work into a few
        ``(batch, quad_nodes)`` array operations instead of ``batch``
        separate Python recursions.  Probabilities whose wave dies early
        are frozen (their lanes stop contributing work) while the rest
        keep recursing, so each returned trace has exactly the phase
        count its scalar :meth:`run` would have produced.

        Parameters
        ----------
        p_grid:
            1-D array of broadcast probabilities.
        max_phases, tol, initial_informed, initial_broadcasts:
            As in :meth:`run`, applied to every probability.

        Returns
        -------
        list[BroadcastTrace]
            One trace per entry of ``p_grid``, in input order; each is
            bitwise identical to the corresponding ``run(p)`` trace
            (both paths reduce the quadrature with the same pairwise
            summation).
        """
        p_vec = np.asarray(p_grid, dtype=float)
        if p_vec.ndim != 1 or p_vec.size == 0:
            raise ConfigurationError("p_grid must be a non-empty 1-D array")
        if np.any((p_vec < 0.0) | (p_vec > 1.0)) or not np.all(np.isfinite(p_vec)):
            raise ConfigurationError("all probabilities must lie in [0, 1]")
        max_phases = check_positive_int("max_phases", max_phases)
        tol_abs = (self.DEFAULT_TOL if tol is None else check_positive("tol", tol)) * (
            self.config.n_nodes
        )
        check_positive("initial_broadcasts", initial_broadcasts, allow_zero=True)

        cfg = self.config
        P = cfg.n_rings
        delta = cfg.delta
        B = p_vec.size
        p_col = p_vec[:, None]

        new = np.tile(self._validated_initial(initial_informed), (B, 1))
        cum = new.copy()
        history_new = [new.copy()]
        history_bcast = [np.full(B, float(initial_broadcasts))]
        active = np.ones(B, dtype=bool)
        phases = np.ones(B, dtype=np.int64)

        for _ in range(2, max_phases + 1):
            if not active.any():
                break
            nxt = np.zeros((B, P))
            for j in range(1, P + 1):
                capacity = delta * self._ring_areas[j - 1] - cum[:, j - 1]
                rows = active & (capacity > 0)
                if not rows.any():
                    continue
                mu = self._reception_probability(j, p_col[rows], new[rows])
                uninformed_density = capacity[rows] / self._ring_areas[j - 1]
                integral = (mu * self._radial_weight[j - 1]).sum(axis=-1)
                nxt[rows, j - 1] = np.minimum(
                    integral * uninformed_density, capacity[rows]
                )
            # Frozen lanes broadcast nothing; their entries are truncated
            # away below, so the zero is only a placeholder.
            bcast = np.where(active, p_vec * new.sum(axis=1), 0.0)
            history_bcast.append(bcast)
            history_new.append(nxt)
            cum += nxt
            new = nxt
            phases[active] += 1
            active &= new.sum(axis=1) >= tol_abs

        new_arr = np.stack(history_new)  # (T, B, P)
        bc_arr = np.stack(history_bcast)  # (T, B)
        return [
            BroadcastTrace(
                config=cfg,
                p=float(p_vec[b]),
                new_by_phase_ring=new_arr[: phases[b], b].copy(),
                broadcasts_by_phase=bc_arr[: phases[b], b].copy(),
            )
            for b in range(B)
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        c = self.config
        return f"RingModel(P={c.n_rings}, rho={c.rho}, s={c.slots}, mu={c.mu_method})"
