"""Project-wide symbol table and name resolution.

:class:`Project` assembles the per-module summaries produced by
:mod:`repro.analysis.flow.summary` into one namespace: every function
and method gets a fully-qualified name (``repro.sim.engine.run_broadcast``,
``repro.sim.desimpl.DesBroadcast.run``, ``repro.obs.spans.<module>``),
classes get merged method tables over their project-local MRO, and
:meth:`Project.resolve_call` turns a :class:`CallSite` into concrete
targets.

Resolution handles the shapes this codebase actually uses:

* module imports and aliases (``import numpy as np`` →
  ``np.random.default_rng`` resolves to ``numpy.random.default_rng``);
* ``from``-imports, including one-level re-export chasing
  (``repro.store.task_key`` chases the package ``__init__`` binding to
  ``repro.store.keys.task_key``);
* function-local lazy imports (``sim.runner`` imports ``task_key``
  inside function bodies);
* ``self.method()`` with a project-local MRO walk;
* higher-order calls: a call through a parameter resolves to the
  union of project functions passed to that parameter at any project
  call site (``parallel_map(_execute, ...)`` makes calls through the
  callback parameter reach ``_execute``);
* value-method calls (``rng.integers(...)``, ``cell.spawn(2)``) reduce
  to a bare method name plus receiver roots — the analyses interpret
  those (generator methods, ``spawn``, duck-typed effect lookup).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.flow.summary import (
    MODULE_SCOPE,
    CallSite,
    FunctionSummary,
    ModuleSummary,
)

__all__ = ["FlowFunction", "ResolvedCall", "Project"]

#: Re-export chase depth bound; package ``__init__`` chains are short.
_CHASE_LIMIT = 5


@dataclass
class FlowFunction:
    """One function in project scope."""

    fq: str  #: fully-qualified name ("repro.sim.engine.run_broadcast")
    module: ModuleSummary
    summary: FunctionSummary


@dataclass
class ResolvedCall:
    """Concrete interpretation of one call site.

    ``project_targets`` — fully-qualified project functions the call may
    reach (several for higher-order parameters).  ``external`` — the
    canonical dotted name of a non-project callee ("" when the call is
    project-internal or opaque).  ``method_name`` — bare method name for
    value-method calls (``rng.integers`` → ``integers``); also set for
    calls of locals bound from attributes (the hoisted ``emit = t.emit``
    pattern reduces ``emit(...)`` to method name ``emit``).
    ``constructor_of`` — fully-qualified class name when the call
    instantiates a project class.  ``bound`` — True when positional
    argument 0 maps to the callee's second parameter (self-calls,
    method lookups, constructors).
    """

    project_targets: list[str] = field(default_factory=list)
    external: str = ""
    method_name: str = ""
    constructor_of: str = ""
    bound: bool = False


class Project:
    """Symbol table + resolver over a set of module summaries."""

    def __init__(self, summaries: list[ModuleSummary]) -> None:
        self.modules: dict[str, ModuleSummary] = {
            ms.module: ms for ms in summaries if ms.module
        }
        self.functions: dict[str, FlowFunction] = {}
        #: FQ class -> method name -> FQ function (own methods only)
        self._own_methods: dict[str, dict[str, str]] = {}
        #: FQ class -> base-class dotted texts (unresolved)
        self._raw_bases: dict[str, list[str]] = {}
        #: method name -> sorted FQ methods (duck-typed effect lookup)
        self.method_index: dict[str, list[str]] = {}
        #: (callee FQ, param name) -> FQ functions passed to that param
        self.param_callables: dict[tuple[str, str], set[str]] = {}
        self._merged_methods: dict[str, dict[str, str]] = {}

        for ms in summaries:
            if not ms.module:
                continue
            for cls_name, bases in ms.class_bases.items():
                fq_cls = f"{ms.module}.{cls_name}"
                self._raw_bases[fq_cls] = bases
                self._own_methods.setdefault(fq_cls, {})
            for fn in ms.functions:
                fq = f"{ms.module}.{fn.qualname}"
                self.functions[fq] = FlowFunction(fq=fq, module=ms, summary=fn)
                if fn.class_name and not fn.parent:
                    fq_cls = f"{ms.module}.{fn.class_name}"
                    self._own_methods.setdefault(fq_cls, {})[fn.name] = fq
        for methods in self._own_methods.values():
            for name, fq in methods.items():
                self.method_index.setdefault(name, []).append(fq)
        for name in self.method_index:
            self.method_index[name].sort()
        self._build_param_callables()

    # -- classes -------------------------------------------------------

    @property
    def classes(self) -> dict[str, dict[str, str]]:
        return {cls: self.methods_of(cls) for cls in self._own_methods}

    def is_class(self, fq: str) -> bool:
        return fq in self._own_methods

    def methods_of(self, fq_cls: str) -> dict[str, str]:
        """Merged method table of a class over its project-local MRO."""
        memo = self._merged_methods
        if fq_cls in memo:
            return memo[fq_cls]
        memo[fq_cls] = {}  # cycle guard: recursive base sees empty table
        merged: dict[str, str] = {}
        module = fq_cls.rsplit(".", 1)[0]
        ms = self.modules.get(module)
        cls_name = fq_cls.rsplit(".", 1)[1]
        for base_text in (ms.class_bases.get(cls_name, []) if ms else []):
            base_fq = self._resolve_class_text(ms, base_text) if ms else None
            if base_fq is not None:
                for name, fn in self.methods_of(base_fq).items():
                    merged.setdefault(name, fn)
        merged.update(self._own_methods.get(fq_cls, {}))
        memo[fq_cls] = merged
        return merged

    def _resolve_class_text(self, ms: ModuleSummary, text: str) -> str | None:
        head, _, rest = text.partition(".")
        dotted = ms.bindings.get(head, head)
        full = f"{dotted}.{rest}" if rest else dotted
        full = self._chase(full)
        return full if full in self._own_methods else None

    def lookup_method(self, fq_cls: str, name: str) -> str | None:
        return self.methods_of(fq_cls).get(name)

    # -- call resolution -----------------------------------------------

    def resolve_call(self, fn: FlowFunction, site: CallSite) -> ResolvedCall:
        target = site.target
        if not target:
            # complex callee expression (subscript, call result, lambda)
            return ResolvedCall()
        parts = target.split(".")
        head, rest = parts[0], parts[1:]
        s = fn.summary

        if head == "self" and s.class_name:
            if len(rest) == 1:
                fq_cls = f"{fn.module.module}.{s.class_name}"
                meth = self.lookup_method(fq_cls, rest[0])
                if meth is not None:
                    return ResolvedCall([meth], bound=True)
            return ResolvedCall(method_name=rest[-1] if rest else "", bound=True)

        scope = self._scope_lookup(fn, head)
        if scope is not None:
            kind, value = scope
            if kind == "fn":
                if rest:  # attribute of a function object — opaque
                    return ResolvedCall(method_name=rest[-1])
                return ResolvedCall([value]) if value in self.functions else ResolvedCall()
            if kind == "param":
                if rest:
                    return ResolvedCall(method_name=rest[-1])
                cands = sorted(self.param_callables.get((fn.fq, head), ()))
                return ResolvedCall(cands, method_name=head if not cands else "")
            if kind == "local":
                # calling a local value: a stored callable (method name =
                # the local's own name, for the hoisted-guard pattern) or
                # a method on it (rng.integers → integers)
                return ResolvedCall(method_name=rest[-1] if rest else head)
            dotted = value  # kind == "dotted"
        else:
            dotted = head  # builtin or late-bound global

        full = ".".join([dotted, *rest]) if rest else dotted
        return self._resolve_dotted(full, method_fallback=rest[-1] if rest else "")

    def _scope_lookup(
        self, fn: FlowFunction, name: str
    ) -> tuple[str, str] | None:
        """Resolve a bare name in a function's scope chain.

        Returns ``(kind, value)`` with kind one of ``fn`` (project
        function FQ), ``param``, ``local``, ``dotted`` (canonical dotted
        prefix) — or None for builtins/unknowns.
        """
        s: FunctionSummary | None = fn.summary
        first = True
        while s is not None:
            if name in s.local_imports:
                return ("dotted", s.local_imports[name])
            if name in s.local_funcs:
                return ("fn", f"{fn.module.module}.{s.local_funcs[name]}")
            if name in s.params:
                return ("param", name) if first else ("local", name)
            if name in s.derive and s.qualname != MODULE_SCOPE:
                return ("local", name)
            parent = s.parent
            s = None
            first = False
            if parent:
                pf = self.functions.get(f"{fn.module.module}.{parent}")
                s = pf.summary if pf is not None else None
        if name in fn.module.bindings:
            bound = fn.module.bindings[name]
            own_prefix = f"{fn.module.module}." if fn.module.module else ""
            if own_prefix and bound == f"{own_prefix}{name}":
                fq = bound
                if fq in self.functions:
                    return ("fn", fq)
                if fq in self._own_methods:
                    return ("dotted", fq)  # own class → constructor path
                return ("dotted", fq)  # module constant: opaque dotted
            return ("dotted", bound)
        return None

    def _chase(self, full: str) -> str:
        """Follow re-export bindings (``pkg.name`` → ``pkg.mod.name``)."""
        for _ in range(_CHASE_LIMIT):
            module, _, last = full.rpartition(".")
            ms = self.modules.get(module)
            if ms is None or last not in ms.bindings:
                return full
            bound = ms.bindings[last]
            if bound == full:
                return full
            full = bound
        return full

    def _resolve_dotted(self, full: str, method_fallback: str = "") -> ResolvedCall:
        full = self._chase(full)
        if full in self.functions:
            return ResolvedCall([full])
        if full in self._own_methods:
            init = self.lookup_method(full, "__init__")
            return ResolvedCall(
                [init] if init else [], constructor_of=full, bound=True
            )
        # Cls.method referenced as a dotted path (unbound)
        module, _, last = full.rpartition(".")
        if module in self._own_methods:
            meth = self.lookup_method(module, last)
            if meth is not None:
                return ResolvedCall([meth], bound=False)
        if full.split(".", 1)[0] == "repro":
            # a project path that resolves to nothing callable (constant,
            # missing attr): opaque, but keep the method name for duck use
            return ResolvedCall(method_name=method_fallback)
        return ResolvedCall(external=full, method_name=method_fallback)

    # -- higher-order parameter candidates -----------------------------

    def resolve_value_callable(self, fn: FlowFunction, root: str) -> str | None:
        """Project function a ``g:``/``l:`` root refers to, if any."""
        if not root.startswith(("g:", "l:")):
            return None
        name = root[2:]
        scope = self._scope_lookup(fn, name)
        if scope is None:
            return None
        kind, value = scope
        if kind == "fn":
            return value if value in self.functions else None
        if kind == "dotted":
            resolved = self._resolve_dotted(value)
            if len(resolved.project_targets) == 1 and not resolved.constructor_of:
                return resolved.project_targets[0]
        return None

    def _build_param_callables(self) -> None:
        # Iterate to a fixed point so a callable forwarded through two
        # higher-order layers still resolves; converges in 2-3 rounds.
        for _ in range(4):
            before = sum(len(v) for v in self.param_callables.values())
            self._param_callables_pass()
            if sum(len(v) for v in self.param_callables.values()) == before:
                return

    def _param_callables_pass(self) -> None:
        for fn in self.functions.values():
            # defaults: param derive roots that name project functions
            for param in fn.summary.params:
                for root in fn.summary.derive.get(param, []):
                    cand = self.resolve_value_callable(fn, root)
                    if cand is not None:
                        self.param_callables.setdefault(
                            (fn.fq, param), set()
                        ).add(cand)
            for site in fn.summary.calls:
                resolved = self.resolve_call(fn, site)
                for callee_fq in resolved.project_targets:
                    callee = self.functions.get(callee_fq)
                    if callee is None:
                        continue
                    params = callee.summary.params
                    offset = 1 if (resolved.bound and params and params[0] in ("self", "cls")) else 0
                    for i, roots in enumerate(site.arg_roots):
                        idx = i + offset
                        if idx >= len(params):
                            break
                        self._note_callable_args(fn, callee_fq, params[idx], roots)
                    for kw, roots in site.kwarg_roots.items():
                        if kw in params:
                            self._note_callable_args(fn, callee_fq, kw, roots)

    def _note_callable_args(
        self, fn: FlowFunction, callee_fq: str, param: str, roots: list[str]
    ) -> None:
        for root in roots:
            cand = self.resolve_value_callable(fn, root)
            if cand is not None:
                self.param_callables.setdefault((callee_fq, param), set()).add(cand)
