"""Per-function effect inference and contract enforcement.

Every project function gets a set of effects from the lattice
``{rng, io, time, global-mutation}`` (the empty set is *pure*):

``rng``
    Consumes or perturbs random-stream state: generator draw methods,
    ``SeedSequence.spawn`` (mutates the spawn counter), legacy
    ``numpy.random`` module functions, or constructions that pull fresh
    OS entropy (``SeedSequence()`` / ``default_rng()`` with no inputs).
    Constructing from explicit inputs (``SeedSequence(seed)``,
    ``default_rng(child)``) is *pure*: the result is a deterministic
    function of its arguments.
``io``
    Filesystem/console/environment traffic.
``time``
    Reads any clock (including monotonic/perf counters).
``global-mutation``
    Rebinds or mutates module-level state.

Effects propagate transitively over the call graph (least fixed point),
including duck-typed method edges: a call ``obj.flush_to_disk()``
unions the effects of every project method named ``flush_to_disk``
(generic container/ndarray method names are excluded from duck lookup
to avoid smearing unrelated classes together).  Unknown externals are
assumed pure — the analysis is a reviewed allow-list of impurity
primitives, not a sandbox.

Calls through the observability guard methods (``emit``/``begin``/
``end``) are excluded from propagation entirely: the obs-neutrality
lint rule already enforces that these sit behind hoisted enabled-checks,
which is exactly the "obs emit paths are mutation-free when disabled"
contract — without the exclusion, the span-id counter would poison
every instrumented engine path with ``global-mutation``.

The inferred lattice is published as a committed manifest
(``effects-manifest.json``: impure functions only, pure-by-absence) and
checked against declared contracts such as "everything reachable from
``store.keys.task_key`` is pure".
"""

from __future__ import annotations

from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.summary import CallSite
from repro.analysis.flow.symbols import Project, ResolvedCall
from repro.analysis.flow.taint import Violation, WALLCLOCK_SOURCES

__all__ = [
    "EFFECTS",
    "CONTRACTS",
    "EffectInference",
    "OBS_GUARD_METHODS",
]

EFFECTS = ("rng", "io", "time", "global-mutation")

#: numpy Generator methods that consume stream state.
GEN_METHODS = frozenset(
    {
        "random",
        "integers",
        "choice",
        "shuffle",
        "permutation",
        "permuted",
        "normal",
        "standard_normal",
        "uniform",
        "poisson",
        "binomial",
        "exponential",
        "geometric",
        "gamma",
        "beta",
        "bytes",
    }
)
#: Legacy module-level numpy.random functions (global stream).
LEGACY_NP_RANDOM = frozenset(
    {
        "numpy.random.seed",
        "numpy.random.rand",
        "numpy.random.randn",
        "numpy.random.randint",
        "numpy.random.random",
        "numpy.random.choice",
        "numpy.random.shuffle",
        "numpy.random.permutation",
        "numpy.random.uniform",
        "numpy.random.normal",
    }
)
_ENTROPY_CONSTRUCTORS = frozenset(
    {"numpy.random.SeedSequence", "numpy.random.default_rng"}
)

IO_EXTERNALS = frozenset(
    {
        "open",
        "print",
        "input",
        "json.dump",
        "json.load",
        "pickle.dump",
        "pickle.load",
        "numpy.save",
        "numpy.load",
        "numpy.savez",
        "os.urandom",
        "os.mkdir",
        "os.makedirs",
        "os.remove",
        "os.unlink",
        "os.rename",
        "os.replace",
        "os.rmdir",
        "os.listdir",
        "os.scandir",
        "os.stat",
        "os.fsync",
        "os.getenv",
        "os.environ.get",
        "shutil.rmtree",
        "shutil.copy",
        "shutil.copy2",
        "shutil.copytree",
        "shutil.move",
        "subprocess.run",
        "subprocess.check_output",
        "subprocess.Popen",
        "tempfile.mkdtemp",
        "tempfile.NamedTemporaryFile",
        "sys.stdout.write",
        "sys.stderr.write",
    }
)
#: Method names that do I/O on any plausible receiver (file handles,
#: pathlib.Path).  Receiver-type-blind on purpose.
IO_METHODS = frozenset(
    {
        "write",
        "writelines",
        "read",
        "readline",
        "readlines",
        "flush",
        "fsync",
        "mkdir",
        "rmdir",
        "unlink",
        "rename",
        "replace",
        "touch",
        "write_text",
        "write_bytes",
        "read_text",
        "read_bytes",
        "glob",
        "rglob",
        "iterdir",
        "hardlink_to",
        "symlink_to",
    }
)

#: Mutating container methods: applied to a module-level receiver they
#: are global mutation.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "add",
        "update",
        "insert",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "setdefault",
        "sort",
        "reverse",
    }
)

#: Observability guard methods excluded from effect propagation (see
#: module docstring).
OBS_GUARD_METHODS = frozenset({"emit", "begin", "end"})

#: Method names excluded from duck-typed propagation: generic
#: container/ndarray/str vocabulary shared by unrelated classes.
DUCK_BLOCKLIST = frozenset(
    {
        "get",
        "items",
        "keys",
        "values",
        "copy",
        "index",
        "count",
        "join",
        "split",
        "strip",
        "encode",
        "decode",
        "format",
        "item",
        "tolist",
        "astype",
        "reshape",
        "sum",
        "mean",
        "close",
        "reset",
        "run",
        "clear",
        "update",
        "append",
        "add",
        "extend",
        "pop",
        "sort",
        "__init__",
        "__repr__",
        "__str__",
    }
)

#: Declared effect contracts: (fully-qualified prefix or exact name,
#: allowed effects, rationale).  Matching is exact-or-prefix: an entry
#: ending in "." constrains every function under that namespace.
#: Because inferred effects are already transitive over the call graph,
#: constraining a root constrains everything reachable from it.
CONTRACTS: tuple[tuple[str, frozenset[str], str], ...] = (
    (
        "repro.store.keys.",
        frozenset(),
        "store keys must be a pure function of their inputs",
    ),
    (
        "repro.store.backend.pack_result",
        frozenset(),
        "packed payload bytes must be a pure function of the result",
    ),
    (
        "repro.obs.events.",
        frozenset(),
        "trace events are value objects; constructing one must be free",
    ),
    (
        "repro.utils.stats.",
        frozenset(),
        "statistical kernels are deterministic math",
    ),
    (
        "repro.utils.rng.",
        frozenset({"rng"}),
        "stream management may touch RNG state but nothing else",
    ),
    (
        "repro.sim.engine.run_broadcast",
        frozenset({"rng", "time"}),
        "the engine draws randomness and reads perf counters, nothing else",
    ),
    (
        "repro.sim.engine.run_broadcast_batch",
        frozenset({"rng", "time"}),
        "the batched engine draws randomness and reads perf counters, nothing else",
    ),
    (
        "repro.collision.",
        frozenset(),
        "collision tables are deterministic DP over model parameters",
    ),
    (
        "repro.serve.",
        frozenset({"io", "time"}),
        "the serve tier stores, waits, and measures but never draws "
        "randomness; all compute crosses the repro.serve.compute bridge",
    ),
)


class EffectInference:
    """Least-fixed-point effect propagation over the call graph."""

    def __init__(self, project: Project, graph: CallGraph) -> None:
        self.project = project
        self.graph = graph
        self.effects: dict[str, frozenset[str]] = {}
        self._primitives: dict[str, frozenset[str]] = {}
        self._solved = False

    def solve(self) -> dict[str, frozenset[str]]:
        if self._solved:
            return self.effects
        self._solved = True
        for fq in self.project.functions:
            self._primitives[fq] = self._local_effects(fq)
            self.effects[fq] = self._primitives[fq]
        for _ in range(100):
            changed = False
            for fq in self.project.functions:
                acc = set(self._primitives[fq])
                for _site, resolved in self.graph.resolved[fq]:
                    for callee in self._propagation_targets(resolved):
                        acc |= self.effects.get(callee, frozenset())
                fs = frozenset(acc)
                if fs != self.effects[fq]:
                    self.effects[fq] = fs
                    changed = True
            if not changed:
                break
        return self.effects

    def _propagation_targets(self, resolved: ResolvedCall) -> list[str]:
        if resolved.method_name in OBS_GUARD_METHODS:
            return []
        targets = list(resolved.project_targets)
        name = resolved.method_name
        if name and name not in DUCK_BLOCKLIST and not targets:
            targets = self.project.method_index.get(name, [])
        return targets

    def _local_effects(self, fq: str) -> frozenset[str]:
        fn = self.project.functions[fq]
        s = fn.summary
        acc: set[str] = set()
        if s.globals_written:
            acc.add("global-mutation")
        module_names = set(fn.module.module_names)
        for site, resolved in self.graph.resolved[fq]:
            acc |= self._site_effects(fn.module.module, module_names, site, resolved)
        return frozenset(acc)

    def _site_effects(
        self,
        module: str,
        module_names: set[str],
        site: CallSite,
        resolved: ResolvedCall,
    ) -> set[str]:
        acc: set[str] = set()
        ext = resolved.external
        name = resolved.method_name
        if name in OBS_GUARD_METHODS:
            return acc
        if ext in WALLCLOCK_SOURCES:
            acc.add("time")
        if ext in IO_EXTERNALS:
            acc.add("io")
        if ext in LEGACY_NP_RANDOM:
            acc.add("rng")
        if ext in _ENTROPY_CONSTRUCTORS and self._draws_entropy(site):
            acc.add("rng")
        if not ext:
            # Name-based heuristics apply only to calls on *objects*
            # (local/param/self receivers).  A canonical external path
            # means the receiver chain was a module import — ``np.add``
            # is a function lookup, not a mutation of the ``np`` global.
            if name in GEN_METHODS or name == "spawn":
                acc.add("rng")
            if name in IO_METHODS:
                acc.add("io")
            if name in MUTATOR_METHODS and any(
                r.startswith("g:") and r[2:] in module_names
                for r in site.recv_roots
            ):
                acc.add("global-mutation")
        return acc

    @staticmethod
    def _draws_entropy(site: CallSite) -> bool:
        """True when a SeedSequence/default_rng construction has no
        seed inputs (every argument absent or a literal None)."""
        if site.arg_roots or any(site.kwarg_roots.values()):
            return False
        consts = list(site.arg_consts) + list(site.kwarg_consts.values())
        return all(c == "none" for c in consts)

    # -- manifest ------------------------------------------------------

    def manifest(self) -> dict[str, list[str]]:
        """Impure functions only: FQ name -> sorted effect list."""
        self.solve()
        return {
            fq: sorted(effects)
            for fq, effects in sorted(self.effects.items())
            if effects
        }

    # -- violations ----------------------------------------------------

    def contract_violations(self) -> list[Violation]:
        self.solve()
        out: list[Violation] = []
        for fq in sorted(self.project.functions):
            fn = self.project.functions[fq]
            effects = self.effects[fq]
            for pattern, allowed, why in CONTRACTS:
                if pattern.endswith("."):
                    if not fq.startswith(pattern):
                        continue
                elif fq != pattern:
                    continue
                extra = effects - allowed
                if extra:
                    out.append(
                        Violation(
                            fn.module.path,
                            fn.summary.lineno,
                            fn.summary.col,
                            f"effect contract violation: {fq} has effects "
                            f"{{{', '.join(sorted(extra))}}} beyond "
                            f"{{{', '.join(sorted(allowed)) or 'pure'}}} "
                            f"({why})",
                        )
                    )
        out.sort(key=lambda v: (v.path, v.line, v.col, v.message))
        return out

    def manifest_drift(
        self, committed: dict[str, list[str]], manifest_path: str
    ) -> list[Violation]:
        """Differences between the committed manifest and inference."""
        inferred = self.manifest()
        out: list[Violation] = []
        for fq in sorted(set(inferred) | set(committed)):
            have = inferred.get(fq)
            want = committed.get(fq)
            if have == want:
                continue
            fn = self.project.functions.get(fq)
            if fn is not None:
                path, line, col = fn.module.path, fn.summary.lineno, fn.summary.col
            else:
                path, line, col = manifest_path, 1, 0
            have_s = ", ".join(have) if have else "pure"
            want_s = ", ".join(want) if want else "pure"
            out.append(
                Violation(
                    path,
                    line,
                    col,
                    f"effects manifest drift for {fq}: inferred "
                    f"[{have_s}] but {manifest_path} records [{want_s}]; "
                    "regenerate with --write-effects",
                )
            )
        out.sort(key=lambda v: (v.path, v.line, v.col, v.message))
        return out
