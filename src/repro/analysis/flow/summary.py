"""Per-module fact extraction for the whole-program flow analyses.

One pass over a module's AST produces a :class:`ModuleSummary` — a
plain-data description of everything the project-wide analyses need:
import bindings, function/method signatures, flow-insensitive def-use
derivations, call sites with per-argument derivation roots, return
derivations, self-attribute assignments, and module-global mutations.

Summaries are deliberately *closed* data (strings, ints, lists, dicts)
so they serialize losslessly to JSON: the incremental cache
(:mod:`repro.analysis.flow.cache`) stores one summary per source file,
keyed by content hash, and a cache hit must reproduce the cold-run
analysis byte for byte.

Derivation roots
----------------
Every expression reduces to a set of *roots* — the places its value
could have come from.  Roots are tagged strings:

``p:name``
    A parameter of the enclosing function.
``l:name``
    A local variable (resolved through the function's ``derive`` map).
``c:index``
    The result of call site ``index`` in the enclosing function.
``s:attr``
    ``self.attr`` inside a method.
``g:name``
    A module-level binding (import, def, class, or module constant).
``x:name``
    A free (closure) name inside a nested function.

The reduction is flow-insensitive (assignments union) and loses
precision on purpose — container element vs. container, attribute vs.
base object — erring toward *more* derivation, which is the
conservative direction for provenance and taint.  One deliberate
exception: dict *literal* keys do not contribute roots (``{id(x): r}``
is an identity-keyed lookup table; subscripting it returns values, and
py3.7+ dict iteration is insertion-ordered), while dict values, list,
tuple and set elements all do.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = [
    "SUMMARY_VERSION",
    "CallSite",
    "FunctionSummary",
    "ModuleSummary",
    "extract_module",
    "module_name_for_path",
]

#: Bump when the extraction or the serialized layout changes; part of
#: the cache key, so stale cache entries can never poison an analysis.
SUMMARY_VERSION = 1

MODULE_SCOPE = "<module>"


@dataclass
class CallSite:
    """One call expression inside a function scope."""

    index: int  #: position in :attr:`FunctionSummary.calls`
    target: str  #: dotted source text of the callee ("np.random.default_rng")
    recv: str  #: dotted text of the receiver for attribute calls, else ""
    recv_roots: list[str] = field(default_factory=list)
    arg_roots: list[list[str]] = field(default_factory=list)
    kwarg_roots: dict[str, list[str]] = field(default_factory=dict)
    #: literal-argument tags parallel to arg_roots: "int" | "none" |
    #: "const" | "" (non-literal)
    arg_consts: list[str] = field(default_factory=list)
    kwarg_consts: dict[str, str] = field(default_factory=dict)
    lineno: int = 0
    col: int = 0

    def all_input_roots(self) -> list[str]:
        out: list[str] = []
        for roots in self.arg_roots:
            out.extend(roots)
        for roots in self.kwarg_roots.values():
            out.extend(roots)
        return out

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "target": self.target,
            "recv": self.recv,
            "recv_roots": self.recv_roots,
            "arg_roots": self.arg_roots,
            "kwarg_roots": self.kwarg_roots,
            "arg_consts": self.arg_consts,
            "kwarg_consts": self.kwarg_consts,
            "lineno": self.lineno,
            "col": self.col,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "CallSite":
        return cls(
            index=d["index"],
            target=d["target"],
            recv=d["recv"],
            recv_roots=list(d["recv_roots"]),
            arg_roots=[list(a) for a in d["arg_roots"]],
            kwarg_roots={k: list(v) for k, v in d["kwarg_roots"].items()},
            arg_consts=list(d["arg_consts"]),
            kwarg_consts=dict(d["kwarg_consts"]),
            lineno=d["lineno"],
            col=d["col"],
        )


@dataclass
class FunctionSummary:
    """Flow facts for one function, method, or the module scope."""

    qualname: str  #: dotted within the module ("Cls.meth", "f.<locals>.g")
    name: str
    class_name: str = ""  #: innermost enclosing class, "" at module level
    parent: str = ""  #: enclosing function qualname for nested defs
    lineno: int = 0
    col: int = 0
    params: list[str] = field(default_factory=list)
    #: params whose default is a literal int (param, lineno, col)
    int_default_params: list[tuple[str, int, int]] = field(default_factory=list)
    return_annotation: str = ""
    derive: dict[str, list[str]] = field(default_factory=dict)
    calls: list[CallSite] = field(default_factory=list)
    returns: list[list[str]] = field(default_factory=list)
    #: ``self.attr = value`` assignments: attr -> union of value roots
    self_assigns: dict[str, list[str]] = field(default_factory=dict)
    #: module-level names this function rebinds or mutates (name, line, col)
    globals_written: list[tuple[str, int, int]] = field(default_factory=list)
    #: for-loop / comprehension bindings: (targets, iter roots, line, col)
    loops: list[tuple[list[str], list[str], int, int]] = field(default_factory=list)
    #: names bound by function-local import statements: name -> dotted target
    local_imports: dict[str, str] = field(default_factory=dict)
    #: nested function defs visible in this scope: name -> module qualname
    local_funcs: dict[str, str] = field(default_factory=dict)
    #: local names whose value is definitely a set (literal/comprehension/set())
    set_typed: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "qualname": self.qualname,
            "name": self.name,
            "class_name": self.class_name,
            "parent": self.parent,
            "lineno": self.lineno,
            "col": self.col,
            "params": self.params,
            "int_default_params": [list(t) for t in self.int_default_params],
            "return_annotation": self.return_annotation,
            "derive": self.derive,
            "calls": [c.to_dict() for c in self.calls],
            "returns": self.returns,
            "self_assigns": self.self_assigns,
            "globals_written": [list(t) for t in self.globals_written],
            "loops": [list(t) for t in self.loops],
            "local_imports": self.local_imports,
            "local_funcs": self.local_funcs,
            "set_typed": self.set_typed,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "FunctionSummary":
        return cls(
            qualname=d["qualname"],
            name=d["name"],
            class_name=d["class_name"],
            parent=d["parent"],
            lineno=d["lineno"],
            col=d["col"],
            params=list(d["params"]),
            int_default_params=[
                (t[0], t[1], t[2]) for t in d["int_default_params"]
            ],
            return_annotation=d["return_annotation"],
            derive={k: list(v) for k, v in d["derive"].items()},
            calls=[CallSite.from_dict(c) for c in d["calls"]],
            returns=[list(r) for r in d["returns"]],
            self_assigns={k: list(v) for k, v in d["self_assigns"].items()},
            globals_written=[(t[0], t[1], t[2]) for t in d["globals_written"]],
            loops=[(list(t[0]), list(t[1]), t[2], t[3]) for t in d["loops"]],
            local_imports=dict(d["local_imports"]),
            local_funcs=dict(d["local_funcs"]),
            set_typed=list(d["set_typed"]),
        )


@dataclass
class ModuleSummary:
    """Everything the project analyses need from one module."""

    path: str  #: repo-relative posix path
    module: str  #: dotted module name ("repro.sim.engine")
    #: module-level name -> dotted target for imports, or the module's
    #: own dotted qualname for defs/classes/constants
    bindings: dict[str, str] = field(default_factory=dict)
    #: names assigned at module level (mutation targets for globals)
    module_names: list[str] = field(default_factory=list)
    #: class name -> list of base-class dotted source texts
    class_bases: dict[str, list[str]] = field(default_factory=dict)
    functions: list[FunctionSummary] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": SUMMARY_VERSION,
            "path": self.path,
            "module": self.module,
            "bindings": self.bindings,
            "module_names": self.module_names,
            "class_bases": self.class_bases,
            "functions": [f.to_dict() for f in self.functions],
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "ModuleSummary":
        return cls(
            path=d["path"],
            module=d["module"],
            bindings=dict(d["bindings"]),
            module_names=list(d["module_names"]),
            class_bases={k: list(v) for k, v in d["class_bases"].items()},
            functions=[FunctionSummary.from_dict(f) for f in d["functions"]],
        )


def module_name_for_path(path: str) -> str:
    """Dotted module name of a repo-relative source path.

    ``src/repro/sim/engine.py`` -> ``repro.sim.engine``;
    ``src/repro/obs/__init__.py`` -> ``repro.obs``.  Returns "" for
    paths outside a recognized source root.
    """
    p = path.replace("\\", "/")
    if p.startswith("src/"):
        p = p[len("src/") :]
    elif "/" in p and not p.startswith(("repro/",)):
        return ""
    if not p.endswith(".py"):
        return ""
    parts = p[: -len(".py")].split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    if not parts or not all(part.isidentifier() for part in parts):
        return ""
    if parts[0] != "repro":
        return ""  # only the project package participates in flow analysis
    return ".".join(parts)


def _dotted(expr: ast.expr) -> str:
    """Dotted source text of a name chain, "" when any link is complex."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        base = _dotted(expr.value)
        return f"{base}.{expr.attr}" if base else ""
    return ""


def _const_tag(node: ast.expr) -> str:
    if _is_literal_int(node):
        return "int"
    if isinstance(node, ast.Constant):
        return "none" if node.value is None else "const"
    return ""


def _is_literal_int(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        node = node.operand
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, int)
        and not isinstance(node.value, bool)
    )


def _collect_locals(node: ast.AST) -> set[str]:
    """Names bound in a function body (excluding nested scopes)."""
    names: set[str] = set()
    explicit_nonlocal: set[str] = set()

    def visit(n: ast.AST) -> None:
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(n.name)
            return  # own scope
        if isinstance(n, ast.ClassDef):
            names.add(n.name)
            return
        if isinstance(n, ast.Lambda):
            return
        if isinstance(n, (ast.Global, ast.Nonlocal)):
            explicit_nonlocal.update(n.names)
        elif isinstance(n, ast.Name) and isinstance(n.ctx, ast.Store):
            names.add(n.id)
        elif isinstance(n, (ast.Import, ast.ImportFrom)):
            for alias in n.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(n, ast.ExceptHandler) and n.name:
            names.add(n.name)
        for child in ast.iter_child_nodes(n):
            visit(child)

    for stmt in ast.iter_child_nodes(node):
        visit(stmt)
    return names - explicit_nonlocal


class _ScopeExtractor:
    """Extracts one :class:`FunctionSummary` from one scope's statements."""

    def __init__(
        self,
        summary: FunctionSummary,
        module_names: set[str],
        local_names: set[str],
        enclosing_locals: set[str],
        is_module_scope: bool,
    ) -> None:
        self.s = summary
        self.module_names = module_names
        self.local_names = local_names
        self.enclosing_locals = enclosing_locals
        self.is_module_scope = is_module_scope
        self.global_decls: set[str] = set()

    # -- root reduction ------------------------------------------------

    def name_root(self, name: str) -> str:
        if name in self.s.params:
            return f"p:{name}"
        if name in self.local_names:
            return f"l:{name}"
        if self.is_module_scope or name in self.module_names:
            return f"g:{name}"
        if name in self.enclosing_locals:
            return f"x:{name}"
        return f"g:{name}"  # builtin or late-bound global

    def roots(self, expr: ast.expr | None) -> list[str]:
        """Derivation roots of an expression; registers nested calls."""
        if expr is None:
            return []
        out: list[str] = []
        self._roots_into(expr, out)
        # de-duplicate, preserving first-seen order for stable output
        seen: set[str] = set()
        uniq = []
        for r in out:
            if r not in seen:
                seen.add(r)
                uniq.append(r)
        return uniq

    def _roots_into(self, expr: ast.expr, out: list[str]) -> None:
        if isinstance(expr, ast.Name):
            out.append(self.name_root(expr.id))
        elif isinstance(expr, ast.Attribute):
            if isinstance(expr.value, ast.Name) and expr.value.id == "self":
                out.append(f"s:{expr.attr}")
            else:
                self._roots_into(expr.value, out)
        elif isinstance(expr, ast.Call):
            site = self._register_call(expr)
            out.append(f"c:{site.index}")
        elif isinstance(expr, ast.Constant):
            pass
        elif isinstance(expr, ast.Dict):
            # Keys are lookup labels, not payload (see module docstring).
            for v in expr.values:
                if v is not None:
                    self._roots_into(v, out)
        elif isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
            for e in expr.elts:
                self._roots_into(e, out)
        elif isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            self._comprehension(expr.generators, [expr.elt], out)
        elif isinstance(expr, ast.DictComp):
            self._comprehension(expr.generators, [expr.value], out)
        elif isinstance(expr, ast.BoolOp):
            for v in expr.values:
                self._roots_into(v, out)
        elif isinstance(expr, ast.BinOp):
            self._roots_into(expr.left, out)
            self._roots_into(expr.right, out)
        elif isinstance(expr, ast.UnaryOp):
            self._roots_into(expr.operand, out)
        elif isinstance(expr, ast.Compare):
            self._roots_into(expr.left, out)
            for c in expr.comparators:
                self._roots_into(c, out)
        elif isinstance(expr, ast.IfExp):
            self._roots_into(expr.body, out)
            self._roots_into(expr.orelse, out)
            self._roots_into(expr.test, out)
        elif isinstance(expr, ast.Subscript):
            self._roots_into(expr.value, out)
            # The index selects an element; the element's value comes
            # from the container, not the index (same rationale as dict
            # keys above).  Still walk it so calls inside register.
            self._roots_into(expr.slice, [])
        elif isinstance(expr, ast.Slice):
            for part in (expr.lower, expr.upper, expr.step):
                if part is not None:
                    self._roots_into(part, out)
        elif isinstance(expr, ast.Starred):
            self._roots_into(expr.value, out)
        elif isinstance(expr, ast.JoinedStr):
            for v in expr.values:
                self._roots_into(v, out)
        elif isinstance(expr, ast.FormattedValue):
            self._roots_into(expr.value, out)
        elif isinstance(expr, ast.NamedExpr):
            roots = self.roots(expr.value)
            if isinstance(expr.target, ast.Name):
                self._bind(expr.target.id, roots)
                out.append(self.name_root(expr.target.id))
            out.extend(roots)
        elif isinstance(expr, ast.Lambda):
            pass  # opaque: lambdas carry no analyzed flow
        elif isinstance(expr, ast.Await):
            self._roots_into(expr.value, out)
        # else: yield/yieldfrom/etc. — no roots

    def _comprehension(
        self,
        generators: Iterable[ast.comprehension],
        produced: Iterable[ast.expr],
        out: list[str],
    ) -> None:
        for gen in generators:
            iter_roots = self.roots(gen.iter)
            targets = [
                n.id for n in ast.walk(gen.target) if isinstance(n, ast.Name)
            ]
            for t in targets:
                self.local_names.add(t)
                self._bind(t, iter_roots)
            self.s.loops.append(
                (targets, iter_roots, gen.iter.lineno, gen.iter.col_offset)
            )
            out.extend(iter_roots)
            for cond in gen.ifs:
                self.roots(cond)
        for expr in produced:
            self._roots_into(expr, out)

    # -- statement handling --------------------------------------------

    def _bind(self, name: str, roots: list[str]) -> None:
        bucket = self.s.derive.setdefault(name, [])
        for r in roots:
            if r not in bucket:
                bucket.append(r)

    def _register_call(self, call: ast.Call) -> CallSite:
        target = _dotted(call.func)
        recv = ""
        recv_roots: list[str] = []
        if isinstance(call.func, ast.Attribute):
            recv = _dotted(call.func.value)
            recv_roots = self.roots(call.func.value)
        site = CallSite(
            index=len(self.s.calls),
            target=target,
            recv=recv,
            recv_roots=recv_roots,
            lineno=call.lineno,
            col=call.col_offset,
        )
        self.s.calls.append(site)
        for arg in call.args:
            site.arg_roots.append(self.roots(arg))
            site.arg_consts.append(_const_tag(arg))
        for kw in call.keywords:
            roots = self.roots(kw.value)
            if kw.arg is None:  # **kwargs: merge into every-kwarg bucket
                site.kwarg_roots.setdefault("**", []).extend(roots)
            else:
                site.kwarg_roots[kw.arg] = roots
                site.kwarg_consts[kw.arg] = _const_tag(kw.value)
        return site

    def _mutation_target_root(self, target: ast.expr) -> str | None:
        """Module-level name a store/mutation ultimately lands on."""
        node = target
        while isinstance(node, (ast.Subscript, ast.Attribute)):
            node = node.value
        if isinstance(node, ast.Name):
            name = node.id
            if name in self.global_decls:
                return name
            is_local = (
                name in self.local_names
                or name in self.s.params
                or self.is_module_scope
            )
            if not is_local and name in self.module_names:
                return name
        return None

    def _record_set_typed(self, name: str, value: ast.expr) -> None:
        if isinstance(value, (ast.Set, ast.SetComp)) or (
            isinstance(value, ast.Call)
            and _dotted(value.func) in {"set", "frozenset"}
        ):
            if name not in self.s.set_typed:
                self.s.set_typed.append(name)

    def _assign_to(self, target: ast.expr, roots: list[str], value: ast.expr | None) -> None:
        if isinstance(target, ast.Name):
            self._bind(target.id, roots)
            if value is not None:
                self._record_set_typed(target.id, value)
            if target.id in self.global_decls:
                self.s.globals_written.append(
                    (target.id, target.lineno, target.col_offset)
                )
        elif isinstance(target, ast.Attribute):
            if isinstance(target.value, ast.Name) and target.value.id == "self":
                bucket = self.s.self_assigns.setdefault(target.attr, [])
                for r in roots:
                    if r not in bucket:
                        bucket.append(r)
            else:
                g = self._mutation_target_root(target)
                if g is not None:
                    self.s.globals_written.append(
                        (g, target.lineno, target.col_offset)
                    )
                self.roots(target.value)
        elif isinstance(target, ast.Subscript):
            g = self._mutation_target_root(target)
            if g is not None:
                self.s.globals_written.append((g, target.lineno, target.col_offset))
            # d[k] = v also makes d derive from v
            base = target.value
            while isinstance(base, (ast.Subscript, ast.Attribute)):
                base = base.value
            if isinstance(base, ast.Name):
                self._bind(base.id, roots)
            self.roots(target.slice)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign_to(elt, roots, None)
        elif isinstance(target, ast.Starred):
            self._assign_to(target.value, roots, None)

    def handle_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            roots = self.roots(stmt.value)
            for target in stmt.targets:
                self._assign_to(target, roots, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign_to(stmt.target, self.roots(stmt.value), stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            self._assign_to(stmt.target, self.roots(stmt.value), None)
            if isinstance(stmt.target, ast.Name):
                if stmt.target.id in self.global_decls:
                    self.s.globals_written.append(
                        (stmt.target.id, stmt.lineno, stmt.col_offset)
                    )
        elif isinstance(stmt, ast.Return):
            self.s.returns.append(self.roots(stmt.value))
        elif isinstance(stmt, ast.Expr):
            self.roots(stmt.value)
        elif isinstance(stmt, ast.For):
            iter_roots = self.roots(stmt.iter)
            targets = [
                n.id for n in ast.walk(stmt.target) if isinstance(n, ast.Name)
            ]
            for t in targets:
                self._bind(t, iter_roots)
            self.s.loops.append(
                (targets, iter_roots, stmt.iter.lineno, stmt.iter.col_offset)
            )
            for sub in stmt.body + stmt.orelse:
                self.handle_stmt(sub)
        elif isinstance(stmt, (ast.If, ast.While)):
            self.roots(stmt.test)
            for sub in stmt.body + stmt.orelse:
                self.handle_stmt(sub)
        elif isinstance(stmt, ast.With) or isinstance(stmt, ast.AsyncWith):
            for item in stmt.items:
                roots = self.roots(item.context_expr)
                if item.optional_vars is not None:
                    self._assign_to(item.optional_vars, roots, None)
            for sub in stmt.body:
                self.handle_stmt(sub)
        elif isinstance(stmt, ast.Try):
            for sub in stmt.body + stmt.orelse + stmt.finalbody:
                self.handle_stmt(sub)
            for handler in stmt.handlers:
                for sub in handler.body:
                    self.handle_stmt(sub)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.roots(stmt.exc)
        elif isinstance(stmt, ast.Assert):
            self.roots(stmt.test)
            if stmt.msg is not None:
                self.roots(stmt.msg)
        elif isinstance(stmt, ast.Global):
            self.global_decls.update(stmt.names)
        elif isinstance(stmt, ast.Delete):
            pass
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            self._handle_import(stmt)
        # FunctionDef / ClassDef are handled by the module walker.

    def _handle_import(self, stmt: ast.Import | ast.ImportFrom) -> None:
        imports = self.s.local_imports if not self.is_module_scope else None
        for alias in stmt.names:
            bound = alias.asname or alias.name.split(".")[0]
            if isinstance(stmt, ast.Import):
                target = alias.name if alias.asname else alias.name.split(".")[0]
            else:
                if stmt.level or not stmt.module:
                    continue  # relative imports unused in this codebase
                target = f"{stmt.module}.{alias.name}"
            if imports is not None:
                imports[bound] = target


def _extract_function(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    module: ModuleSummary,
    module_names: set[str],
    qual_prefix: str,
    class_name: str,
    parent: str,
    enclosing_locals: set[str],
    out: list[FunctionSummary],
) -> None:
    qualname = f"{qual_prefix}{node.name}"
    args = node.args
    params = [
        a.arg
        for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]
    ]
    if args.vararg is not None:
        params.append(args.vararg.arg)
    if args.kwarg is not None:
        params.append(args.kwarg.arg)
    summary = FunctionSummary(
        qualname=qualname,
        name=node.name,
        class_name=class_name,
        parent=parent,
        lineno=node.lineno,
        col=node.col_offset,
        params=params,
        return_annotation=(
            ast.unparse(node.returns) if node.returns is not None else ""
        ),
    )
    positional = [*args.posonlyargs, *args.args]
    tail = positional[len(positional) - len(args.defaults) :]
    defaulted = [
        *zip(tail, args.defaults, strict=True),
        *(
            (a, d)
            for a, d in zip(args.kwonlyargs, args.kw_defaults, strict=True)
            if d is not None
        ),
    ]
    local_names = _collect_locals(node)
    extractor = _ScopeExtractor(
        summary,
        module_names,
        local_names,
        enclosing_locals,
        is_module_scope=False,
    )
    for arg, default in defaulted:
        if _is_literal_int(default):
            summary.int_default_params.append(
                (arg.arg, default.lineno, default.col_offset)
            )
        extractor._bind(arg.arg, extractor.roots(default))
    for deco in node.decorator_list:
        extractor.roots(deco)
    # Nested defs: record visibility, then extract them as siblings.
    nested: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested_qual = f"{qualname}.<locals>.{stmt.name}"
            summary.local_funcs[stmt.name] = nested_qual
            nested.append(stmt)
        else:
            extractor.handle_stmt(stmt)
    out.append(summary)
    for stmt in nested:
        _extract_function(
            stmt,
            module,
            module_names,
            f"{qualname}.<locals>.",
            class_name,
            qualname,
            enclosing_locals | local_names | set(params),
            out,
        )


def extract_module(source_tree: ast.Module, path: str, module: str | None = None) -> ModuleSummary:
    """Extract the flow summary of one parsed module."""
    mod_name = module if module is not None else module_name_for_path(path)
    ms = ModuleSummary(path=path, module=mod_name)

    # Pass 1: module-level bindings (imports, defs, classes, constants).
    for stmt in source_tree.body:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                bound = alias.asname or alias.name.split(".")[0]
                ms.bindings[bound] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(stmt, ast.ImportFrom):
            if stmt.level or not stmt.module:
                continue
            for alias in stmt.names:
                bound = alias.asname or alias.name
                ms.bindings[bound] = f"{stmt.module}.{alias.name}"
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            ms.bindings[stmt.name] = f"{mod_name}.{stmt.name}" if mod_name else stmt.name
        elif isinstance(stmt, ast.ClassDef):
            ms.bindings[stmt.name] = f"{mod_name}.{stmt.name}" if mod_name else stmt.name
            ms.class_bases[stmt.name] = [
                b for b in (_dotted(base) for base in stmt.bases) if b
            ]
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                for n in ast.walk(target):
                    if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Store):
                        ms.bindings.setdefault(
                            n.id, f"{mod_name}.{n.id}" if mod_name else n.id
                        )
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            ms.bindings.setdefault(
                stmt.target.id,
                f"{mod_name}.{stmt.target.id}" if mod_name else stmt.target.id,
            )
    module_names = set(ms.bindings)
    ms.module_names = sorted(module_names)

    # Pass 2: the module pseudo-scope plus every function and method.
    mod_summary = FunctionSummary(
        qualname=MODULE_SCOPE, name=MODULE_SCOPE, lineno=1, col=0
    )
    mod_extractor = _ScopeExtractor(
        mod_summary, module_names, set(), set(), is_module_scope=True
    )
    functions: list[FunctionSummary] = []
    for stmt in source_tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for deco in stmt.decorator_list:
                mod_extractor.roots(deco)
            _extract_function(
                stmt, ms, module_names, "", "", "", set(), functions
            )
        elif isinstance(stmt, ast.ClassDef):
            for deco in stmt.decorator_list:
                mod_extractor.roots(deco)
            class_locals = {
                s.name
                for s in stmt.body
                if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    _extract_function(
                        sub,
                        ms,
                        module_names,
                        f"{stmt.name}.",
                        stmt.name,
                        "",
                        class_locals,
                        functions,
                    )
                elif isinstance(sub, (ast.Assign, ast.AnnAssign, ast.Expr)):
                    # class-level constants: fold into the module scope
                    mod_extractor.handle_stmt(sub)
        else:
            mod_extractor.handle_stmt(stmt)
    ms.functions = [mod_summary, *functions]
    return ms
