"""Whole-program dataflow analyses for determinism invariants.

Layered on the :mod:`repro.analysis.lint` framework:

* :mod:`~repro.analysis.flow.summary` — per-module fact extraction
  (serializable, cache-friendly);
* :mod:`~repro.analysis.flow.symbols` — project symbol table, import/
  alias/method/higher-order call resolution;
* :mod:`~repro.analysis.flow.callgraph` — resolved call graph;
* :mod:`~repro.analysis.flow.taint` — seed provenance and determinism
  taint;
* :mod:`~repro.analysis.flow.effects` — effect inference, contracts,
  and the committed effects manifest;
* :mod:`~repro.analysis.flow.cache` — content-hash incremental cache;
* :mod:`~repro.analysis.flow.rules` — the ``flow-*`` project rules.
"""

from repro.analysis.flow.cache import DEFAULT_CACHE_DIR, SummaryCache
from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.effects import CONTRACTS, EffectInference
from repro.analysis.flow.summary import ModuleSummary, extract_module
from repro.analysis.flow.symbols import Project, ResolvedCall
from repro.analysis.flow.taint import DeterminismTaint, SeedProvenance, Violation

__all__ = [
    "DEFAULT_CACHE_DIR",
    "SummaryCache",
    "CallGraph",
    "CONTRACTS",
    "EffectInference",
    "ModuleSummary",
    "extract_module",
    "Project",
    "ResolvedCall",
    "DeterminismTaint",
    "SeedProvenance",
    "Violation",
]
