"""Incremental per-file fact cache for the flow analyses.

Extraction (one full AST walk per module) dominates analyzer time, and
its result — a :class:`ModuleSummary` — is a pure function of the file's
text, its path, and the extraction code version.  The cache stores one
JSON summary per file under ``.repro-lint-cache/`` (git-ignored), keyed
by ``SHA-256(version, path, content)``, so a warm run skips every walk
while remaining *byte-identical* to a cold run: summaries serialize
with their internal ordering intact, and every analysis downstream is
deterministic in that ordering.

A corrupt, truncated, or version-skewed cache entry silently falls back
to extraction — the cache can never change results, only speed.
"""

from __future__ import annotations

import ast
import hashlib
import json
from pathlib import Path

from repro.analysis.flow.summary import (
    SUMMARY_VERSION,
    ModuleSummary,
    extract_module,
)

__all__ = ["DEFAULT_CACHE_DIR", "SummaryCache", "content_key"]

DEFAULT_CACHE_DIR = ".repro-lint-cache"


def content_key(path: str, source: str) -> str:
    """Cache key of one file's extraction facts."""
    h = hashlib.sha256()
    h.update(f"summary-v{SUMMARY_VERSION}\x00{path}\x00".encode())
    h.update(source.encode("utf-8"))
    return h.hexdigest()


class SummaryCache:
    """Load-or-extract module summaries with on-disk memoization."""

    def __init__(self, directory: str | Path | None) -> None:
        self.directory = Path(directory) if directory is not None else None
        self.hits = 0
        self.misses = 0

    def _entry(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.json"

    def load(self, path: str, source: str) -> ModuleSummary | None:
        if self.directory is None:
            return None
        entry = self._entry(content_key(path, source))
        try:
            doc = json.loads(entry.read_text(encoding="utf-8"))
            if doc.get("version") != SUMMARY_VERSION or doc.get("path") != path:
                return None
            return ModuleSummary.from_dict(doc)
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def store(self, path: str, source: str, summary: ModuleSummary) -> None:
        if self.directory is None:
            return
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            entry = self._entry(content_key(path, source))
            tmp = entry.with_suffix(".tmp")
            tmp.write_text(json.dumps(summary.to_dict()), encoding="utf-8")
            tmp.replace(entry)
        except OSError:
            pass  # a read-only checkout degrades to cold runs

    def summary_for(
        self, path: str, source: str, tree: ast.Module | None = None
    ) -> ModuleSummary:
        """Cached summary of one module, extracting on miss."""
        cached = self.load(path, source)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        if tree is None:
            tree = ast.parse(source, filename=path)
        summary = extract_module(tree, path)
        self.store(path, source, summary)
        return summary
