"""Call graph over the project symbol table.

Resolves every call site in every function exactly once (the taint and
effect analyses share the resolved view), and keeps forward and reverse
edge maps plus a reachability helper for contract checks of the form
"everything reachable from ``store.keys.task_key`` is pure".
"""

from __future__ import annotations

from collections import deque

from repro.analysis.flow.summary import CallSite
from repro.analysis.flow.symbols import Project, ResolvedCall

__all__ = ["CallGraph"]


class CallGraph:
    """Resolved call sites + forward/reverse edges for a project."""

    def __init__(self, project: Project) -> None:
        self.project = project
        #: caller FQ -> [(site, resolution)] in call-site order
        self.resolved: dict[str, list[tuple[CallSite, ResolvedCall]]] = {}
        #: caller FQ -> sorted unique project callee FQs
        self.edges: dict[str, list[str]] = {}
        #: callee FQ -> [(caller FQ, site, resolution)]
        self.callers: dict[str, list[tuple[str, CallSite, ResolvedCall]]] = {}

        for fq in sorted(project.functions):
            fn = project.functions[fq]
            sites: list[tuple[CallSite, ResolvedCall]] = []
            targets: set[str] = set()
            for site in fn.summary.calls:
                resolved = project.resolve_call(fn, site)
                sites.append((site, resolved))
                for callee in resolved.project_targets:
                    targets.add(callee)
                    self.callers.setdefault(callee, []).append(
                        (fq, site, resolved)
                    )
            self.resolved[fq] = sites
            self.edges[fq] = sorted(targets)

    def reachable_from(self, roots: list[str] | set[str]) -> set[str]:
        """Project functions reachable from ``roots`` (roots included)."""
        seen: set[str] = set()
        queue = deque(r for r in roots if r in self.project.functions)
        seen.update(queue)
        while queue:
            fq = queue.popleft()
            for callee in self.edges.get(fq, []):
                if callee not in seen:
                    seen.add(callee)
                    queue.append(callee)
        return seen

    def call_sites_of(self, callee_fq: str) -> list[tuple[str, CallSite, ResolvedCall]]:
        """Project call sites that can reach ``callee_fq``."""
        return self.callers.get(callee_fq, [])
