"""Seed provenance and determinism taint over the project call graph.

Both analyses interpret the derivation roots recorded in the module
summaries (see :mod:`repro.analysis.flow.summary`) against the resolved
call graph.  They share the same scope-walking structure but compute in
opposite directions:

**Seed provenance** is a *greatest* fixed point: every parameter that
receives arguments at project call sites starts out assumed
seed-derived and is demoted when any call site passes a value that is
not.  A violation is an RNG/SeedSequence construction whose inputs are
not derived from a seed-typed parameter or an explicit entropy
boundary, or a hardcoded literal seed.

**Determinism taint** is a *least* fixed point: taint kinds (wallclock,
entropy, address, set-order) start empty and grow through assignments,
returns, and parameter bindings until stable.  A violation is a tainted
value reaching key material (``store.keys``), a packed result payload,
a trace-event constructor, or manifest contents.

Both are deliberately context-insensitive (one summary per function,
argument facts unioned over all call sites) and object-insensitive
(a tainted field taints the whole container).  That errs toward
reporting, which is the right direction for invariants enforced with
suppress-with-reason.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.summary import MODULE_SCOPE, CallSite, FunctionSummary
from repro.analysis.flow.symbols import FlowFunction, Project, ResolvedCall

__all__ = [
    "Violation",
    "SeedProvenance",
    "DeterminismTaint",
    "is_seed_name",
]

#: Fixed-point iteration bound; both analyses converge in a handful of
#: rounds on this codebase — the bound only guards pathological input.
_MAX_ROUNDS = 30


@dataclass(frozen=True)
class Violation:
    """One analysis violation, pre-Finding (rules attach suppressions)."""

    path: str
    line: int
    col: int
    message: str


# --------------------------------------------------------------------------
# seed provenance
# --------------------------------------------------------------------------

SEED_PARAM_NAMES = frozenset(
    {
        "seed",
        "seeds",
        "rng",
        "rngs",
        "seed_seq",
        "seed_seqs",
        "seed_sequence",
        "seed_sequences",
        "entropy",
        "spawn_key",
    }
)
SEED_PARAM_SUFFIXES = ("_seed", "_seeds", "_rng", "_rngs", "_seed_seq")

#: Constructors whose *result* is an RNG-typed value and whose *inputs*
#: must be seed-derived.  ``SeedSequence`` is special-cased: with no
#: arguments it is the sanctioned explicit entropy boundary.
RNG_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.PCG64",
        "numpy.random.PCG64DXSM",
        "numpy.random.Philox",
        "numpy.random.SFC64",
        "numpy.random.MT19937",
    }
)
SEEDSEQ_CONSTRUCTOR = "numpy.random.SeedSequence"

#: Return-annotation fragments that mark a function as seed-producing.
_SEED_ANNOTATIONS = ("SeedSequence", "Generator")


def is_seed_name(name: str) -> bool:
    """Heuristic axiom: parameters with these names carry seed material."""
    return name in SEED_PARAM_NAMES or name.endswith(SEED_PARAM_SUFFIXES)


def _param_bindings(
    graph: CallGraph,
) -> dict[tuple[str, str], list[tuple[str, list[str], str]]]:
    """(callee FQ, param) -> [(caller FQ, arg roots, const tag)]."""
    out: dict[tuple[str, str], list[tuple[str, list[str], str]]] = {}
    for callee_fq, sites in graph.callers.items():
        callee = graph.project.functions.get(callee_fq)
        if callee is None:
            continue
        params = callee.summary.params
        for caller_fq, site, resolved in sites:
            offset = (
                1
                if (resolved.bound and params and params[0] in ("self", "cls"))
                else 0
            )
            for i, roots in enumerate(site.arg_roots):
                idx = i + offset
                if idx >= len(params):
                    break
                const = site.arg_consts[i] if i < len(site.arg_consts) else ""
                out.setdefault((callee_fq, params[idx]), []).append(
                    (caller_fq, roots, const)
                )
            for kw, roots in site.kwarg_roots.items():
                if kw in params:
                    const = site.kwarg_consts.get(kw, "")
                    out.setdefault((callee_fq, kw), []).append(
                        (caller_fq, roots, const)
                    )
    return out


class _ScopeWalker:
    """Shared parent-chain helpers for both analyses."""

    def __init__(self, project: Project, graph: CallGraph) -> None:
        self.project = project
        self.graph = graph

    def parent_of(self, fn: FlowFunction) -> FlowFunction | None:
        if not fn.summary.parent:
            return None
        return self.project.functions.get(
            f"{fn.module.module}.{fn.summary.parent}"
        )

    def module_scope_of(self, fn: FlowFunction) -> FlowFunction | None:
        return self.project.functions.get(f"{fn.module.module}.{MODULE_SCOPE}")

    def resolved_site(
        self, fq: str, index: int
    ) -> tuple[CallSite, ResolvedCall]:
        return self.graph.resolved[fq][index]


class SeedProvenance(_ScopeWalker):
    """Greatest-fixed-point inference of which values are seed-derived."""

    def __init__(self, project: Project, graph: CallGraph) -> None:
        super().__init__(project, graph)
        self.bindings = _param_bindings(graph)
        #: (fq, param) -> currently assumed seed-derived (non-axiom only)
        self.param_seed: dict[tuple[str, str], bool] = {}
        #: (FQ class, attr) -> currently assumed seed-derived
        self.attr_seed: dict[tuple[str, str], bool] = {}
        self._memo: dict[tuple[str, str], bool] = {}
        self._ret_memo: dict[str, bool] = {}
        self._attr_assigns: dict[tuple[str, str], list[tuple[str, list[str]]]] = {}
        self._solved = False

    # -- fixed point ---------------------------------------------------

    def solve(self) -> None:
        if self._solved:
            return
        self._solved = True
        for (fq, param), blist in self.bindings.items():
            if not is_seed_name(param) and blist:
                self.param_seed[(fq, param)] = True  # optimistic start
        for fn in self.project.functions.values():
            s = fn.summary
            if not s.class_name or s.parent:
                continue
            cls = f"{fn.module.module}.{s.class_name}"
            for attr, roots in s.self_assigns.items():
                self._attr_assigns.setdefault((cls, attr), []).append(
                    (fn.fq, roots)
                )
        for key in self._attr_assigns:
            self.attr_seed[key] = True
        for _ in range(_MAX_ROUNDS):
            if not self._demote_round():
                break

    def _demote_round(self) -> bool:
        self._memo.clear()
        self._ret_memo.clear()
        changed = False
        for key, blist in self.bindings.items():
            if not self.param_seed.get(key, False):
                continue
            for _caller, roots, const in blist:
                if roots:
                    ok = any(self.root_is_seed(_caller, r) for r in roots)
                else:
                    # literal int pins the stream (flagged separately);
                    # literal None is the sanctioned fresh-entropy form
                    ok = const in ("int", "none")
                if not ok:
                    self.param_seed[key] = False
                    changed = True
                    break
        for key, assigns in self._attr_assigns.items():
            if not self.attr_seed[key]:
                continue
            for fq, roots in assigns:
                if not roots or not any(self.root_is_seed(fq, r) for r in roots):
                    self.attr_seed[key] = False
                    changed = True
                    break
        return changed

    # -- evaluation ----------------------------------------------------

    def root_is_seed(
        self, fq: str, root: str, stack: frozenset = frozenset()
    ) -> bool:
        key = (fq, root)
        if key in self._memo:
            return self._memo[key]
        if key in stack:
            return True  # optimistic on cycles (greatest fixed point)
        stack = stack | {key}
        fn = self.project.functions[fq]
        s = fn.summary
        kind, _, name = root.partition(":")
        v = False
        if kind == "p":
            v = is_seed_name(name) or self.param_seed.get((fq, name), False)
        elif kind == "l":
            v = any(
                self.root_is_seed(fq, r, stack) for r in s.derive.get(name, [])
            )
        elif kind == "s":
            if s.class_name:
                cls = f"{fn.module.module}.{s.class_name}"
                v = self.attr_seed.get((cls, name), False)
        elif kind == "g":
            mod = self.module_scope_of(fn)
            if mod is not None and mod.fq != fq:
                v = any(
                    self.root_is_seed(mod.fq, r, stack)
                    for r in mod.summary.derive.get(name, [])
                )
        elif kind == "x":
            v = self._closure_is_seed(fn, name, stack)
        elif kind == "c":
            v = self._call_is_seed(fq, int(name), stack)
        self._memo[key] = v
        return v

    def _closure_is_seed(
        self, fn: FlowFunction, name: str, stack: frozenset
    ) -> bool:
        parent = self.parent_of(fn)
        while parent is not None:
            ps = parent.summary
            if name in ps.params:
                return self.root_is_seed(parent.fq, f"p:{name}", stack)
            if name in ps.derive:
                return self.root_is_seed(parent.fq, f"l:{name}", stack)
            parent = self.parent_of(parent)
        return False

    #: Externals whose result is just their arguments rearranged —
    #: ``for s in enumerate(zip(cfgs, seeds))`` keeps the seeds seedy.
    _SEQ_PASSTHROUGH = frozenset(
        {"enumerate", "zip", "list", "tuple", "sorted", "reversed", "iter", "next"}
    )

    def _call_is_seed(self, fq: str, index: int, stack: frozenset) -> bool:
        site, resolved = self.resolved_site(fq, index)
        ext = resolved.external
        if ext in RNG_CONSTRUCTORS or ext == SEEDSEQ_CONSTRUCTOR:
            # the *result* is RNG-typed; bad inputs are flagged at the
            # construction itself, not re-reported downstream
            return True
        if ext in self._SEQ_PASSTHROUGH:
            return any(
                self.root_is_seed(fq, r, stack)
                for roots in (*site.arg_roots, *site.kwarg_roots.values())
                for r in roots
            )
        if resolved.method_name == "spawn":
            return any(
                self.root_is_seed(fq, r, stack) for r in site.recv_roots
            )
        for target in resolved.project_targets:
            if self.returns_seed(target, stack):
                return True
        return False

    def returns_seed(self, fq: str, stack: frozenset = frozenset()) -> bool:
        if fq in self._ret_memo:
            return self._ret_memo[fq]
        key = ("ret", fq)
        if key in stack:
            return True
        stack = stack | {key}
        fn = self.project.functions.get(fq)
        if fn is None:
            return False
        s = fn.summary
        if any(a in s.return_annotation for a in _SEED_ANNOTATIONS):
            self._ret_memo[fq] = True
            return True
        nonempty = [r for r in s.returns if r]
        v = bool(nonempty) and all(
            any(self.root_is_seed(fq, root, stack) for root in roots)
            for roots in nonempty
        )
        self._ret_memo[fq] = v
        return v

    # -- violations ----------------------------------------------------

    def violations(self) -> list[Violation]:
        self.solve()
        out: list[Violation] = []
        for fq in sorted(self.project.functions):
            fn = self.project.functions[fq]
            s = fn.summary
            for param, line, col in s.int_default_params:
                if is_seed_name(param):
                    out.append(
                        Violation(
                            fn.module.path,
                            line,
                            col,
                            f"literal int default for seed parameter "
                            f"{param!r} of {fq} hardcodes the random stream; "
                            "default to None (fresh entropy) or require a seed",
                        )
                    )
            for site, resolved in self.graph.resolved[fq]:
                out.extend(self._check_site(fn, site, resolved))
        out.sort(key=lambda v: (v.path, v.line, v.col, v.message))
        return out

    def _check_site(
        self, fn: FlowFunction, site: CallSite, resolved: ResolvedCall
    ) -> list[Violation]:
        out: list[Violation] = []
        ext = resolved.external
        where = f"{site.target or '<call>'}"

        def emit(msg: str) -> None:
            out.append(Violation(fn.module.path, site.lineno, site.col, msg))

        if ext in RNG_CONSTRUCTORS:
            args = [
                *enumerate(site.arg_consts),
                *site.kwarg_consts.items(),
            ]
            if not site.arg_roots and not site.kwarg_roots:
                emit(
                    f"{where}() draws implicit OS entropy; construct from a "
                    "seed parameter or an explicit SeedSequence() boundary"
                )
            for pos, const in args:
                if const == "int":
                    emit(
                        f"hardcoded literal seed in {where}(); thread a seed "
                        "parameter instead"
                    )
                elif const == "none":
                    emit(
                        f"{where}(None) draws implicit OS entropy; use an "
                        "explicit SeedSequence() boundary so the entropy is "
                        "capturable in manifests"
                    )
            self._check_construction_args(fn, site, where, emit)
        elif ext == SEEDSEQ_CONSTRUCTOR:
            for const in list(site.arg_consts) + list(site.kwarg_consts.values()):
                if const == "int":
                    emit(
                        f"hardcoded literal entropy in {where}(); thread a "
                        "seed parameter instead"
                    )
            self._check_construction_args(fn, site, where, emit)
        else:
            # literal seeds handed to seed-named parameters of project code
            for target in resolved.project_targets:
                callee = self.project.functions.get(target)
                if callee is None:
                    continue
                params = callee.summary.params
                offset = (
                    1
                    if (resolved.bound and params and params[0] in ("self", "cls"))
                    else 0
                )
                for i, const in enumerate(site.arg_consts):
                    idx = i + offset
                    if const == "int" and idx < len(params) and is_seed_name(params[idx]):
                        emit(
                            f"literal seed passed to parameter "
                            f"{params[idx]!r} of {target}; thread a seed "
                            "parameter instead"
                        )
                for kw, const in site.kwarg_consts.items():
                    if const == "int" and kw in params and is_seed_name(kw):
                        emit(
                            f"literal seed passed to parameter {kw!r} of "
                            f"{target}; thread a seed parameter instead"
                        )
        return out

    def _check_construction_args(self, fn, site, where, emit) -> None:
        labeled = [
            *(
                (
                    f"argument {i}",
                    roots,
                    site.arg_consts[i] if i < len(site.arg_consts) else "",
                )
                for i, roots in enumerate(site.arg_roots)
            ),
            *(
                (f"argument {kw!r}", roots, site.kwarg_consts.get(kw, ""))
                for kw, roots in site.kwarg_roots.items()
            ),
        ]
        for label, roots, const in labeled:
            if const or not roots:
                continue  # literals handled above; root-free exprs skipped
            if not any(self.root_is_seed(fn.fq, r) for r in roots):
                emit(
                    f"{label} of {where}() is not derived from a seed "
                    "parameter or an explicit entropy boundary"
                )


# --------------------------------------------------------------------------
# determinism taint
# --------------------------------------------------------------------------

WALLCLOCK_SOURCES = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)
ENTROPY_SOURCES = frozenset(
    {
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbits",
    }
)
ADDRESS_SOURCES = frozenset(
    {"id", "os.getpid", "threading.get_ident", "threading.get_native_id"}
)
#: Builtins that erase iteration-order dependence of their input.
ORDER_NEUTRALIZERS = frozenset(
    {"sorted", "min", "max", "sum", "len", "any", "all", "frozenset", "set"}
)
#: Builtins that materialize their input's iteration order.
ORDER_MATERIALIZERS = frozenset({"list", "tuple", "iter", "enumerate"})

#: Project functions whose arguments become store key material.
KEY_SINKS = frozenset(
    {
        "repro.store.keys.task_key",
        "repro.store.keys.sweep_key",
        "repro.store.keys.canonical_json",
        "repro.store.keys.seed_fingerprint",
    }
)
PACK_SINK = "repro.store.backend.pack_result"
EVENT_MODULE_PREFIX = "repro.obs.events."
MANIFEST_SINK = "repro.obs.provenance.write_manifest"
#: write_manifest kwargs that become manifest *identity* content
#: (directory/filename/started/metrics are bookkeeping, not identity).
MANIFEST_KWARGS = frozenset({"config", "seed", "params"})

_SINK_LABELS = {
    "repro.store.keys.task_key": "store key material",
    "repro.store.keys.sweep_key": "store key material",
    "repro.store.keys.canonical_json": "store key material",
    "repro.store.keys.seed_fingerprint": "store key material",
    PACK_SINK: "a packed result payload",
    MANIFEST_SINK: "manifest contents",
}


class DeterminismTaint(_ScopeWalker):
    """Least-fixed-point taint of nondeterminism sources toward sinks."""

    def __init__(self, project: Project, graph: CallGraph) -> None:
        super().__init__(project, graph)
        self.bindings = _param_bindings(graph)
        self.param_taint: dict[tuple[str, str], frozenset[str]] = {}
        self.attr_taint: dict[tuple[str, str], frozenset[str]] = {}
        self.returns_taint: dict[str, frozenset[str]] = {}
        self._memo: dict[tuple[str, str], frozenset[str]] = {}
        self._attr_assigns: dict[tuple[str, str], list[tuple[str, list[str]]]] = {}
        self._solved = False

    def solve(self) -> None:
        if self._solved:
            return
        self._solved = True
        for fn in self.project.functions.values():
            s = fn.summary
            if not s.class_name or s.parent:
                continue
            cls = f"{fn.module.module}.{s.class_name}"
            for attr, roots in s.self_assigns.items():
                self._attr_assigns.setdefault((cls, attr), []).append(
                    (fn.fq, roots)
                )
        for _ in range(_MAX_ROUNDS):
            if not self._grow_round():
                break

    def _grow_round(self) -> bool:
        self._memo.clear()
        changed = False
        for key, blist in self.bindings.items():
            acc = set(self.param_taint.get(key, frozenset()))
            for caller, roots, _const in blist:
                for r in roots:
                    acc |= self.taints(caller, r)
            fs = frozenset(acc)
            if fs != self.param_taint.get(key, frozenset()):
                self.param_taint[key] = fs
                changed = True
        for key, assigns in self._attr_assigns.items():
            acc = set(self.attr_taint.get(key, frozenset()))
            for fq, roots in assigns:
                for r in roots:
                    acc |= self.taints(fq, r)
            fs = frozenset(acc)
            if fs != self.attr_taint.get(key, frozenset()):
                self.attr_taint[key] = fs
                changed = True
        for fq in self.project.functions:
            acc = set(self.returns_taint.get(fq, frozenset()))
            for roots in self.project.functions[fq].summary.returns:
                for r in roots:
                    acc |= self.taints(fq, r)
            fs = frozenset(acc)
            if fs != self.returns_taint.get(fq, frozenset()):
                self.returns_taint[fq] = fs
                changed = True
        return changed

    # -- evaluation ----------------------------------------------------

    def taints(
        self, fq: str, root: str, stack: frozenset = frozenset()
    ) -> frozenset[str]:
        key = (fq, root)
        if key in self._memo:
            return self._memo[key]
        if key in stack:
            return frozenset()  # least fixed point: cycles start empty
        stack = stack | {key}
        fn = self.project.functions[fq]
        s = fn.summary
        kind, _, name = root.partition(":")
        acc: set[str] = set()
        if kind == "p":
            acc |= self.param_taint.get((fq, name), frozenset())
        elif kind == "l":
            for r in s.derive.get(name, []):
                acc |= self.taints(fq, r, stack)
            acc |= self._loop_order_taint(fq, s, name, stack)
        elif kind == "s":
            if s.class_name:
                cls = f"{fn.module.module}.{s.class_name}"
                acc |= self.attr_taint.get((cls, name), frozenset())
        elif kind == "g":
            mod = self.module_scope_of(fn)
            if mod is not None and mod.fq != fq:
                for r in mod.summary.derive.get(name, []):
                    acc |= self.taints(mod.fq, r, stack)
        elif kind == "x":
            acc |= self._closure_taints(fn, name, stack)
        elif kind == "c":
            acc |= self._call_taints(fq, int(name), stack)
        result = frozenset(acc)
        self._memo[key] = result
        return result

    def _loop_order_taint(
        self, fq: str, s: FunctionSummary, name: str, stack: frozenset
    ) -> frozenset[str]:
        for targets, iter_roots, _line, _col in s.loops:
            if name in targets and self._iter_is_set(s, iter_roots):
                return frozenset({"set-order"})
        return frozenset()

    @staticmethod
    def _iter_is_set(s: FunctionSummary, iter_roots: list[str]) -> bool:
        return any(
            r.startswith("l:") and r[2:] in s.set_typed for r in iter_roots
        )

    def _closure_taints(
        self, fn: FlowFunction, name: str, stack: frozenset
    ) -> frozenset[str]:
        parent = self.parent_of(fn)
        while parent is not None:
            ps = parent.summary
            if name in ps.params:
                return self.taints(parent.fq, f"p:{name}", stack)
            if name in ps.derive:
                return self.taints(parent.fq, f"l:{name}", stack)
            parent = self.parent_of(parent)
        return frozenset()

    def _call_taints(
        self, fq: str, index: int, stack: frozenset
    ) -> frozenset[str]:
        site, resolved = self.resolved_site(fq, index)
        ext = resolved.external
        if ext in WALLCLOCK_SOURCES:
            return frozenset({"wallclock"})
        if ext in ENTROPY_SOURCES:
            return frozenset({"entropy"})
        if ext in ADDRESS_SOURCES:
            return frozenset({"address"})
        inputs: set[str] = set()
        fn = self.project.functions[fq]
        for r in site.recv_roots:
            inputs |= self.taints(fq, r, stack)
        arg_taints: set[str] = set()
        for roots in site.arg_roots:
            for r in roots:
                arg_taints |= self.taints(fq, r, stack)
        for roots in site.kwarg_roots.values():
            for r in roots:
                arg_taints |= self.taints(fq, r, stack)
        if ext in ORDER_NEUTRALIZERS:
            return frozenset(arg_taints - {"set-order"})
        if ext in ORDER_MATERIALIZERS:
            acc = set(arg_taints)
            for roots in site.arg_roots:
                if self._iter_is_set(fn.summary, roots):
                    acc.add("set-order")
            return frozenset(acc)
        if resolved.project_targets:
            acc = set(arg_taints) | inputs
            for target in resolved.project_targets:
                acc |= self.returns_taint.get(target, frozenset())
            return frozenset(acc)
        # constructors, value methods, unknown externals: taint flows
        # through from every input
        return frozenset(arg_taints | inputs)

    # -- violations ----------------------------------------------------

    def violations(self) -> list[Violation]:
        self.solve()
        out: list[Violation] = []
        for fq in sorted(self.project.functions):
            fn = self.project.functions[fq]
            for site, resolved in self.graph.resolved[fq]:
                out.extend(self._check_sink(fn, site, resolved))
        out.sort(key=lambda v: (v.path, v.line, v.col, v.message))
        return out

    def _check_sink(
        self, fn: FlowFunction, site: CallSite, resolved: ResolvedCall
    ) -> list[Violation]:
        out: list[Violation] = []

        def check(label: str, roots: list[str], sink_desc: str) -> None:
            kinds: set[str] = set()
            for r in roots:
                kinds |= self.taints(fn.fq, r)
            if kinds:
                out.append(
                    Violation(
                        fn.module.path,
                        site.lineno,
                        site.col,
                        f"{'/'.join(sorted(kinds))}-tainted value in {label} "
                        f"flows into {sink_desc}",
                    )
                )

        sink_fqs = [t for t in resolved.project_targets if t in KEY_SINKS or t == PACK_SINK or t == MANIFEST_SINK]
        for target in sink_fqs:
            desc = _SINK_LABELS[target]
            if target == MANIFEST_SINK:
                if len(site.arg_roots) > 1:
                    check("positional argument 1", site.arg_roots[1], desc)
                for kw, roots in site.kwarg_roots.items():
                    if kw in MANIFEST_KWARGS:
                        check(f"argument {kw!r}", roots, desc)
            else:
                for i, roots in enumerate(site.arg_roots):
                    check(f"argument {i}", roots, desc)
                for kw, roots in site.kwarg_roots.items():
                    check(f"argument {kw!r}", roots, desc)
        if resolved.constructor_of.startswith(EVENT_MODULE_PREFIX):
            desc = f"trace-event {resolved.constructor_of.rsplit('.', 1)[1]} field"
            for i, roots in enumerate(site.arg_roots):
                check(f"argument {i}", roots, desc)
            for kw, roots in site.kwarg_roots.items():
                check(f"argument {kw!r}", roots, desc)
        return out
