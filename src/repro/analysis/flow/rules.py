"""Whole-program lint rules backed by the flow analyses.

========================  ====================================================
rule id                   guarantee
========================  ====================================================
flow-seed-provenance      every RNG/SeedSequence construction in ``src/repro``
                          is derived — through the project call graph — from a
                          seed-typed parameter or an explicit ``SeedSequence()``
                          entropy boundary; no hardcoded literal seeds
flow-det-taint            wallclock/entropy/address/set-order values never
                          flow into store key material, packed result
                          payloads, trace-event fields, or manifest contents
flow-effects              inferred per-function effects satisfy the declared
                          contracts (e.g. ``store.keys`` pure) and match the
                          committed ``effects-manifest.json``
========================  ====================================================

All three share one :class:`FlowProgram` (module summaries → symbol
table → call graph) built once per check run and memoized on the
:class:`~repro.analysis.lint.core.ProjectContext`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, Sequence

from repro.analysis.flow.cache import DEFAULT_CACHE_DIR, SummaryCache
from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.effects import EffectInference
from repro.analysis.flow.summary import module_name_for_path
from repro.analysis.flow.symbols import Project
from repro.analysis.flow.taint import DeterminismTaint, SeedProvenance
from repro.analysis.lint.core import (
    Finding,
    ProjectContext,
    ProjectRule,
    iter_python_files,
    register_project,
    relative_posix,
)

__all__ = [
    "EFFECTS_MANIFEST_NAME",
    "FlowProgram",
    "FlowSeedProvenance",
    "FlowDetTaint",
    "FlowEffects",
    "effects_manifest_for_paths",
]

EFFECTS_MANIFEST_NAME = "effects-manifest.json"

#: Sentinel module whose presence marks a full-``src/repro`` scan; the
#: manifest drift check only runs then (a partial scan would misread
#: every out-of-scope manifest entry as stale).
_FULL_SCAN_SENTINEL = "src/repro/__init__.py"


class FlowProgram:
    """Shared symbol table + call graph for one check run."""

    def __init__(self, project: Project, graph: CallGraph, cache: SummaryCache) -> None:
        self.project = project
        self.graph = graph
        self.cache = cache

    @classmethod
    def ensure(cls, pctx: ProjectContext) -> "FlowProgram":
        program = pctx.memo.get("flow-program")
        if program is None:
            directory: Path | None = None
            if pctx.use_cache:
                directory = pctx.cache_dir or (
                    (pctx.root or Path.cwd()) / DEFAULT_CACHE_DIR
                )
            cache = SummaryCache(directory)
            summaries = []
            for path in sorted(pctx.modules):
                if not module_name_for_path(path):
                    continue
                ctx = pctx.modules[path]
                summaries.append(cache.summary_for(path, ctx.source, ctx.tree))
            project = Project(summaries)
            program = cls(project, CallGraph(project), cache)
            pctx.memo["flow-program"] = program
        return program


def _emit(pctx: ProjectContext, rule_id: str, violations) -> Iterator[Finding]:
    for v in violations:
        yield pctx.finding(rule_id, v.path, v.line, v.col, v.message)


@register_project
class FlowSeedProvenance(ProjectRule):
    id = "flow-seed-provenance"
    summary = (
        "RNG construction must derive from a seed parameter or an "
        "explicit entropy boundary (call-graph provenance)"
    )

    def check_project(self, pctx: ProjectContext) -> Iterator[Finding]:
        program = FlowProgram.ensure(pctx)
        analysis = SeedProvenance(program.project, program.graph)
        yield from _emit(pctx, self.id, analysis.violations())


@register_project
class FlowDetTaint(ProjectRule):
    id = "flow-det-taint"
    summary = (
        "wallclock/entropy/address/set-order values must not reach store "
        "keys, packed results, trace events, or manifests"
    )

    def check_project(self, pctx: ProjectContext) -> Iterator[Finding]:
        program = FlowProgram.ensure(pctx)
        analysis = DeterminismTaint(program.project, program.graph)
        yield from _emit(pctx, self.id, analysis.violations())


@register_project
class FlowEffects(ProjectRule):
    id = "flow-effects"
    summary = (
        "inferred function effects must satisfy declared contracts and "
        "match the committed effects manifest"
    )

    def check_project(self, pctx: ProjectContext) -> Iterator[Finding]:
        program = FlowProgram.ensure(pctx)
        inference = EffectInference(program.project, program.graph)
        yield from _emit(pctx, self.id, inference.contract_violations())
        if pctx.root is None or _FULL_SCAN_SENTINEL not in pctx.modules:
            return
        manifest_path = Path(pctx.root) / EFFECTS_MANIFEST_NAME
        if not manifest_path.is_file():
            return  # tier-1 asserts the committed manifest exists
        try:
            committed = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            committed = {}
        if not isinstance(committed, dict):
            committed = {}
        committed = {
            str(k): [str(e) for e in v]
            for k, v in committed.items()
            if isinstance(v, list)
        }
        yield from _emit(
            pctx,
            self.id,
            inference.manifest_drift(committed, EFFECTS_MANIFEST_NAME),
        )


def effects_manifest_for_paths(
    paths: Sequence[str | Path],
    root: Path | None = None,
    use_cache: bool = True,
    cache_dir: str | Path | None = None,
) -> dict[str, list[str]]:
    """Inferred effects manifest for the project files under ``paths``."""
    directory: Path | None = None
    if use_cache:
        directory = Path(cache_dir) if cache_dir is not None else (
            (root or Path.cwd()) / DEFAULT_CACHE_DIR
        )
    cache = SummaryCache(directory)
    summaries = []
    for file in iter_python_files(paths):
        rel = relative_posix(file, root)
        if not module_name_for_path(rel):
            continue
        try:
            source = file.read_text(encoding="utf-8")
            summaries.append(cache.summary_for(rel, source))
        except (OSError, SyntaxError):
            continue
    project = Project(summaries)
    return EffectInference(project, CallGraph(project)).manifest()
