"""Workload files and replay: the serving benchmark harness.

A workload is a JSON-lines file of request documents
(:func:`save_workload` / :func:`load_workload`).  :func:`make_workload`
generates the canonical benchmark population *deterministically* — no
RNG anywhere in the serve tier (the effect contract forbids it): query
parameters cycle through fixed grids, and duplicates are interleaved
round-robin so identical requests are concurrently in flight, which is
exactly what exercises the single-flight map.

:func:`replay` fires a workload at a :class:`~repro.serve.service
.QueryService` concurrently and reports the numbers the perf gate
consumes: p50/p95/mean latency (``time.perf_counter``, an allowed
``time`` effect) and the service's coalescing ratio.  The canonical
benchmark (``repro-serve --bench``) replays the 20-query x 10-replication
population (200 unique simulation tasks) twice — a cold pass measuring
coalescing and a warm pass measuring memory-tier latency.
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.errors import ServeError
from repro.serve.service import QueryService

__all__ = [
    "make_workload",
    "save_workload",
    "load_workload",
    "replay",
]

#: Parameter cycles of the generated workload — matched to the store
#: benchmark grid (``benchmarks/bench_perf_store.py``) so serve and
#: sweep benchmarks stress comparable populations.
_RHOS: tuple[float, ...] = (30.0, 40.0)
_PS: tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.9)
_BOUNDS: tuple[dict, ...] = (
    {"latency": 8.0},
    {"energy": 400.0},
)


def make_workload(
    queries: int = 20,
    *,
    duplicates: int = 2,
    replications: int = 10,
    seed: int = 20050113,  # repro: allow(flow-seed-provenance) — workload seeds are identity, not entropy: the fixed default makes every bench replay ask for the same task keys, which is what the perf gate compares across runs
    n_rings: int = 4,
) -> list[dict]:
    """Deterministic benchmark workload: ``queries * duplicates`` requests.

    Distinct queries walk the ``(rho, p, bounds)`` cycles; duplicates
    are *interleaved* (request ``i`` repeats every ``queries``
    positions), so a concurrent replay holds each query's copies in
    flight together.  All copies of a query share its seed — identical
    task keys are the whole point.

    The default population (20 queries x 10 replications) is the
    acceptance workload: 200 unique simulation tasks.
    """
    if queries <= 0 or duplicates <= 0:
        raise ServeError(
            f"queries and duplicates must be > 0, got {queries}, {duplicates}"
        )
    distinct: list[dict] = []
    for i in range(queries):
        distinct.append(
            {
                "kind": "bound",
                "rho": _RHOS[i % len(_RHOS)],
                "p": _PS[(i // len(_RHOS)) % len(_PS)],
                "seed": seed + i,
                "replications": replications,
                "bounds": dict(_BOUNDS[i % len(_BOUNDS)]),
                "objectives": ["reachability"],
                "n_rings": n_rings,
            }
        )
    return [distinct[i % queries] for i in range(queries * duplicates)]


def save_workload(path: str | Path, requests: Sequence[Mapping[str, Any]]) -> Path:
    """Write one request document per line."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w") as fh:
        for req in requests:
            fh.write(json.dumps(dict(req), sort_keys=True) + "\n")
    return out


def load_workload(path: str | Path) -> list[dict]:
    """Read a workload file back; blank lines are skipped."""
    requests: list[dict] = []
    for lineno, line in enumerate(Path(path).read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
        except ValueError as exc:
            raise ServeError(
                f"undecodable workload line {lineno} at {path}: {exc}"
            ) from exc
        if not isinstance(doc, dict):
            raise ServeError(
                f"workload line {lineno} at {path} is not a JSON object"
            )
        requests.append(doc)
    if not requests:
        raise ServeError(f"workload at {path} is empty")
    return requests


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of an ascending sequence."""
    if not sorted_values:
        return float("nan")
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


async def replay(
    service: QueryService,
    requests: Sequence[Mapping[str, Any]],
    *,
    concurrent: bool = True,
) -> dict:
    """Fire a workload at the service; return latency + coalescing stats.

    ``concurrent=True`` (the cold-pass mode) launches every request in
    one gather — the open-loop load under which coalescing and
    per-tick batching actually engage, so its headline number is the
    coalescing ratio.  ``concurrent=False`` (the warm-pass mode) plays
    requests back to back — closed-loop, so each latency sample is one
    query's own wall time with no event-loop queueing behind the rest
    of the workload, which is the honest basis for the p50/p95 budget.
    The coalescing ratio is the *delta* this replay added to the
    service's counters, so consecutive replays report their own ratios.
    """
    before = service.stats.to_dict()
    latencies: list[float] = []

    async def _one(doc: Mapping[str, Any]) -> dict:
        t0 = time.perf_counter()
        response = await service.query(doc)
        latencies.append(time.perf_counter() - t0)
        return response

    t_start = time.perf_counter()
    if concurrent:
        responses = await asyncio.gather(*(_one(doc) for doc in requests))
    else:
        responses = [await _one(doc) for doc in requests]
    total_s = time.perf_counter() - t_start
    after = service.stats.to_dict()

    requested = after["requested"] - before["requested"]
    served = (
        after["dispatched"]
        - before["dispatched"]
        + after["memory_hits"]
        - before["memory_hits"]
    )
    latencies.sort()
    return {
        "requests": len(requests),
        "failures": sum(1 for r in responses if not r.get("id")),
        "total_s": total_s,
        "p50_s": _percentile(latencies, 0.50),
        "p95_s": _percentile(latencies, 0.95),
        "mean_s": sum(latencies) / len(latencies) if latencies else float("nan"),
        "task_lookups": requested,
        "tasks_served": served,
        "coalescing_ratio": requested / served if served else float("nan"),
        "batches": after["batches"] - before["batches"],
        "memory_hits": after["memory_hits"] - before["memory_hits"],
        "timeouts": after["timeouts"] - before["timeouts"],
    }
