"""The serve/compute bridge: planning and executing simulation tasks.

This module is the *only* place where the serve tier touches the
simulation stack, and therefore the only place in ``repro.serve``
allowed to carry the ``rng`` effect (spawning per-replication seeds,
running the engines).  The service proper stays ``io``/``time`` —
enforced by the ``repro.serve.`` contract in the flow analysis — and
reaches compute exclusively through injected callables, so tests swap
in counting/failing fakes without touching asyncio internals.

Planning mirrors :func:`repro.sim.runner.replicate` exactly: a fresh
``SeedSequence(seed)`` is spawned into ``replications`` children *per
probability*, so (a) serve task keys are identical to offline
``replicate`` keys — warm stores are shared across entry points — and
(b) every candidate probability of one request reuses the same seed
children (common random numbers across ``ps``).
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.config import AnalysisConfig
from repro.protocols.pbcast import ProbabilisticRelay
from repro.serve.protocol import ServeRequest
from repro.sim.config import SimulationConfig
from repro.sim.results import RunResult
from repro.sim.runner import _execute
from repro.store.backend import StoreBackend
from repro.store.keys import task_key
from repro.store.scheduler import run_tasks
from repro.utils.rng import as_seed_sequence

__all__ = ["TaskPlan", "plan_tasks", "execute_tasks"]


class TaskPlan:
    """One request's unit-of-work decomposition.

    ``tasks[i]`` is a runner task tuple, ``keys[i]`` its
    content-addressed store key; ``slices[p]`` selects the replication
    block of probability ``p`` out of both lists.
    """

    def __init__(
        self,
        tasks: list[tuple],
        keys: list[str],
        slices: dict[float, slice],
    ) -> None:
        self.tasks = tasks
        self.keys = keys
        self.slices = slices

    def __len__(self) -> int:
        return len(self.tasks)


def plan_tasks(request: ServeRequest) -> TaskPlan:
    """Decompose a request into runner tasks + store keys.

    Deterministic: the same request always plans the same keys (seeds
    are explicit in the request), which is what the service's
    single-flight map coalesces on.
    """
    config = SimulationConfig(
        analysis=AnalysisConfig(n_rings=request.n_rings, rho=request.rho)
    )
    tasks: list[tuple] = []
    keys: list[str] = []
    slices: dict[float, slice] = {}
    for p in request.ps:
        policy = ProbabilisticRelay(p)
        # Fresh root per probability: children (and so task keys) match
        # replicate(policy, config, replications, seed=request.seed).
        children = as_seed_sequence(request.seed).spawn(request.replications)
        start = len(tasks)
        for child in children:
            tasks.append(
                (policy, config, child, request.engine, request.alignment, None)
            )
            keys.append(
                task_key(policy, config, child, request.engine, request.alignment)
            )
        slices[p] = slice(start, len(tasks))
    return TaskPlan(tasks, keys, slices)


# repro: allow(flow-effects) — the serve tier's one sanctioned compute door: delegates to run_tasks (io+rng+time) on an executor thread; reached only through the service's injected execute callable
def execute_tasks(
    tasks: Sequence[tuple],
    keys: Sequence[str],
    store: StoreBackend | None,
    *,
    workers: int | None = 1,
    retries: int = 1,
    backoff: float = 0.05,
) -> list[RunResult]:
    """Run one coalesced miss batch through the cache-aware scheduler.

    Hits are served from the store (including the read-through memory
    tier when ``store`` wraps one), misses execute, completions
    persist — exactly the offline path, so a result's provenance never
    depends on which front door asked for it.
    """
    return run_tasks(
        _execute,
        list(tasks),
        list(keys),
        store=store,
        workers=workers,
        retries=retries,
        backoff=backoff,
    )
