"""The serve wire model: requests, validation, canonical request keys.

A request asks one of two questions about a deployment density:

* ``kind="bound"`` — evaluate one relay probability ``p`` at density
  ``rho`` under the query's bounds/objectives: is it feasible, and
  what are its reachability / latency / energy at the stopping time?
* ``kind="objective"`` — evaluate a candidate set ``ps`` and return
  the best feasible probability under the same lexicographic order the
  optimizer uses (:func:`repro.optimize.spec.better`).

Both decompose into the same unit of work — ``replications``
independent simulation tasks per probability, keyed by
:func:`repro.store.keys.task_key` — which is what the service
coalesces and batches.  Seeds are **explicit and required**: two
clients asking the same question with the same seed produce identical
task keys (and therefore share one scheduler run and one store entry);
an implicit "fresh entropy per request" default would silently defeat
every cache tier.

Task planning mirrors :func:`repro.sim.runner.replicate` exactly
(fresh ``SeedSequence(seed)`` spawned into ``replications`` children
per probability), so serve traffic shares store entries with offline
``replicate``/``sweep_grid`` workloads, and candidate probabilities of
one request share deployments (common random numbers) for free.

Requests parse from JSON objects (one per line on the CLI's stdio
loop); :func:`request_key` fingerprints a request for response ids and
logs via the store's canonical JSON — derivation is pure, like every
other key in this codebase.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import ConfigurationError, ServeError
from repro.optimize.spec import METRIC_NAMES, OptimizeQuery
from repro.store.keys import canonical_json

__all__ = [
    "REQUEST_KINDS",
    "DEFAULT_PS",
    "ServeRequest",
    "parse_request",
    "request_key",
]

REQUEST_KINDS: tuple[str, ...] = ("bound", "objective")

#: Candidate grid of an ``objective`` request that names none — the
#: paper's canonical nine probabilities.
DEFAULT_PS: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


@dataclass(frozen=True)
class ServeRequest:
    """One validated query against the service.

    Attributes
    ----------
    kind:
        ``"bound"`` (evaluate one ``p``) or ``"objective"`` (pick the
        best of ``ps``).
    rho:
        Deployment density (nodes per unit disk), as everywhere else.
    ps:
        The probabilities to evaluate: exactly one for ``bound``
        requests, a candidate grid for ``objective`` ones.
    seed:
        Explicit base entropy; per-replication seeds are spawned from
        a fresh ``SeedSequence(seed)`` per probability.
    replications:
        Monte-Carlo runs per probability.
    bounds, objectives, min_feasible:
        As in :class:`repro.optimize.spec.OptimizeQuery`.
    n_rings, engine, alignment:
        Scenario knobs forwarded to the simulation config / runner.
    """

    kind: str
    rho: float
    ps: tuple[float, ...]
    seed: int
    replications: int = 10
    bounds: Mapping[str, float] = field(default_factory=dict)
    objectives: tuple[str, ...] = ("reachability",)
    min_feasible: float = 0.5
    n_rings: int = 4
    engine: str = "vector"
    alignment: str = "phase"

    def __post_init__(self) -> None:
        if self.kind not in REQUEST_KINDS:
            raise ConfigurationError(
                f"unknown request kind {self.kind!r}; expected one of {REQUEST_KINDS}"
            )
        object.__setattr__(self, "ps", tuple(float(p) for p in self.ps))
        object.__setattr__(self, "objectives", tuple(self.objectives))
        object.__setattr__(self, "bounds", dict(self.bounds))
        if not self.ps:
            raise ConfigurationError("a request needs at least one probability")
        if self.kind == "bound" and len(self.ps) != 1:
            raise ConfigurationError(
                f"a bound request evaluates exactly one p, got {len(self.ps)}"
            )
        for p in self.ps:
            if not 0.0 < p <= 1.0:
                raise ConfigurationError(f"p must be in (0, 1], got {p}")
        if self.rho <= 0:
            raise ConfigurationError(f"rho must be > 0, got {self.rho}")
        if self.replications <= 0:
            raise ConfigurationError(
                f"replications must be > 0, got {self.replications}"
            )
        # Delegate bound/objective semantics to the optimizer's model —
        # one validator, one error vocabulary.
        self.query()

    def query(self) -> OptimizeQuery:
        """The request's constraint model, in the optimizer's terms."""
        return OptimizeQuery(
            bounds=self.bounds,
            objectives=self.objectives,
            min_feasible=self.min_feasible,
        )


_FIELDS: dict[str, Any] = {
    "kind": str,
    "rho": float,
    "p": float,
    "ps": list,
    "seed": int,
    "replications": int,
    "bounds": dict,
    "objectives": list,
    "min_feasible": float,
    "n_rings": int,
    "engine": str,
    "alignment": str,
}


def parse_request(doc: str | Mapping[str, Any]) -> ServeRequest:
    """Build a :class:`ServeRequest` from a JSON line or parsed object.

    Accepts ``p`` (scalar) or ``ps`` (list) interchangeably; every
    other unknown field is rejected loudly — a typo'd field name must
    not silently become a default.

    Raises
    ------
    ServeError
        On undecodable JSON or unknown/missing fields.
    ConfigurationError
        On well-formed but invalid values (via the dataclass).
    """
    if isinstance(doc, str):
        try:
            doc = json.loads(doc)
        except ValueError as exc:
            raise ServeError(f"undecodable request line: {exc}") from exc
    if not isinstance(doc, Mapping):
        raise ServeError(
            f"a request must be a JSON object, got {type(doc).__name__}"
        )
    unknown = sorted(set(doc) - set(_FIELDS))
    if unknown:
        raise ServeError(
            f"unknown request field(s) {unknown}; expected {sorted(_FIELDS)}"
        )
    if "p" in doc and "ps" in doc:
        raise ServeError("pass either p or ps, not both")
    fields = {k: v for k, v in doc.items() if k not in ("p", "ps")}
    if "p" in doc:
        fields["ps"] = (float(doc["p"]),)
    elif "ps" in doc:
        fields["ps"] = tuple(float(p) for p in doc["ps"])
    elif doc.get("kind") == "objective":
        fields["ps"] = DEFAULT_PS
    else:
        raise ServeError("a bound request needs a p")
    for name in ("kind", "rho", "seed"):
        if name not in fields:
            raise ServeError(f"request is missing required field {name!r}")
    if "objectives" in fields:
        fields["objectives"] = tuple(fields["objectives"])
    try:
        return ServeRequest(**fields)
    except TypeError as exc:
        raise ServeError(f"malformed request: {exc}") from exc


def request_key(request: ServeRequest) -> str:
    """Canonical SHA-256 fingerprint of a request (for ids and logs).

    Pure over the request fields — the same question always carries
    the same id, which is what makes duplicate detection observable in
    traces.
    """
    doc = {
        "kind": request.kind,
        "rho": request.rho,
        "ps": list(request.ps),
        "seed": request.seed,
        "replications": request.replications,
        "bounds": dict(request.bounds),
        "objectives": list(request.objectives),
        "min_feasible": request.min_feasible,
        "n_rings": request.n_rings,
        "engine": request.engine,
        "alignment": request.alignment,
    }
    return hashlib.sha256(canonical_json(doc).encode("utf-8")).hexdigest()


#: Metric names re-exported for CLI help text.
METRICS = METRIC_NAMES
