"""The service tier: broadcast-parameter queries at request rate.

The ROADMAP's "millions of users asking for broadcast parameters"
architecture: an asyncio front end (:class:`QueryService`) over the
sharded, concurrency-safe store and the cache-aware scheduler.  A
request asks a bound/objective question at one density
(:mod:`repro.serve.protocol`); the service decomposes it into
content-addressed simulation tasks, then spends as little as possible
answering them:

* identical in-flight task keys **coalesce** onto one future
  (single-flight map) — K identical concurrent queries, one scheduler
  run;
* distinct misses **batch** into one
  :func:`~repro.store.scheduler.run_tasks` call per event-loop tick;
* hot keys hit the **read-through memory tier**
  (:mod:`repro.serve.memory`) without touching disk.

Requests carry explicit seeds, and task planning mirrors
:func:`repro.sim.runner.replicate`, so service answers are
bit-identical to offline runs and share the same store entries.  The
serve tier itself performs no randomness (``io``/``time`` only —
enforced by the flow-analysis effect contract); all compute goes
through the two bridge callables in :mod:`repro.serve.compute`.

``repro-serve`` (:mod:`repro.serve.cli`) runs a stdio JSON-lines loop
and the benchmark replay (:mod:`repro.serve.workload`) whose
coalescing-ratio and warm-latency numbers the perf gate enforces.
"""

from repro.serve.memory import MemoryTier, ReadThroughStore
from repro.serve.protocol import ServeRequest, parse_request, request_key
from repro.serve.service import QueryService, ServiceStats
from repro.serve.workload import load_workload, make_workload, replay, save_workload

__all__ = [
    "MemoryTier",
    "ReadThroughStore",
    "ServeRequest",
    "parse_request",
    "request_key",
    "QueryService",
    "ServiceStats",
    "make_workload",
    "save_workload",
    "load_workload",
    "replay",
]
