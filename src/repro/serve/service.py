"""The asyncio query service: single-flight coalescing, per-tick batching.

:class:`QueryService` answers :class:`~repro.serve.protocol.ServeRequest`
questions on top of the store and the scheduler.  Three mechanisms make
it serve many concurrent clients with one compute budget:

* **Single-flight map.**  Every in-flight simulation task key owns at
  most one future.  A request whose key is already being computed
  awaits that future instead of scheduling again — K identical
  concurrent queries cost one scheduler run (pinned by tests).
* **Per-tick miss batching.**  New misses accumulate on a pending list
  and a flush callback scheduled with ``call_soon`` drains them once
  the current event-loop tick has let every ready request register —
  concurrent distinct queries merge into one
  :func:`~repro.store.scheduler.run_tasks` call instead of one each.
* **Read-through memory tier.**  Memory-hot keys resolve synchronously
  (:meth:`~repro.serve.memory.MemoryTier.peek`) without touching disk
  or the executor, which is what keeps warm-query latency in the
  single-digit-millisecond budget the perf gate enforces.

Requests carry a per-attempt ``timeout`` and a bounded, deterministic
(jitter-free) exponential retry, mirroring the scheduler's own backoff
discipline.  Shared futures are awaited through ``asyncio.shield`` so
one waiter's timeout never cancels a computation other waiters (or a
later retry) still need.

The service itself performs no randomness — the ``repro.serve.``
effect contract allows ``io``/``time`` and forbids ``rng`` — all
compute flows through the two injected callables from
:mod:`repro.serve.compute`, which is also what lets tests substitute
counting or failing fakes.
"""

from __future__ import annotations

import asyncio
import dataclasses
import os
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Any, Callable, Mapping, Protocol, Sequence

from repro.errors import ConfigurationError, ServeError
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans
from repro.optimize.spec import Evaluation, best_evaluation, evaluate_runs
from repro.serve import compute
from repro.serve.compute import TaskPlan
from repro.serve.memory import ReadThroughStore
from repro.serve.protocol import ServeRequest, parse_request, request_key
from repro.sim.results import RunResult
from repro.store.backend import StoreBackend

__all__ = ["ServiceStats", "QueryService"]

PlanFn = Callable[[ServeRequest], TaskPlan]


class ExecuteFn(Protocol):
    """The miss-batch executor the service delegates compute to."""

    def __call__(
        self,
        tasks: Sequence[tuple],
        keys: Sequence[str],
        store: StoreBackend | None,
        *,
        workers: int | None = 1,
        retries: int = 1,
        backoff: float = 0.05,
    ) -> list[RunResult]: ...


@dataclasses.dataclass
class ServiceStats:
    """Always-on coalescing/latency accounting (plain ints, no guards).

    ``requested`` counts task-key lookups, which split exactly into
    ``coalesced`` (joined an in-flight future), ``memory_hits``
    (served synchronously from the memory tier), and ``dispatched``
    (entered a miss batch — including disk hits, which the scheduler
    resolves).  The coalescing ratio therefore isolates the
    single-flight win: how many lookups each unit of downstream work
    answered.
    """

    requested: int = 0
    coalesced: int = 0
    dispatched: int = 0
    memory_hits: int = 0
    batches: int = 0
    queries: int = 0
    retries: int = 0
    timeouts: int = 0

    def coalescing_ratio(self) -> float:
        served = self.dispatched + self.memory_hits
        return self.requested / served if served else float("nan")

    def to_dict(self) -> dict:
        doc = dataclasses.asdict(self)
        doc["coalescing_ratio"] = self.coalescing_ratio()
        return doc


class QueryService:
    """Coalescing asyncio front end over the store and scheduler.

    Parameters
    ----------
    store:
        A store backend, a directory path, an existing
        :class:`~repro.serve.memory.ReadThroughStore`, or ``None``
        (no caching: every request computes, coalescing still applies).
        Anything not already read-through is wrapped in one.
    plan, execute:
        The compute bridge; default to
        :func:`repro.serve.compute.plan_tasks` /
        :func:`~repro.serve.compute.execute_tasks`.
    workers, scheduler_retries, scheduler_backoff:
        Forwarded to the executor callable (the scheduler's own
        parallelism and retry discipline).
    timeout:
        Seconds one resolution attempt may take before the request
        retries (the shared computation itself is never cancelled).
    retries, backoff:
        Bounded request-level retry: ``retries`` extra attempts with a
        deterministic ``backoff * 2**(k-1)`` schedule — the same
        jitter-free discipline as the scheduler.
    memory_entries:
        Capacity of the read-through tier when this service creates it.
    executor_threads:
        Threads running miss batches; batches beyond this queue.
    """

    def __init__(
        self,
        store: StoreBackend | ReadThroughStore | str | os.PathLike[str] | None,
        *,
        plan: PlanFn | None = None,
        execute: ExecuteFn | None = None,
        workers: int | None = 1,
        scheduler_retries: int = 1,
        scheduler_backoff: float = 0.05,
        timeout: float = 30.0,
        retries: int = 1,
        backoff: float = 0.05,
        memory_entries: int = 1024,
        executor_threads: int = 2,
    ) -> None:
        if timeout <= 0:
            raise ConfigurationError(f"timeout must be > 0, got {timeout}")
        if retries < 0:
            raise ConfigurationError(f"retries must be >= 0, got {retries}")
        if store is None or isinstance(store, ReadThroughStore):
            self.store: ReadThroughStore | None = store
        else:
            self.store = ReadThroughStore(store, max_entries=memory_entries)
        self._plan_fn: PlanFn = plan if plan is not None else compute.plan_tasks
        self._execute_fn: ExecuteFn = (
            execute if execute is not None else compute.execute_tasks
        )
        self.workers = workers
        self.scheduler_retries = scheduler_retries
        self.scheduler_backoff = scheduler_backoff
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.stats = ServiceStats()
        self._inflight: dict[str, asyncio.Future[RunResult]] = {}
        self._pending: list[tuple[str, tuple]] = []
        self._flush_scheduled = False
        self._batch_tasks: set[asyncio.Task[None]] = set()
        self._executor = ThreadPoolExecutor(
            max_workers=executor_threads, thread_name_prefix="repro-serve"
        )
        self._closed = False

    # ------------------------------------------------------------------
    # request entry point
    # ------------------------------------------------------------------
    async def query(
        self, request: ServeRequest | Mapping[str, Any] | str
    ) -> dict:
        """Answer one request; returns a JSON-safe response document.

        ``bound`` requests return the evaluation of their single
        probability; ``objective`` requests return every candidate's
        evaluation plus the best feasible one under the optimizer's
        ordering (``None`` when nothing is feasible).
        """
        if self._closed:
            raise ServeError("service is closed")
        if not isinstance(request, ServeRequest):
            request = parse_request(request)
        prof = obs_spans.profiler()
        begin = prof.begin if prof.enabled else None
        h = begin("serve.query", "serve") if begin is not None else None
        self.stats.queries += 1
        reg = obs_metrics.registry()
        if reg.enabled:
            reg.counter("serve.queries").inc()
        plan = self._plan_fn(request)
        results = await self._resolve_many(plan.keys, plan.tasks)
        query = request.query()
        evaluations = [
            evaluate_runs(results[plan.slices[p]], query, p) for p in request.ps
        ]
        best = (
            evaluations[0]
            if request.kind == "bound"
            else best_evaluation(evaluations, query)
        )
        feasible = best is not None and best.feasible
        if h is not None:
            h.end(tasks=len(plan), feasible=int(feasible))
        return {
            "id": request_key(request)[:16],
            "kind": request.kind,
            "rho": request.rho,
            "tasks": len(plan),
            "evaluations": [_evaluation_dict(ev) for ev in evaluations],
            "best": None if best is None else _evaluation_dict(best),
            "feasible": feasible,
        }

    # ------------------------------------------------------------------
    # resolution: single-flight + per-tick batching
    # ------------------------------------------------------------------
    async def _resolve_many(
        self, keys: Sequence[str], tasks: Sequence[tuple]
    ) -> list[RunResult]:
        attempts = self.retries + 1
        for attempt in range(attempts):
            if attempt:
                self.stats.retries += 1
                # Deterministic, jitter-free schedule (scheduler's twin).
                await asyncio.sleep(self.backoff * 2 ** (attempt - 1))
            try:
                gathered = asyncio.gather(
                    *(self._resolve(k, t) for k, t in zip(keys, tasks))
                )
                return list(await asyncio.wait_for(gathered, self.timeout))
            except asyncio.TimeoutError:
                # Cancelling the gather abandoned only *this* request's
                # waits; shared futures keep computing for the retry.
                self.stats.timeouts += 1
        raise ServeError(
            f"request timed out after {attempts} attempt"
            f"{'' if attempts == 1 else 's'} x {self.timeout:g}s "
            f"({len(keys)} task(s); backoff={self.backoff:g}s)"
        )

    async def _resolve(self, key: str, task: tuple) -> RunResult:
        self.stats.requested += 1
        existing = self._inflight.get(key)
        if existing is not None:
            # Single flight: join the computation already under way.
            self.stats.coalesced += 1
            return await asyncio.shield(existing)
        if self.store is not None:
            batch = self.store.memory.peek(key)
            if batch:
                self.stats.memory_hits += 1
                return batch[0]
        loop = asyncio.get_running_loop()
        fut: asyncio.Future[RunResult] = loop.create_future()
        self._inflight[key] = fut
        self._pending.append((key, task))
        self.stats.dispatched += 1
        if not self._flush_scheduled:
            # One flush per event-loop tick: every request that is
            # ready *now* registers its misses before the drain runs.
            self._flush_scheduled = True
            loop.call_soon(self._flush)
        return await asyncio.shield(fut)

    def _flush(self) -> None:
        self._flush_scheduled = False
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        self.stats.batches += 1
        reg = obs_metrics.registry()
        if reg.enabled:
            reg.counter("serve.batches").inc()
            reg.counter("serve.batched_tasks").inc(len(batch))
        task = asyncio.get_running_loop().create_task(self._run_batch(batch))
        self._batch_tasks.add(task)
        task.add_done_callback(self._batch_tasks.discard)

    async def _run_batch(self, batch: list[tuple[str, tuple]]) -> None:
        keys = [key for key, _ in batch]
        tasks = [task for _, task in batch]
        prof = obs_spans.profiler()
        begin = prof.begin if prof.enabled else None
        h = begin("serve.batch", "serve") if begin is not None else None
        loop = asyncio.get_running_loop()
        try:
            results = await loop.run_in_executor(
                self._executor,
                partial(
                    self._execute_fn,
                    tasks,
                    keys,
                    self.store,
                    workers=self.workers,
                    retries=self.scheduler_retries,
                    backoff=self.scheduler_backoff,
                ),
            )
        except Exception as exc:
            for key in keys:
                fut = self._inflight.pop(key, None)
                if fut is not None and not fut.done():
                    fut.set_exception(exc)
                    # Mark retrieved: a timed-out waiter may never
                    # collect it, and that must not warn at gc time.
                    fut.exception()
            if h is not None:
                h.end(tasks=len(batch), failed=1)
            return
        for key, result in zip(keys, results):
            fut = self._inflight.pop(key, None)
            if fut is not None and not fut.done():
                fut.set_result(result)
        if h is not None:
            h.end(tasks=len(batch), failed=0)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def drain(self) -> None:
        """Wait for every in-flight batch to finish."""
        while self._batch_tasks:
            await asyncio.gather(*list(self._batch_tasks), return_exceptions=True)

    async def close(self) -> None:
        """Drain, flush the store index, and release the executor."""
        if self._closed:
            return
        await self.drain()
        self._closed = True
        if self.store is not None:
            self.store.flush_index()
        self._executor.shutdown(wait=True)

    async def __aenter__(self) -> "QueryService":
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QueryService(store={self.store!r}, "
            f"inflight={len(self._inflight)})"
        )


def _evaluation_dict(ev: Evaluation) -> dict:
    """An :class:`~repro.optimize.spec.Evaluation` as JSON-safe dict."""
    return dataclasses.asdict(ev)
