"""``repro-serve`` — the query service from the shell.

Modes::

    repro-serve STORE                      # stdio JSON-lines loop
    repro-serve STORE --make-workload F    # write the benchmark workload
    repro-serve STORE --bench F            # replay a workload, report perf

The stdio loop reads one JSON request per line and writes one JSON
response per line (``{"error": ...}`` for bad requests); lines are
handled *concurrently* — pipe many identical requests in at once and
the single-flight map answers them with one scheduler run.  Responses
carry a ``seq`` field (the 1-based input line) because completion
order is not arrival order.

``--bench`` replays the workload twice — a cold pass (measures
coalescing: with the default interleaved duplicates every query's
copies are in flight together) and a warm pass (measures memory-tier
latency) — prints both, and with ``--perf-json`` merges
``serve.bench.*`` medians into the perf ledger's ``current`` section,
where ``benchmarks/check_perf.py`` gates warm p50 and the cold
coalescing ratio.  ``--trace`` exports the replay's span tree as a
Chrome trace (the CI artifact).

Exit codes: 0 success, 1 bench gate-relevant failure (timeouts or
failed requests during replay), 2 usage errors.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path
from typing import Any, TextIO

from repro.errors import ReproError
from repro.obs import spans as obs_spans
from repro.obs.export import write_chrome_trace
from repro.obs.spans import SpanBuffer
from repro.serve.service import QueryService
from repro.serve.workload import load_workload, make_workload, replay, save_workload

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve bound/objective queries over a result store.",
    )
    parser.add_argument("store", help="store directory (classic or sharded)")
    parser.add_argument(
        "--workers", type=int, default=1, help="scheduler workers per batch"
    )
    parser.add_argument(
        "--timeout", type=float, default=30.0, help="per-attempt timeout (s)"
    )
    parser.add_argument(
        "--retries", type=int, default=1, help="request retry attempts"
    )
    parser.add_argument(
        "--memory-entries",
        type=int,
        default=1024,
        help="read-through memory tier capacity",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--make-workload",
        metavar="FILE",
        help="write the benchmark workload and exit",
    )
    mode.add_argument(
        "--bench",
        metavar="FILE",
        help="replay a workload file (cold + warm) and report",
    )
    parser.add_argument(
        "--queries", type=int, default=20, help="distinct queries (--make-workload)"
    )
    parser.add_argument(
        "--duplicates",
        type=int,
        default=2,
        help="interleaved copies per query (--make-workload)",
    )
    parser.add_argument(
        "--replications",
        type=int,
        default=10,
        help="simulation runs per query (--make-workload)",
    )
    parser.add_argument(
        "--perf-json",
        metavar="FILE",
        help="with --bench: merge serve.bench.* medians into this ledger",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="with --bench: export the replay's spans as a Chrome trace",
    )
    return parser


# ----------------------------------------------------------------------
# stdio JSON-lines loop
# ----------------------------------------------------------------------
async def _serve_stdio(
    service: QueryService, stdin: TextIO, stdout: TextIO
) -> int:
    """Read requests line by line, answer concurrently, one JSON per line."""
    loop = asyncio.get_running_loop()
    tasks: set[asyncio.Task[None]] = set()
    lock = asyncio.Lock()

    async def _emit(doc: dict) -> None:
        async with lock:
            stdout.write(json.dumps(doc, sort_keys=True) + "\n")
            stdout.flush()

    async def _handle(seq: int, line: str) -> None:
        try:
            response = await service.query(line)
            response["seq"] = seq
        except ReproError as exc:
            response = {"seq": seq, "error": f"{type(exc).__name__}: {exc}"}
        await _emit(response)

    seq = 0
    while True:
        line = await loop.run_in_executor(None, stdin.readline)
        if not line:
            break
        if not line.strip():
            continue
        seq += 1
        task = loop.create_task(_handle(seq, line))
        tasks.add(task)
        task.add_done_callback(tasks.discard)
    if tasks:
        await asyncio.gather(*tasks)
    return 0


# ----------------------------------------------------------------------
# benchmark replay
# ----------------------------------------------------------------------
def _merge_perf(path: str, updates: dict[str, float]) -> None:
    """Merge medians into the ledger's ``current`` section in place."""
    ledger_path = Path(path)
    ledger: dict[str, Any] = {}
    if ledger_path.exists():
        ledger = json.loads(ledger_path.read_text())
    ledger.setdefault("current", {}).update(updates)
    ledger_path.write_text(json.dumps(ledger, indent=1, sort_keys=True) + "\n")


def _print_pass(name: str, report: dict) -> None:
    print(
        f"{name}: {report['requests']} requests in {report['total_s']:.3f}s | "
        f"p50 {report['p50_s'] * 1e3:.2f}ms p95 {report['p95_s'] * 1e3:.2f}ms | "
        f"{report['task_lookups']} lookups -> {report['tasks_served']} served "
        f"(coalescing {report['coalescing_ratio']:.2f}x, "
        f"{report['batches']} batches, {report['memory_hits']} memory hits)"
    )


async def _bench(service: QueryService, requests: list[dict]) -> tuple[dict, dict]:
    # Cold: open loop (all requests in flight), measures coalescing.
    cold = await replay(service, requests)
    # Warm: closed loop (back to back), measures per-query latency.
    warm = await replay(service, requests, concurrent=False)
    return cold, warm


def _cmd_bench(service: QueryService, args: argparse.Namespace) -> int:
    requests = load_workload(args.bench)

    async def _run() -> tuple[dict, dict]:
        async with service:
            return await _bench(service, requests)

    buffer: SpanBuffer | None = None
    if args.trace:
        buffer = SpanBuffer()
        with obs_spans.capture_spans(buffer):
            cold, warm = asyncio.run(_run())
    else:
        cold, warm = asyncio.run(_run())

    _print_pass("cold", cold)
    _print_pass("warm", warm)

    if buffer is not None:
        out = write_chrome_trace(buffer.spans, args.trace)
        print(f"trace: {len(buffer)} spans -> {out}")

    if args.perf_json:
        updates = {
            "serve.bench.cold_p50_s": cold["p50_s"],
            "serve.bench.cold_total_s": cold["total_s"],
            "serve.bench.cold_coalescing_ratio": cold["coalescing_ratio"],
            "serve.bench.warm_p50_s": warm["p50_s"],
            "serve.bench.warm_p95_s": warm["p95_s"],
        }
        _merge_perf(args.perf_json, updates)
        print(f"perf: merged {len(updates)} serve.bench.* keys -> {args.perf_json}")

    bad = cold["failures"] + warm["failures"] + cold["timeouts"] + warm["timeouts"]
    return 1 if bad else 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)

    if args.make_workload:
        requests = make_workload(
            args.queries,
            duplicates=args.duplicates,
            replications=args.replications,
        )
        out = save_workload(args.make_workload, requests)
        print(
            f"workload: {len(requests)} requests "
            f"({args.queries} distinct x {args.duplicates}) -> {out}"
        )
        return 0

    try:
        service = QueryService(
            args.store,
            workers=args.workers,
            timeout=args.timeout,
            retries=args.retries,
            memory_entries=args.memory_entries,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.bench:
        try:
            return _cmd_bench(service, args)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    async def _run_stdio() -> int:
        async with service:
            return await _serve_stdio(service, sys.stdin, sys.stdout)

    return asyncio.run(_run_stdio())


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
