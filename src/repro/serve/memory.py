"""The read-through in-memory tier: a bounded LRU in front of disk.

A serving process answers the same handful of hot ``(rho, p, seed)``
populations over and over; paying a disk read + JSON decode + checksum
per hit would dominate warm latency.  :class:`MemoryTier` keeps the
*unpacked* :class:`~repro.sim.results.RunResult` batches of the most
recently used keys in process memory, bounded by entry count;
:class:`ReadThroughStore` wraps any disk backend with it while
preserving the full store interface, so the scheduler, gc, and the
service all run unchanged on top.

Bit-identity: a memory hit returns the exact object graph the disk hit
produced (it was cached on the way out of ``unpack_result``), so warm
answers are the same bytes-for-bytes results as cold ones — pinned by
the serve test suite.  Consequently entries must be treated as
immutable by callers, which they are everywhere in this codebase
(results are frozen-by-convention dataclasses).

Hit/miss counters land in the :mod:`repro.obs.metrics` registry (when
enabled) under ``serve.memory.*``, following the hoisted-guard
convention.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from pathlib import Path
from typing import Iterator, Sequence

from repro.errors import ConfigurationError
from repro.obs import metrics as obs_metrics
from repro.sim.results import RunResult
from repro.store.backend import StoreBackend, open_store

__all__ = ["MemoryTier", "ReadThroughStore"]


class MemoryTier:
    """Bounded LRU map of store key -> unpacked result batch.

    Plain :class:`~collections.OrderedDict` LRU: a hit moves the key to
    the back, an insert past ``max_entries`` evicts the front.  Not
    thread-safe by itself; the service mutates it only from the event
    loop thread, and the scheduler (executor thread) goes through
    :class:`ReadThroughStore`, whose mutations are single dict ops —
    atomic under the GIL.
    """

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries <= 0:
            raise ConfigurationError(
                f"max_entries must be > 0, got {max_entries}"
            )
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, list[RunResult]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def peek(self, key: str) -> list[RunResult] | None:
        """A hit without counters or LRU movement (the service fast path)."""
        return self._entries.get(key)

    def get(self, key: str) -> list[RunResult] | None:
        batch = self._entries.get(key)
        reg = obs_metrics.registry()
        if batch is None:
            self.misses += 1
            if reg.enabled:
                reg.counter("serve.memory.misses").inc()
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        if reg.enabled:
            reg.counter("serve.memory.hits").inc()
        return batch

    def put(self, key: str, batch: list[RunResult]) -> None:
        self._entries[key] = batch
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def discard(self, key: str) -> None:
        self._entries.pop(key, None)

    def clear(self) -> None:
        self._entries.clear()

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MemoryTier({len(self._entries)}/{self.max_entries})"


class ReadThroughStore:
    """A store backend with a :class:`MemoryTier` in front of it.

    ``get`` consults memory first and populates it from disk on a miss;
    ``put`` writes through (disk first — crash safety never depends on
    the memory tier — then memory); ``delete`` drops both.  Everything
    else (``keys``, ``stats``, ``verify``, index and journal plumbing)
    delegates, so :func:`repro.store.scheduler.run_tasks` accepts a
    read-through store wherever it accepts a plain backend.

    One deliberate trade: a memory hit does not touch the disk entry's
    mtime, so gc's LRU clock sees hot-in-memory entries as idle.  A
    serving process that also runs aggressive gc should size
    ``max_bytes`` accordingly (or gc cold).
    """

    def __init__(
        self,
        backend: StoreBackend | str | os.PathLike[str],
        *,
        max_entries: int = 1024,
    ) -> None:
        if isinstance(backend, (str, os.PathLike)):
            backend = open_store(backend)
        self.backend: StoreBackend = backend
        self.memory = MemoryTier(max_entries)

    # ------------------------------------------------------------------
    # the read-through pair
    # ------------------------------------------------------------------
    def get(self, key: str, *, touch: bool = True) -> list[RunResult] | None:
        batch = self.memory.get(key)
        if batch is not None:
            return batch
        batch = self.backend.get(key, touch=touch)
        if batch is not None:
            self.memory.put(key, batch)
        return batch

    def put(self, key: str, results: Sequence[RunResult]) -> int:
        nbytes = self.backend.put(key, results)
        self.memory.put(key, list(results))
        return nbytes

    def delete(self, key: str) -> bool:
        self.memory.discard(key)
        return self.backend.delete(key)

    def __contains__(self, key: str) -> bool:
        return key in self.memory or key in self.backend

    # ------------------------------------------------------------------
    # delegation (the rest of the backend interface)
    # ------------------------------------------------------------------
    @property
    def root(self) -> Path:
        return self.backend.root

    @property
    def journals_dir(self) -> Path:
        return self.backend.journals_dir

    @property
    def objects_dirs(self) -> list[Path]:
        return self.backend.objects_dirs

    def path_for(self, key: str) -> Path:
        return self.backend.path_for(key)

    def keys(self) -> Iterator[str]:
        return self.backend.keys()

    def nbytes(self) -> int:
        return self.backend.nbytes()

    def stats(self) -> dict:
        stats = dict(self.backend.stats())
        stats["memory"] = self.memory.stats()
        return stats

    def verify(self) -> list[tuple[str, str]]:
        return self.backend.verify()

    def load_index(self) -> dict[str, dict]:
        return self.backend.load_index()

    def rebuild_index(self) -> dict[str, dict]:
        return self.backend.rebuild_index()

    def flush_index(self) -> None:
        self.backend.flush_index()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReadThroughStore({self.backend!r}, {self.memory!r})"
