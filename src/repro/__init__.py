"""repro — communication models for algorithm design in networked sensor systems.

A full reproduction of Yu, Hong & Prasanna (2005): the Collision Free /
Collision Aware link models (CFM/CAM), the analytical framework for
probability-based broadcasting under CAM (PB_CAM), optimal-probability
search for the paper's four performance metrics, and a slot-level
wireless broadcast simulator that validates the analysis.

Quick start::

    import repro

    cfg = repro.AnalysisConfig(n_rings=5, rho=100, slots=3)
    best = repro.optimal_probability(cfg, "reachability_at_latency", 5)
    print(best.p, best.value)            # optimal broadcast probability

    sim = repro.SimulationConfig(analysis=cfg)
    runs = repro.simulate_pb(sim, best.p, replications=30, seed=0)
    print(repro.aggregate_metric(runs, lambda r: r.reachability_after_phases(5)))

Subpackages
-----------
``repro.analysis``    the paper's analytical framework (Sec. 4)
``repro.collision``   slot-collision probability math (Eq. 2, App. A)
``repro.geometry``    circle/ring geometry (Eq. 1, Sec. 4.2.2)
``repro.models``      CFM/CAM channels, packets, cost models (Sec. 3)
``repro.network``     disk deployments and unit-disk topologies
``repro.protocols``   flooding, PB, and extension relay policies
``repro.des``         the discrete-event kernel
``repro.sim``         the two simulation engines and the runner
``repro.experiments`` per-figure reproduction drivers (Figs. 4-12)
"""

from repro._version import __version__
from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    InfeasibleConstraintError,
    ModelError,
    ProtocolError,
    ReproError,
    SimulationError,
)
from repro.analysis import (
    AnalysisConfig,
    BroadcastTrace,
    CarrierRingModel,
    DensityAwareCostModel,
    RingModel,
    TradeoffCurve,
    energy_at_reachability,
    flooding_cfm_summary,
    flooding_success_rate,
    flooding_trace,
    latency_at_reachability,
    optimal_probability,
    reachability_at_energy,
    reachability_at_latency,
    refined_flooding_summary,
    sweep_metric,
    tradeoff_curve,
)
from repro.collision import mu_exact, mu_poisson, mu_real
from repro.models import (
    CollisionAwareChannel,
    CollisionFreeChannel,
    CostModel,
    EnergyLedger,
    Packet,
    TdmaSchedule,
    run_tdma_flooding,
)
from repro.network import (
    DiskDeployment,
    Topology,
    connectivity_probability,
    deployment_stats,
)
from repro.protocols import (
    CounterBasedRelay,
    DistanceBasedRelay,
    NeighborKnowledgeRelay,
    ProbabilisticRelay,
    SimpleFlooding,
    run_convergecast,
)
from repro.sim import (
    AggregateResult,
    DesBroadcastSimulation,
    ReliableFloodingSimulation,
    RunResult,
    SimulationConfig,
    aggregate_metric,
    replicate,
    run_broadcast,
    simulate_pb,
)
from repro.experiments import ExperimentScale, FIGURES, generate_figure

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ConfigurationError",
    "ModelError",
    "ConvergenceError",
    "SimulationError",
    "ProtocolError",
    "InfeasibleConstraintError",
    # analysis
    "AnalysisConfig",
    "RingModel",
    "CarrierRingModel",
    "BroadcastTrace",
    "TradeoffCurve",
    "DensityAwareCostModel",
    "reachability_at_latency",
    "latency_at_reachability",
    "energy_at_reachability",
    "reachability_at_energy",
    "optimal_probability",
    "sweep_metric",
    "tradeoff_curve",
    "flooding_cfm_summary",
    "flooding_success_rate",
    "flooding_trace",
    "refined_flooding_summary",
    # collision math
    "mu_exact",
    "mu_real",
    "mu_poisson",
    # models
    "Packet",
    "CostModel",
    "EnergyLedger",
    "CollisionFreeChannel",
    "CollisionAwareChannel",
    "TdmaSchedule",
    "run_tdma_flooding",
    # network
    "DiskDeployment",
    "Topology",
    "deployment_stats",
    "connectivity_probability",
    # protocols
    "ProbabilisticRelay",
    "SimpleFlooding",
    "CounterBasedRelay",
    "DistanceBasedRelay",
    "NeighborKnowledgeRelay",
    "run_convergecast",
    # simulation
    "SimulationConfig",
    "RunResult",
    "AggregateResult",
    "aggregate_metric",
    "run_broadcast",
    "DesBroadcastSimulation",
    "ReliableFloodingSimulation",
    "replicate",
    "simulate_pb",
    # experiments
    "ExperimentScale",
    "FIGURES",
    "generate_figure",
]
