"""Render a deployment's sensor field as a character map."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive_int

__all__ = ["field_map"]


def field_map(
    deployment,
    informed: np.ndarray | None = None,
    *,
    width: int = 61,
    legend: bool = True,
) -> str:
    """Draw the field: source ``S``, informed ``#``, uninformed ``.``.

    Parameters
    ----------
    deployment:
        Any deployment with ``positions``, ``source`` and
        ``field_radius`` (disk or grid).
    informed:
        Optional boolean mask over nodes; without it every node draws
        as ``.``.  Cells holding several nodes show the 'most informed'
        glyph (S > # > .).
    width:
        Character columns; rows are halved to compensate for terminal
        cell aspect ratio.
    """
    width = check_positive_int("width", width, minimum=11)
    height = max(width // 2, 5)
    pos = np.asarray(deployment.positions, dtype=float)
    r = float(deployment.field_radius)
    if informed is not None:
        informed = np.asarray(informed, dtype=bool)
        if informed.shape != (pos.shape[0],):
            raise ValueError("informed mask must have one entry per node")

    grid = [[" "] * width for _ in range(height)]
    rank = np.zeros((height, width), dtype=int)  # 0 empty, 1 '.', 2 '#', 3 'S'
    for i, (x, y) in enumerate(pos):
        col = int(round((x + r) / (2 * r) * (width - 1)))
        row = int(round((1.0 - (y + r) / (2 * r)) * (height - 1)))
        col = min(max(col, 0), width - 1)
        row = min(max(row, 0), height - 1)
        if i == deployment.source:
            level = 3
        elif informed is not None and informed[i]:
            level = 2
        else:
            level = 1
        if level > rank[row][col]:
            rank[row][col] = level
            grid[row][col] = {1: ".", 2: "#", 3: "S"}[level]

    lines = ["".join(row) for row in grid]
    if legend:
        counted = (
            f"S source, # informed ({int(informed.sum())})"
            if informed is not None
            else "S source"
        )
        lines.append(f"[{counted}, . node; field radius {r:g}]")
    return "\n".join(lines)
