"""Sparklines and multi-series ASCII line charts."""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from repro.utils.validation import check_positive_int

__all__ = ["sparkline", "line_chart"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"
_SERIES_MARKS = "ox+*#@%&"


def sparkline(values: Sequence[float], *, lo: float | None = None, hi: float | None = None) -> str:
    """One-line unicode sparkline of a numeric series.

    NaNs render as spaces; a constant series renders at mid height.
    ``lo``/``hi`` pin the scale (useful when aligning several lines).
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return ""
    finite = arr[np.isfinite(arr)]
    if finite.size == 0:
        return " " * arr.size
    vmin = float(finite.min()) if lo is None else lo
    vmax = float(finite.max()) if hi is None else hi
    span = vmax - vmin
    out = []
    for v in arr:
        if not math.isfinite(v):
            out.append(" ")
            continue
        if span <= 0:
            out.append(_SPARK_LEVELS[len(_SPARK_LEVELS) // 2])
            continue
        frac = min(max((v - vmin) / span, 0.0), 1.0)
        out.append(_SPARK_LEVELS[int(round(frac * (len(_SPARK_LEVELS) - 1)))])
    return "".join(out)


def line_chart(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 64,
    height: int = 16,
    title: str | None = None,
    y_label: str = "",
) -> str:
    """Render named series against ``x`` as an ASCII scatter chart.

    Each series gets a marker character (legend below the plot); NaN
    points are skipped, matching how infeasible grid points appear as
    gaps in the paper's figures.
    """
    width = check_positive_int("width", width, minimum=8)
    height = check_positive_int("height", height, minimum=4)
    xs = np.asarray(list(x), dtype=float)
    if xs.size == 0 or not series:
        raise ValueError("need at least one x value and one series")

    all_y = np.concatenate([np.asarray(list(v), dtype=float) for v in series.values()])
    finite = all_y[np.isfinite(all_y)]
    if finite.size == 0:
        raise ValueError("all series values are NaN")
    ymin, ymax = float(finite.min()), float(finite.max())
    if ymax <= ymin:
        ymax = ymin + 1.0
    xmin, xmax = float(xs.min()), float(xs.max())
    if xmax <= xmin:
        xmax = xmin + 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, values) in enumerate(series.items()):
        mark = _SERIES_MARKS[idx % len(_SERIES_MARKS)]
        ys = np.asarray(list(values), dtype=float)
        if ys.shape != xs.shape:
            raise ValueError(f"series {name!r} length {ys.size} != x length {xs.size}")
        for xv, yv in zip(xs, ys, strict=True):
            if not math.isfinite(yv):
                continue
            col = int(round((xv - xmin) / (xmax - xmin) * (width - 1)))
            row = int(round((1.0 - (yv - ymin) / (ymax - ymin)) * (height - 1)))
            grid[row][col] = mark

    lines = []
    if title:
        lines.append(title)
    top_label = f"{ymax:.4g}"
    bottom_label = f"{ymin:.4g}"
    label_w = max(len(top_label), len(bottom_label), len(y_label))
    for r, row in enumerate(grid):
        if r == 0:
            label = top_label
        elif r == height - 1:
            label = bottom_label
        elif r == height // 2 and y_label:
            label = y_label
        else:
            label = ""
        lines.append(f"{label.rjust(label_w)} |{''.join(row)}")
    axis = " " * label_w + " +" + "-" * width
    lines.append(axis)
    x_left = f"{xmin:.4g}"
    x_right = f"{xmax:.4g}"
    pad = width - len(x_left) - len(x_right)
    lines.append(" " * (label_w + 2) + x_left + " " * max(pad, 1) + x_right)
    legend = "   ".join(
        f"{_SERIES_MARKS[i % len(_SERIES_MARKS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * (label_w + 2) + legend)
    return "\n".join(lines)
