"""Ring-by-phase heatmap of a broadcast trace."""

from __future__ import annotations

import numpy as np

from repro.analysis.trace import BroadcastTrace

__all__ = ["wave_heatmap"]

_SHADES = " ░▒▓█"


def wave_heatmap(trace: BroadcastTrace, *, normalize: str = "ring") -> str:
    """Visualize the broadcast wave: rows = rings, columns = phases.

    Cell intensity is the expected newly informed count, normalized
    per ring (``normalize="ring"``, default — shows *when* each ring
    fills, the wavefront) or globally (``normalize="global"`` — shows
    *where* the mass is).
    """
    if normalize not in ("ring", "global"):
        raise ValueError(f"unknown normalize mode {normalize!r}")
    data = trace.new_by_phase_ring.T  # (rings, phases)
    n_rings, phases = data.shape
    if normalize == "ring":
        denom = data.max(axis=1, keepdims=True)
    else:
        denom = np.full((n_rings, 1), data.max())
    denom = np.where(denom > 0, denom, 1.0)
    scaled = data / denom

    lines = [
        f"broadcast wave (p={trace.p:g}, rho={trace.config.rho:g}): "
        f"rows=rings 1..{n_rings}, cols=phases 1..{phases}"
    ]
    for j in range(n_rings):
        cells = "".join(
            _SHADES[min(int(v * (len(_SHADES) - 1) + 0.999), len(_SHADES) - 1)]
            if v > 0
            else _SHADES[0]
            for v in scaled[j]
        )
        lines.append(f"ring {j + 1} |{cells}|")
    reach = trace.final_reachability
    lines.append(f"reachability {reach:.3f}, broadcasts {trace.broadcasts_total:.1f}")
    return "\n".join(lines)
