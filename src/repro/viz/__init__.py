"""Terminal visualization: sparklines, line charts, field maps, heatmaps.

Plots render to plain strings (unicode block characters), so results
can be inspected in any terminal or log file — this library targets
offline/cluster environments where matplotlib may be unavailable.
"""

from repro.viz.charts import line_chart, sparkline
from repro.viz.field import field_map
from repro.viz.heatmap import wave_heatmap

__all__ = ["sparkline", "line_chart", "field_map", "wave_heatmap"]
