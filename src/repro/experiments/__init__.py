"""Reproduction drivers for every evaluation figure in the paper.

Each figure has a generator function in
:mod:`repro.experiments.figures`, registered in
:data:`repro.experiments.figures.FIGURES`; all share the parameter sets
of :mod:`repro.experiments.params` (the paper's Sec. 4.2.3/Sec. 5
settings) and return :class:`~repro.experiments.report.FigureResult`
objects that render to the text tables the benchmark harness prints.

Run everything from the command line::

    repro-figures --scale quick          # minutes, coarse grids
    repro-figures --scale full           # the paper's grids
    repro-figures --figures fig4b,fig12  # a subset
"""

from repro.experiments.params import ExperimentScale, PaperParams
from repro.experiments.report import FigureResult
from repro.experiments.figures import FIGURES, generate_figure
from repro.experiments.io import (
    figure_to_csv,
    load_figure,
    load_figures,
    save_figure,
    save_figures,
)

__all__ = [
    "ExperimentScale",
    "PaperParams",
    "FigureResult",
    "FIGURES",
    "generate_figure",
    "figure_to_csv",
    "save_figure",
    "load_figure",
    "save_figures",
    "load_figures",
]
