"""Command-line driver: regenerate the paper's evaluation figures.

Installed as the ``repro-figures`` console script::

    repro-figures --scale quick                 # every figure, coarse grids
    repro-figures --scale full --workers 8      # the paper's grids
    repro-figures --figures fig4b,fig12         # a subset
    repro-figures --markdown -o results.md      # EXPERIMENTS.md-style output
"""

from __future__ import annotations

import argparse
import sys
import time
import traceback

from repro.experiments.figures import FIGURES, generate_figure
from repro.experiments.params import ExperimentScale
from repro.obs import progress as obs_progress
from repro.obs import provenance as obs_provenance

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-figures",
        description="Regenerate the evaluation figures of Yu/Hong/Prasanna 2005.",
    )
    parser.add_argument(
        "--scale",
        choices=("quick", "full"),
        default="quick",
        help="grid resolution: 'quick' for minutes, 'full' for the paper's grids",
    )
    parser.add_argument(
        "--figures",
        default="all",
        help="comma-separated figure names (default: all); see --list",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available figures and exit"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="processes for simulation replication (default: cores-1)",
    )
    parser.add_argument(
        "--markdown", action="store_true", help="emit markdown sections"
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="append an ASCII chart of each figure's series",
    )
    parser.add_argument(
        "--save-json",
        default=None,
        metavar="DIR",
        help="also save each figure as JSON into DIR (plus a provenance manifest)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print per-sweep progress/ETA lines to stderr",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="result-store directory: serve cached simulation tasks, persist "
        "fresh ones (see `python -m repro.store`)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="with --store: resume an interrupted sweep from its journal",
    )
    parser.add_argument(
        "--block-size",
        type=int,
        default=None,
        help="replications per dispatched simulation block "
        "(default: engine heuristic; results are identical at any blocking)",
    )
    parser.add_argument(
        "-o", "--output", default=None, help="write to a file instead of stdout"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.list:
        print("\n".join(sorted(FIGURES)))
        return 0

    if args.resume and args.store is None:
        print("--resume requires --store", file=sys.stderr)
        return 2
    factory = ExperimentScale.full if args.scale == "full" else ExperimentScale.quick
    scale = factory(
        workers=args.workers,
        progress=args.progress,
        store=args.store,
        resume=args.resume,
        block_size=args.block_size,
    )

    if args.figures == "all":
        names = list(FIGURES)
    else:
        names = [n.strip() for n in args.figures.split(",") if n.strip()]
        unknown = [n for n in names if n not in FIGURES]
        if unknown:
            print(f"unknown figures: {', '.join(unknown)}", file=sys.stderr)
            return 2

    started = obs_provenance.start_clock()
    sections: list[str] = []
    saved: list = []
    failures: list[tuple[str, str]] = []
    for i, name in enumerate(names, start=1):
        obs_progress.stage(i, len(names), name)
        start = time.perf_counter()
        try:
            result = generate_figure(name, scale)
        except Exception as exc:
            # One broken figure must not silence the rest of the battery;
            # collect it and report a non-zero exit at the end.
            traceback.print_exc(file=sys.stderr)
            obs_progress.stage(i, len(names), name, error=f"{type(exc).__name__}: {exc}")
            failures.append((name, f"{type(exc).__name__}: {exc}"))
            continue
        elapsed = time.perf_counter() - start
        obs_progress.stage(i, len(names), name, elapsed=elapsed)
        body = result.to_markdown() if args.markdown else result.to_text()
        if args.chart:
            from repro.viz import line_chart

            try:
                chart = line_chart(
                    list(result.x_values),
                    {k: list(v) for k, v in result.series.items()},
                    title=f"{result.figure} ({result.x_name} axis)",
                )
                body = f"{body}\n\n{chart}"
            except ValueError:
                pass  # nothing chartable (e.g. all-NaN series)
        if args.save_json:
            saved.append(result)
        sections.append(f"{body}\n[{name}: {elapsed:.1f}s at scale={scale.name}]")

    if args.save_json and saved:
        from repro.experiments.io import save_figures

        paths = save_figures(saved, args.save_json)
        obs_provenance.write_manifest(
            args.save_json,
            "experiments.runall",
            seed=scale.seed,
            params={
                "scale": scale.name,
                "figures": [r.figure for r in saved],
                "failed": [n for n, _ in failures],
                "replications": scale.replications,
                "rho_grid": list(scale.rho_grid),
                "store": scale.store,
            },
            started=started,
        )
        sections.append(f"[saved {len(paths)} JSON figures to {args.save_json}]")

    text = "\n\n".join(sections) + "\n" if sections else ""
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    if failures:
        summary = "; ".join(f"{n}: {err}" for n, err in failures)
        print(
            f"error: {len(failures)}/{len(names)} figure(s) failed — {summary}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
