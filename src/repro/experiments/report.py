"""Figure results as structured data + plain-text rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.utils.tables import format_mapping, format_series

__all__ = ["FigureResult"]


@dataclass(frozen=True)
class FigureResult:
    """One reproduced figure: an x-axis, named series, and headline notes.

    Attributes
    ----------
    figure:
        Registry key, e.g. ``"fig4b"``.
    title:
        Human-readable description matching the paper's caption.
    x_name / x_values:
        The independent variable (``p`` for the (a)-panels, ``rho`` for
        the (b)-panels).
    series:
        Named y-series aligned with ``x_values`` (NaN = infeasible or
        omitted, exactly like gaps in the paper's plots).
    notes:
        Headline scalars (optimal probabilities, plateau levels, paper
        reference values) — what EXPERIMENTS.md quotes.
    """

    figure: str
    title: str
    x_name: str
    x_values: Sequence[float]
    series: Mapping[str, Sequence[float]] = field(default_factory=dict)
    notes: Mapping[str, object] = field(default_factory=dict)

    def to_text(self, *, precision: int = 4) -> str:
        """Render as the aligned text table the harness prints."""
        parts = [
            format_series(
                self.x_name,
                list(self.x_values),
                {k: list(v) for k, v in self.series.items()},
                precision=precision,
                title=f"{self.figure}: {self.title}",
            )
        ]
        if self.notes:
            parts.append(format_mapping(dict(self.notes), precision=precision, title="notes"))
        return "\n\n".join(parts)

    def to_markdown(self, *, precision: int = 4) -> str:
        """Render as a fenced-code markdown section for EXPERIMENTS.md."""
        return f"### {self.figure}\n\n{self.title}\n\n```\n{self.to_text(precision=precision)}\n```\n"

    def series_array(self, name: str) -> np.ndarray:
        """One named series as a float array."""
        return np.asarray(list(self.series[name]), dtype=float)
