"""Generators for every evaluation figure (Figs. 4–12).

Analysis figures (4–7, 12) come from the ring model; simulation figures
(8–11) from Monte-Carlo runs of the vectorized engine.  Figures sharing
raw data share it here too: one analytical sweep per density feeds all
of Figs. 4–7, and one simulation grid feeds all of Figs. 8–11 (runs go
to quiescence once and every metric is post-processed from the same
traces), so regenerating the full evaluation costs one sweep + one
grid.

The optimal-``p`` panels (4b–7b, 12) ride :mod:`repro.optimize`: when a
dense analytical sweep is already cached (the a-panel ran first) the
optimum is read straight off it, otherwise the adaptive frontier search
probes only the rungs it needs — the hillclimb's lowest-``p`` tie-break
reproduces the dense grid's first-index ``argmax``/``argmin`` exactly,
so both paths return the same point (pinned by tests).

Every generator takes an :class:`~repro.experiments.params.ExperimentScale`
and returns a :class:`~repro.experiments.report.FigureResult`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.analysis.flooding import flooding_success_rate
from repro.analysis.ring_model import RingModel
from repro.analysis.trace import BroadcastTrace
from repro.errors import InfeasibleConstraintError
from repro.experiments.params import ExperimentScale, PaperParams
from repro.experiments.report import FigureResult
from repro.optimize.search import search_frontier
from repro.optimize.spec import OptimizeQuery, better, evaluate_trace
from repro.optimize.surrogate import SurrogateModel
from repro.sim.results import RunResult, aggregate_metric
from repro.sim.runner import sweep_grid

__all__ = ["FIGURES", "generate_figure", "analysis_sweep", "simulation_grid"]

# ----------------------------------------------------------------------
# shared raw data, cached per (scale, rho)
# ----------------------------------------------------------------------
_ANALYSIS_CACHE: dict[tuple, dict[str, np.ndarray]] = {}
_SIM_CACHE: dict[tuple, dict[float, list[RunResult]]] = {}
_SURROGATE_CACHE: dict[tuple, SurrogateModel] = {}
_OPTIMUM_CACHE: dict[tuple, dict[str, float]] = {}


def _scale_key(scale: ExperimentScale) -> tuple:
    return (
        scale.name,
        scale.rho_grid,
        scale.analysis_p_step,
        scale.sim_p_step,
        scale.replications,
        scale.seed,
    )


def analysis_sweep(scale: ExperimentScale, rho: float) -> dict[str, np.ndarray]:
    """All four analytic metrics over the probability grid at one density.

    Returns arrays keyed ``"p"``, ``"reach_at_latency"``,
    ``"latency_at_reach"``, ``"energy_at_reach"``, ``"reach_at_energy"``
    (NaN where infeasible).  One quiescent ring-model run per grid point
    supplies every metric.
    """
    key = (_scale_key(scale), float(rho))
    if key in _ANALYSIS_CACHE:
        return _ANALYSIS_CACHE[key]
    model = RingModel(scale.analysis_config(rho))
    grid = scale.analysis_p_grid
    out = {
        "p": grid,
        "reach_at_latency": np.empty(grid.size),
        "latency_at_reach": np.empty(grid.size),
        "energy_at_reach": np.empty(grid.size),
        "reach_at_energy": np.empty(grid.size),
    }
    # One batched recursion covers the whole probability grid; each
    # quiescent trace then yields all four metrics.
    for i, trace in enumerate(model.run_batch(grid, max_phases=200)):
        out["reach_at_latency"][i] = trace.reachability_after(
            PaperParams.LATENCY_BUDGET_PHASES
        )
        try:
            out["latency_at_reach"][i] = trace.latency_to(
                PaperParams.ANALYSIS_REACH_TARGET
            )
            out["energy_at_reach"][i] = trace.broadcasts_to(
                PaperParams.ANALYSIS_REACH_TARGET
            )
        except InfeasibleConstraintError:
            out["latency_at_reach"][i] = np.nan
            out["energy_at_reach"][i] = np.nan
        out["reach_at_energy"][i] = trace.reachability_within_energy(
            PaperParams.ANALYSIS_ENERGY_BUDGET
        )
    _ANALYSIS_CACHE[key] = out
    return out


def simulation_grid(scale: ExperimentScale, rho: float) -> dict[float, list[RunResult]]:
    """Replicated quiescent simulations over the probability grid at ``rho``."""
    key = (_scale_key(scale), float(rho))
    if key in _SIM_CACHE:
        return _SIM_CACHE[key]
    # On a miss, sweep every density of the scale through one pooled
    # call: the simulation figures all need the full grid anyway, and
    # sweep_grid keeps a single process pool alive across it.  The
    # per-point seed (scale.seed, int(rho), p_index) is the same one the
    # per-point simulate_pb calls used — stable under sweep order, so
    # cached figure data is reproduced run-for-run.
    rhos = list(scale.rho_grid)
    if float(rho) not in (float(r) for r in rhos):
        rhos = [rho]
    results = sweep_grid(
        scale.simulation_config,
        rhos,
        scale.sim_p_grid,
        scale.replications,
        seed=scale.seed,
        workers=scale.workers,
        point_seed=lambda r, i: (scale.seed, int(r), i),
        progress=scale.progress,
        store=scale.store,
        resume=scale.resume,
        block_size=scale.block_size,
    )
    for r in rhos:
        grid = {
            float(p): results[(float(r), float(p))] for p in scale.sim_p_grid
        }
        _SIM_CACHE[(_scale_key(scale), float(r))] = grid
    return _SIM_CACHE[key]


def clear_caches() -> None:
    """Drop cached sweeps/grids (mainly for benchmark isolation)."""
    _ANALYSIS_CACHE.clear()
    _SIM_CACHE.clear()
    _SURROGATE_CACHE.clear()
    _OPTIMUM_CACHE.clear()


# ----------------------------------------------------------------------
# analysis figures
# ----------------------------------------------------------------------
def _per_rho_series(
    scale: ExperimentScale, metric_key: str
) -> tuple[np.ndarray, dict[str, np.ndarray]]:
    grid = scale.analysis_p_grid
    series = {}
    for rho in scale.rho_grid:
        series[f"rho={rho}"] = analysis_sweep(scale, rho)[metric_key]
    return grid, series


def _optimum(values: np.ndarray, sense: str) -> int | None:
    """Index of the best finite value, or ``None`` when there is none.

    Non-finite entries (NaN infeasible points, inf overflow) never win,
    and exact ties resolve to the first index — the lowest ``p`` — which
    is the convention the adaptive search's tie-break mirrors.
    """
    values = np.asarray(values, dtype=float)
    finite = np.isfinite(values)
    if not finite.any():
        return None
    if sense == "max":
        return int(np.argmax(np.where(finite, values, -np.inf)))
    return int(np.argmin(np.where(finite, values, np.inf)))


#: The four metric sweeps of Figs. 4–7 as optimizer queries: metric key
#: to (query, Evaluation attribute carrying the value, optimal sense).
_METRIC_QUERIES: dict[str, tuple[OptimizeQuery, str, str]] = {
    "reach_at_latency": (
        OptimizeQuery(
            bounds={"latency": PaperParams.LATENCY_BUDGET_PHASES},
            objectives=("reachability",),
        ),
        "reachability",
        "max",
    ),
    "latency_at_reach": (
        OptimizeQuery(
            bounds={"reachability": PaperParams.ANALYSIS_REACH_TARGET},
            objectives=("latency",),
        ),
        "latency",
        "min",
    ),
    "energy_at_reach": (
        OptimizeQuery(
            bounds={"reachability": PaperParams.ANALYSIS_REACH_TARGET},
            objectives=("energy",),
        ),
        "energy",
        "min",
    ),
    "reach_at_energy": (
        OptimizeQuery(
            bounds={"energy": PaperParams.ANALYSIS_ENERGY_BUDGET},
            objectives=("reachability",),
        ),
        "reachability",
        "max",
    ),
}


def _trace_metric(trace: BroadcastTrace, metric_key: str) -> float:
    """One analytic metric off a quiescent trace (NaN when infeasible).

    Bit-identical to the corresponding :func:`analysis_sweep` array
    entry: the optimizer's stopping rule reproduces the trace methods
    the sweep calls directly.
    """
    query, attr, _ = _METRIC_QUERIES[metric_key]
    ev = evaluate_trace(trace, query)
    return float(getattr(ev, attr)) if ev.feasible else float("nan")


def _surrogate(scale: ExperimentScale, rho: float) -> SurrogateModel:
    key = (_scale_key(scale), float(rho))
    model = _SURROGATE_CACHE.get(key)
    if model is None:
        model = _SURROGATE_CACHE[key] = SurrogateModel(
            scale.analysis_config(rho), max_phases=200
        )
    return model


def _optimal_point(
    scale: ExperimentScale, rho: float, metric_key: str
) -> dict[str, float]:
    """The optimal-``p`` point of one metric sweep at one density.

    Returns ``p`` (NaN when no feasible probability exists), all four
    metric values at that ``p``, and the flooding (``p = 1``) values as
    ``flooding_<metric>``.  Reads the dense sweep when it is cached (the
    a-panel already paid for it); otherwise runs the adaptive frontier
    search, probing only the rungs the hillclimb visits.  Both paths
    return the same point: the search's lowest-``p`` tie-break matches
    the dense grid's first-index convention (pinned by tests).
    """
    key = (_scale_key(scale), float(rho), metric_key)
    if key in _OPTIMUM_CACHE:
        return _OPTIMUM_CACHE[key]
    grid = scale.analysis_p_grid
    query, _attr, sense = _METRIC_QUERIES[metric_key]
    point: dict[str, float] = {}
    dense = _ANALYSIS_CACHE.get((_scale_key(scale), float(rho)))
    if dense is not None:
        i = _optimum(dense[metric_key], sense)
        point["p"] = float(grid[i]) if i is not None else float("nan")
        for mk in _METRIC_QUERIES:
            point[mk] = float(dense[mk][i]) if i is not None else float("nan")
            point[f"flooding_{mk}"] = float(dense[mk][-1])
    else:
        model = _surrogate(scale, rho)
        outcome = search_frontier(
            lambda rungs: model.evaluate(query, [float(grid[r]) for r in rungs]),
            grid,
            query,
            None,
            restarts=0,
        )
        best: int | None = None
        for rung in sorted(outcome.evaluations):
            ev = outcome.evaluations[rung]
            if not ev.feasible:
                continue
            if best is None or better(ev, outcome.evaluations[best], query):
                best = rung
        if best is None:
            point["p"] = float("nan")
            for mk in _METRIC_QUERIES:
                point[mk] = float("nan")
        else:
            point["p"] = float(grid[best])
            trace = model.trace(float(grid[best]))
            for mk in _METRIC_QUERIES:
                point[mk] = _trace_metric(trace, mk)
        flood = model.trace(float(grid[-1]))
        for mk in _METRIC_QUERIES:
            point[f"flooding_{mk}"] = _trace_metric(flood, mk)
    _OPTIMUM_CACHE[key] = point
    return point


def fig4a(scale: ExperimentScale) -> FigureResult:
    """Fig. 4(a): analytic reachability within 5 phases vs ``(rho, p)``."""
    grid, series = _per_rho_series(scale, "reach_at_latency")
    return FigureResult(
        figure="fig4a",
        title="Reachability of PB_CAM in 5 time phases (analysis)",
        x_name="p",
        x_values=grid,
        series=series,
        notes={"latency_budget_phases": PaperParams.LATENCY_BUDGET_PHASES},
    )


def fig4b(scale: ExperimentScale) -> FigureResult:
    """Fig. 4(b): optimal ``p`` and achieved reachability vs ``rho``."""
    opt_p, opt_reach, flood_reach = [], [], []
    for rho in scale.rho_grid:
        pt = _optimal_point(scale, rho, "reach_at_latency")
        opt_p.append(pt["p"])
        opt_reach.append(pt["reach_at_latency"])
        flood_reach.append(pt["flooding_reach_at_latency"])  # p = 1 floods in CAM
    notes = {
        "plateau_mean_reachability": float(np.nanmean(opt_reach)),
        "flooding_over_optimal_at_max_rho": float(flood_reach[-1] / opt_reach[-1]),
        "paper_plateau": 0.72,
        "paper_flooding_over_optimal_at_rho140": 0.55,
    }
    return FigureResult(
        figure="fig4b",
        title="Optimal probability for max reachability in 5 phases (analysis)",
        x_name="rho",
        x_values=list(scale.rho_grid),
        series={
            "optimal_p": np.array(opt_p),
            "reachability": np.array(opt_reach),
            "flooding_reachability": np.array(flood_reach),
        },
        notes=notes,
    )


def fig5a(scale: ExperimentScale) -> FigureResult:
    """Fig. 5(a): analytic latency (phases) for 72% reachability."""
    grid, series = _per_rho_series(scale, "latency_at_reach")
    return FigureResult(
        figure="fig5a",
        title="Latency of PB_CAM for 72% reachability (analysis; NaN = infeasible)",
        x_name="p",
        x_values=grid,
        series=series,
        notes={"reach_target": PaperParams.ANALYSIS_REACH_TARGET},
    )


def fig5b(scale: ExperimentScale) -> FigureResult:
    """Fig. 5(b): optimal ``p`` minimizing latency for 72% reachability."""
    opt_p, opt_latency, flood_latency = [], [], []
    for rho in scale.rho_grid:
        pt = _optimal_point(scale, rho, "latency_at_reach")
        opt_p.append(pt["p"])
        opt_latency.append(pt["latency_at_reach"])
        flood_latency.append(pt["flooding_latency_at_reach"])
    return FigureResult(
        figure="fig5b",
        title="Optimal probability for min latency at 72% reachability (analysis)",
        x_name="rho",
        x_values=list(scale.rho_grid),
        series={
            "optimal_p": np.array(opt_p),
            "latency_phases": np.array(opt_latency),
            "flooding_latency_phases": np.array(flood_latency),
        },
        notes={
            "paper_claim": "optimal p identical to fig4b; ~5 phases flat",
            "max_optimal_latency": float(np.nanmax(opt_latency)),
        },
    )


def fig6a(scale: ExperimentScale) -> FigureResult:
    """Fig. 6(a): analytic broadcast count for 72% reachability."""
    grid, series = _per_rho_series(scale, "energy_at_reach")
    return FigureResult(
        figure="fig6a",
        title="Broadcasts of PB_CAM for 72% reachability (analysis; NaN = infeasible)",
        x_name="p",
        x_values=grid,
        series=series,
        notes={"reach_target": PaperParams.ANALYSIS_REACH_TARGET},
    )


def fig6b(scale: ExperimentScale) -> FigureResult:
    """Fig. 6(b): optimal ``p`` minimizing broadcasts for 72% reachability."""
    opt_p, opt_m, opt_latency = [], [], []
    for rho in scale.rho_grid:
        pt = _optimal_point(scale, rho, "energy_at_reach")
        opt_p.append(pt["p"])
        opt_m.append(pt["energy_at_reach"])
        opt_latency.append(pt["latency_at_reach"])
    return FigureResult(
        figure="fig6b",
        title="Optimal probability for min broadcasts at 72% reachability (analysis)",
        x_name="rho",
        x_values=list(scale.rho_grid),
        series={
            "optimal_p": np.array(opt_p),
            "broadcasts": np.array(opt_m),
            "latency_at_optimum": np.array(opt_latency),
        },
        notes={
            "max_optimal_p": float(np.nanmax(opt_p)),
            "paper_claim_p_band": "(0, 0.1]",
            "max_broadcasts": float(np.nanmax(opt_m)),
            "paper_claim_broadcasts": "within ~40",
            "latency_range_at_optimum": (
                float(np.nanmin(opt_latency)),
                float(np.nanmax(opt_latency)),
            ),
            "paper_claim_latency_range": "7 to 15 phases",
        },
    )


def fig7a(scale: ExperimentScale) -> FigureResult:
    """Fig. 7(a): analytic reachability with at most 35 broadcasts."""
    grid, series = _per_rho_series(scale, "reach_at_energy")
    return FigureResult(
        figure="fig7a",
        title="Reachability of PB_CAM using <= 35 broadcasts (analysis)",
        x_name="p",
        x_values=grid,
        series=series,
        notes={"energy_budget": PaperParams.ANALYSIS_ENERGY_BUDGET},
    )


def fig7b(scale: ExperimentScale) -> FigureResult:
    """Fig. 7(b): optimal ``p`` maximizing reachability within 35 broadcasts."""
    opt_p, opt_reach, flood_reach = [], [], []
    for rho in scale.rho_grid:
        pt = _optimal_point(scale, rho, "reach_at_energy")
        opt_p.append(pt["p"])
        opt_reach.append(pt["reach_at_energy"])
        flood_reach.append(pt["flooding_reach_at_energy"])
    return FigureResult(
        figure="fig7b",
        title="Optimal probability for max reachability within 35 broadcasts (analysis)",
        x_name="rho",
        x_values=list(scale.rho_grid),
        series={
            "optimal_p": np.array(opt_p),
            "reachability": np.array(opt_reach),
            "flooding_reachability": np.array(flood_reach),
        },
        notes={
            "max_optimal_p": float(np.nanmax(opt_p)),
            "mean_optimal_reachability": float(np.nanmean(opt_reach)),
            "paper_claim": "optimal p close to fig6b; reach ~0.70; flooding < 0.20",
            "max_flooding_reachability": float(np.nanmax(flood_reach)),
        },
    )


# ----------------------------------------------------------------------
# simulation figures
# ----------------------------------------------------------------------
def _sim_metric_series(
    scale: ExperimentScale, metric: Callable[[RunResult], float], name: str
) -> tuple[np.ndarray, dict[str, np.ndarray]]:
    grid = scale.sim_p_grid
    series = {}
    for rho in scale.rho_grid:
        runs_by_p = simulation_grid(scale, rho)
        means = np.empty(grid.size)
        for i, p in enumerate(grid):
            agg = aggregate_metric(runs_by_p[float(p)], metric, name=name)
            means[i] = agg.mean
        series[f"rho={rho}"] = means
    return grid, series


def _sim_figure_pair(
    scale: ExperimentScale,
    metric: Callable[[RunResult], float],
    sense: str,
    fig: str,
    title: str,
    value_name: str,
    extra_notes: dict | None = None,
) -> tuple[FigureResult, FigureResult]:
    grid, series = _sim_metric_series(scale, metric, value_name)
    panel_a = FigureResult(
        figure=f"{fig}a",
        title=f"{title} — sweep",
        x_name="p",
        x_values=grid,
        series=series,
        notes=extra_notes or {},
    )
    opt_p, opt_v = [], []
    for rho in scale.rho_grid:
        sweep = series[f"rho={rho}"]
        i = _optimum(sweep, sense)
        opt_p.append(grid[i] if i is not None else np.nan)
        opt_v.append(sweep[i] if i is not None else np.nan)
    panel_b = FigureResult(
        figure=f"{fig}b",
        title=f"{title} — optimal probability",
        x_name="rho",
        x_values=list(scale.rho_grid),
        series={"optimal_p": np.array(opt_p), value_name: np.array(opt_v)},
        notes=extra_notes or {},
    )
    return panel_a, panel_b


def fig8a(scale: ExperimentScale) -> FigureResult:
    """Fig. 8(a): simulated reachability within 5 phases."""
    return _sim_figure_pair(
        scale,
        lambda r: r.reachability_after_phases(PaperParams.LATENCY_BUDGET_PHASES),
        "max",
        "fig8",
        "Simulated reachability of PB_CAM in 5 time phases",
        "reachability",
        {"paper_plateau": 0.63},
    )[0]


def fig8b(scale: ExperimentScale) -> FigureResult:
    """Fig. 8(b): simulated optimal ``p`` for reachability in 5 phases."""
    return _sim_figure_pair(
        scale,
        lambda r: r.reachability_after_phases(PaperParams.LATENCY_BUDGET_PHASES),
        "max",
        "fig8",
        "Simulated reachability of PB_CAM in 5 time phases",
        "reachability",
        {"paper_plateau": 0.63},
    )[1]


def fig9a(scale: ExperimentScale) -> FigureResult:
    """Fig. 9(a): simulated latency for 63% reachability."""
    return _sim_figure_pair(
        scale,
        lambda r: r.latency_phases_to(PaperParams.SIM_REACH_TARGET),
        "min",
        "fig9",
        "Simulated latency of PB_CAM for 63% reachability",
        "latency_phases",
        {"paper_optimal_latency": 5.0},
    )[0]


def fig9b(scale: ExperimentScale) -> FigureResult:
    """Fig. 9(b): simulated optimal ``p`` minimizing that latency."""
    return _sim_figure_pair(
        scale,
        lambda r: r.latency_phases_to(PaperParams.SIM_REACH_TARGET),
        "min",
        "fig9",
        "Simulated latency of PB_CAM for 63% reachability",
        "latency_phases",
        {"paper_optimal_latency": 5.0},
    )[1]


def fig10a(scale: ExperimentScale) -> FigureResult:
    """Fig. 10(a): simulated broadcasts for 63% reachability."""
    return _sim_figure_pair(
        scale,
        lambda r: r.broadcasts_to(PaperParams.SIM_REACH_TARGET),
        "min",
        "fig10",
        "Simulated broadcasts of PB_CAM for 63% reachability",
        "broadcasts",
        {"paper_optimal_broadcasts": 80.0, "paper_optimal_p_band": "<= 0.2"},
    )[0]


def fig10b(scale: ExperimentScale) -> FigureResult:
    """Fig. 10(b): simulated optimal ``p`` minimizing broadcast count."""
    return _sim_figure_pair(
        scale,
        lambda r: r.broadcasts_to(PaperParams.SIM_REACH_TARGET),
        "min",
        "fig10",
        "Simulated broadcasts of PB_CAM for 63% reachability",
        "broadcasts",
        {"paper_optimal_broadcasts": 80.0, "paper_optimal_p_band": "<= 0.2"},
    )[1]


def fig11a(scale: ExperimentScale) -> FigureResult:
    """Fig. 11(a): simulated reachability using at most 80 broadcasts."""
    return _sim_figure_pair(
        scale,
        lambda r: r.reachability_within_budget(PaperParams.SIM_ENERGY_BUDGET),
        "max",
        "fig11",
        "Simulated reachability of PB_CAM using <= 80 broadcasts",
        "reachability",
        {"paper_optimal_p_band": "<= 0.2"},
    )[0]


def fig11b(scale: ExperimentScale) -> FigureResult:
    """Fig. 11(b): simulated optimal ``p`` within the 80-broadcast budget."""
    return _sim_figure_pair(
        scale,
        lambda r: r.reachability_within_budget(PaperParams.SIM_ENERGY_BUDGET),
        "max",
        "fig11",
        "Simulated reachability of PB_CAM using <= 80 broadcasts",
        "reachability",
        {"paper_optimal_p_band": "<= 0.2"},
    )[1]


# ----------------------------------------------------------------------
# figure 12
# ----------------------------------------------------------------------
def fig12(scale: ExperimentScale) -> FigureResult:
    """Fig. 12: flooding success rate vs the optimal ``p`` of Fig. 4(b).

    The paper observes their ratio is nearly constant (~11) across
    densities, suggesting the optimal probability can be set from the
    locally observable success rate without knowing the density.
    """
    opt_p, rate, ratio = [], [], []
    for rho in scale.rho_grid:
        p_star = _optimal_point(scale, rho, "reach_at_latency")["p"]
        sr = flooding_success_rate(scale.analysis_config(rho))
        opt_p.append(p_star)
        rate.append(sr.rate)
        ratio.append(p_star / sr.rate)
    return FigureResult(
        figure="fig12",
        title="Flooding success rate vs optimal probability (analysis)",
        x_name="rho",
        x_values=list(scale.rho_grid),
        series={
            "optimal_p": np.array(opt_p),
            "flooding_success_rate": np.array(rate),
            "ratio": np.array(ratio),
        },
        notes={
            "ratio_mean": float(np.nanmean(ratio)),
            "ratio_spread": float(np.nanmax(ratio) - np.nanmin(ratio)),
            "paper_ratio": PaperParams.FIG12_RATIO,
            "receivers_convention": "uninformed (see EXPERIMENTS.md)",
        },
    )


# ----------------------------------------------------------------------
FIGURES: dict[str, Callable[[ExperimentScale], FigureResult]] = {
    "fig4a": fig4a,
    "fig4b": fig4b,
    "fig5a": fig5a,
    "fig5b": fig5b,
    "fig6a": fig6a,
    "fig6b": fig6b,
    "fig7a": fig7a,
    "fig7b": fig7b,
    "fig8a": fig8a,
    "fig8b": fig8b,
    "fig9a": fig9a,
    "fig9b": fig9b,
    "fig10a": fig10a,
    "fig10b": fig10b,
    "fig11a": fig11a,
    "fig11b": fig11b,
    "fig12": fig12,
}


def generate_figure(name: str, scale: ExperimentScale) -> FigureResult:
    """Generate one registered figure by name."""
    try:
        fn = FIGURES[name]
    except KeyError:
        raise KeyError(
            f"unknown figure {name!r}; available: {', '.join(sorted(FIGURES))}"
        ) from None
    return fn(scale)
