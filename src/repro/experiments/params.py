"""The paper's experimental parameters, and scaled-down variants.

Sec. 4.2.3: ``P = 5``, ``s = 3``, ``rho`` from 20 to 140 in steps of 20,
analysis probabilities 0.01..1.00 step 0.01.  Sec. 5: simulation
probabilities 0.05..1.00 step 0.05, 30 random runs per point.  The
constraint values are the paper's: 5 phases, 72% reachability
(analysis) / 63% (simulation), 35 broadcasts (analysis) / 80
(simulation).

``ExperimentScale.quick()`` shrinks the grids for CI-friendly runtimes
while keeping every qualitative feature (optimal-``p`` trend, plateau,
crossovers) visible; benchmarks accept either scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.config import AnalysisConfig
from repro.sim.config import SimulationConfig

__all__ = ["PaperParams", "ExperimentScale"]


class PaperParams:
    """Constants straight from the paper's evaluation sections."""

    N_RINGS = 5
    SLOTS = 3
    RHO_GRID = tuple(range(20, 141, 20))
    ANALYSIS_P_STEP = 0.01
    SIM_P_STEP = 0.05
    REPLICATIONS = 30
    LATENCY_BUDGET_PHASES = 5.0
    ANALYSIS_REACH_TARGET = 0.72
    SIM_REACH_TARGET = 0.63
    ANALYSIS_ENERGY_BUDGET = 35.0
    SIM_ENERGY_BUDGET = 80.0
    FIG12_RATIO = 11.0  # the paper's reported optimal-p / success-rate ratio


@dataclass(frozen=True)
class ExperimentScale:
    """Grid resolution for one reproduction run.

    Attributes
    ----------
    name:
        ``"full"`` (the paper's grids) or ``"quick"`` / custom.
    rho_grid:
        Densities to sweep.
    analysis_p_step / sim_p_step:
        Probability grid steps for analysis and simulation figures.
    replications:
        Monte-Carlo runs per simulated grid point.
    seed:
        Root seed for all simulation figures at this scale.
    workers:
        Process count for replication (``1`` = serial, ``None`` = all
        cores but one).
    progress:
        If true, simulated sweeps print throttled progress/ETA lines to
        stderr (see :mod:`repro.obs.progress`).  Deliberately *not* part
        of the figure-cache key: it changes terminal output only, never
        results.
    store:
        Optional result-store directory (see :mod:`repro.store`).
        Simulated sweeps then serve cached tasks and persist fresh
        completions, so re-rendering figures against a warm store skips
        the Monte-Carlo work entirely.  Like ``progress``, not part of
        the figure-cache key: stored results are bit-identical to
        recomputed ones.
    resume:
        With ``store``: resume an interrupted sweep from its journal.
    block_size:
        Replications per dispatched simulation block (``None`` = the
        engine heuristic).  Like ``progress`` and ``store``, not part of
        the figure-cache key: results are bit-identical at any blocking.
    """

    name: str
    rho_grid: tuple[int, ...]
    analysis_p_step: float
    sim_p_step: float
    replications: int
    seed: int = 20050113  # the paper's preprint date
    workers: int | None = 1
    progress: bool = False
    store: str | None = None
    resume: bool = False
    block_size: int | None = None

    @classmethod
    def full(
        cls,
        *,
        workers: int | None = None,
        progress: bool = False,
        store: str | None = None,
        resume: bool = False,
        block_size: int | None = None,
    ) -> "ExperimentScale":
        """The paper's exact grids (minutes of wall time for sim figures)."""
        return cls(
            name="full",
            rho_grid=PaperParams.RHO_GRID,
            analysis_p_step=PaperParams.ANALYSIS_P_STEP,
            sim_p_step=PaperParams.SIM_P_STEP,
            replications=PaperParams.REPLICATIONS,
            workers=workers,
            progress=progress,
            store=store,
            resume=resume,
            block_size=block_size,
        )

    @classmethod
    def quick(
        cls,
        *,
        workers: int | None = None,
        progress: bool = False,
        store: str | None = None,
        resume: bool = False,
        block_size: int | None = None,
    ) -> "ExperimentScale":
        """Coarse grids for CI: same qualitative shapes, ~100x cheaper."""
        return cls(
            name="quick",
            rho_grid=(20, 60, 100, 140),
            analysis_p_step=0.02,
            sim_p_step=0.10,
            replications=6,
            workers=workers,
            progress=progress,
            store=store,
            resume=resume,
            block_size=block_size,
        )

    # ------------------------------------------------------------------
    @property
    def analysis_p_grid(self) -> np.ndarray:
        """Probability grid for analytical sweeps."""
        n = int(round(1.0 / self.analysis_p_step))
        return np.linspace(self.analysis_p_step, n * self.analysis_p_step, n)

    @property
    def sim_p_grid(self) -> np.ndarray:
        """Probability grid for simulated sweeps."""
        n = int(round(1.0 / self.sim_p_step))
        return np.linspace(self.sim_p_step, n * self.sim_p_step, n)

    def analysis_config(self, rho: float) -> AnalysisConfig:
        """The analytical configuration at density ``rho``."""
        return AnalysisConfig(
            n_rings=PaperParams.N_RINGS, rho=rho, slots=PaperParams.SLOTS
        )

    def simulation_config(self, rho: float) -> SimulationConfig:
        """The simulation configuration at density ``rho``."""
        return SimulationConfig(analysis=self.analysis_config(rho))
