"""Persistence for experiment artifacts (JSON + CSV).

Reproduction runs are expensive at full scale; these helpers let the
CLI and the benchmark harness write machine-readable results that a
later session (or an external plotting tool) can reload without
re-running anything.  JSON round-trips the full
:class:`~repro.experiments.report.FigureResult` (including notes);
CSV exports just the series block for spreadsheet/pandas consumption.
"""

from __future__ import annotations

import csv
import io as _io
import json
import math
from pathlib import Path
from typing import Iterable

import numpy as np

from repro.experiments.report import FigureResult
from repro.obs.provenance import MANIFEST_NAME, load_manifest

__all__ = [
    "figure_to_json",
    "figure_from_json",
    "save_figure",
    "load_figure",
    "figure_to_csv",
    "save_figures",
    "load_figures",
    "load_manifest",
    "load_figures_with_manifest",
]


def _jsonable(value):
    """Convert numpy scalars/arrays and NaN to JSON-safe values."""
    if isinstance(value, (np.floating, float)):
        v = float(value)
        return None if math.isnan(v) else v
    if isinstance(value, (np.integer, int)):
        return int(value)
    if isinstance(value, np.ndarray):
        return [_jsonable(x) for x in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [_jsonable(x) for x in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return value


def figure_to_json(result: FigureResult) -> str:
    """Serialize one figure result to a JSON string (NaN becomes null)."""
    payload = {
        "schema": "repro.figure/1",
        "figure": result.figure,
        "title": result.title,
        "x_name": result.x_name,
        "x_values": _jsonable(list(result.x_values)),
        "series": {k: _jsonable(list(v)) for k, v in result.series.items()},
        "notes": _jsonable(dict(result.notes)),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def figure_from_json(text: str) -> FigureResult:
    """Reconstruct a figure result from :func:`figure_to_json` output."""
    payload = json.loads(text)
    if payload.get("schema") != "repro.figure/1":
        raise ValueError(
            f"not a repro figure document (schema={payload.get('schema')!r})"
        )

    def restore(seq):
        return np.array(
            [np.nan if v is None else float(v) for v in seq], dtype=float
        )

    return FigureResult(
        figure=payload["figure"],
        title=payload["title"],
        x_name=payload["x_name"],
        x_values=restore(payload["x_values"]),
        series={k: restore(v) for k, v in payload["series"].items()},
        notes=payload.get("notes", {}),
    )


def save_figure(result: FigureResult, path: str | Path) -> Path:
    """Write one figure result as JSON; returns the path written."""
    path = Path(path)
    path.write_text(figure_to_json(result) + "\n")
    return path


def load_figure(path: str | Path) -> FigureResult:
    """Load one figure result saved by :func:`save_figure`."""
    return figure_from_json(Path(path).read_text())


def figure_to_csv(result: FigureResult) -> str:
    """The series block as CSV: one x column plus one column per series."""
    buf = _io.StringIO()
    writer = csv.writer(buf)
    headers = [result.x_name, *result.series]
    writer.writerow(headers)
    columns = [list(result.x_values), *(list(v) for v in result.series.values())]
    for row in zip(*columns, strict=True):
        writer.writerow(
            ["" if isinstance(v, float) and math.isnan(v) else v for v in row]
        )
    return buf.getvalue()


def save_figures(results: Iterable[FigureResult], directory: str | Path) -> list[Path]:
    """Write a batch of figures as ``<figure>.json`` files in ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    return [save_figure(r, directory / f"{r.figure}.json") for r in results]


def load_figures(directory: str | Path) -> dict[str, FigureResult]:
    """Load every ``*.json`` figure in a directory, keyed by figure name."""
    directory = Path(directory)
    out = {}
    for path in sorted(directory.glob("*.json")):
        if path.name == MANIFEST_NAME:
            continue  # the provenance manifest is not a figure document
        result = load_figure(path)
        out[result.figure] = result
    return out


def load_figures_with_manifest(
    directory: str | Path,
) -> tuple[dict[str, FigureResult], dict | None]:
    """Figures plus the provenance manifest the battery wrote, if any.

    Returns ``(figures, manifest)``; ``manifest`` is ``None`` when the
    directory predates manifest writing (pre-observability outputs stay
    loadable).
    """
    directory = Path(directory)
    figures = load_figures(directory)
    manifest = None
    if (directory / MANIFEST_NAME).exists():
        manifest = load_manifest(directory)
    return figures, manifest
