"""Gauss–Legendre quadrature on ``[0, 1]`` for the ring-model integrals.

Equation (4) of the paper integrates a smooth function of the radial
offset ``x`` over each ring of width ``r``; the integrand involves lens
areas (smooth, with mild kinks where circles become tangent) composed
with the slot-collision probability.  Gauss–Legendre with a modest node
count converges quickly for these integrands, and the nodes/weights are
precomputed once per model so the per-phase cost is a handful of
vectorized evaluations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import check_positive_int

__all__ = ["GaussLegendreRule"]


@dataclass(frozen=True)
class GaussLegendreRule:
    """An ``n``-point Gauss–Legendre rule mapped to the unit interval.

    Attributes
    ----------
    n:
        Number of nodes.
    nodes:
        Quadrature abscissae in ``(0, 1)``, ascending.
    weights:
        Matching weights; ``weights.sum() == 1`` to machine precision.
    """

    n: int
    nodes: np.ndarray = field(repr=False)
    weights: np.ndarray = field(repr=False)

    @classmethod
    def unit(cls, n: int = 96) -> "GaussLegendreRule":
        """Build an ``n``-point rule on ``[0, 1]``."""
        n = check_positive_int("n", n)
        x, w = np.polynomial.legendre.leggauss(n)
        nodes = 0.5 * (x + 1.0)
        weights = 0.5 * w
        nodes.setflags(write=False)
        weights.setflags(write=False)
        return cls(n=n, nodes=nodes, weights=weights)

    def integrate(self, values: np.ndarray, axis: int = -1) -> np.ndarray | float:
        """Integrate sampled values ``f(nodes)`` over ``[0, 1]``.

        ``values`` must have length ``n`` along ``axis``; any additional
        axes are carried through, so a whole family of integrands can be
        integrated in one vectorized call.
        """
        values = np.asarray(values, dtype=float)
        if values.shape[axis] != self.n:
            raise ValueError(
                f"values has {values.shape[axis]} samples along axis {axis}; "
                f"this rule has {self.n} nodes"
            )
        return np.tensordot(values, self.weights, axes=([axis], [0]))

    def scaled(self, a: float, b: float) -> tuple[np.ndarray, np.ndarray]:
        """Nodes and weights for the interval ``[a, b]``."""
        if not b > a:
            raise ValueError(f"empty interval [{a}, {b}]")
        return a + (b - a) * self.nodes, (b - a) * self.weights
