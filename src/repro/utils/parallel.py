"""Process-parallel map for embarrassingly parallel Monte-Carlo work.

The simulation experiments in Sec. 5 of the paper average 30 independent
runs per ``(rho, p)`` grid point; those runs share nothing, so a process
pool is the right tool.  This module wraps
:class:`concurrent.futures.ProcessPoolExecutor` with the conventions the
rest of the library relies on:

* **serial fallback** — ``workers=1`` (or tiny workloads) runs in-process,
  which keeps tests debuggable and avoids fork overhead for small grids;
* **deterministic ordering** — results always come back in input order,
  whatever the completion order was;
* **chunking** — tasks are submitted in contiguous chunks to amortize
  pickling, following the mpi4py/HPC guidance of communicating few large
  messages rather than many small ones;
* **per-task error capture** — an exception in one task never discards
  its siblings' results.  Failures are recorded as :class:`TaskFailure`
  (input index, exception, traceback) and either raised together as one
  :class:`~repro.errors.ParallelExecutionError` naming the failed
  indices (default) or returned in-place when
  ``return_exceptions=True`` — the retry path of
  :mod:`repro.store.scheduler` relies on the latter.
"""

from __future__ import annotations

import os
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar, Union

from repro.errors import ParallelExecutionError
from repro.utils.validation import check_positive_int

__all__ = ["parallel_map", "default_workers", "TaskFailure"]

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class TaskFailure:
    """One task of a :func:`parallel_map` call raised.

    Attributes
    ----------
    index:
        Position of the failed task in the *input* work list.
    error:
        The exception the task raised (picklable exceptions survive the
        pool boundary verbatim).
    traceback_str:
        The worker-side formatted traceback, for diagnostics — the
        original traceback object cannot cross process boundaries.
    """

    index: int
    error: BaseException
    traceback_str: str = ""

    def __str__(self) -> str:
        return f"task {self.index}: {type(self.error).__name__}: {self.error}"


def default_workers() -> int:
    """A conservative default worker count: physical parallelism minus one."""
    return max(1, (os.cpu_count() or 2) - 1)


def _run_chunk(
    fn: Callable[[T], R], chunk: Sequence[T], start: int
) -> list[Union[R, TaskFailure]]:
    """Apply ``fn`` to a contiguous chunk, capturing per-task failures.

    ``start`` is the chunk's offset in the full work list, so a
    :class:`TaskFailure` reports the task's *input* index.
    """
    out: list[Union[R, TaskFailure]] = []
    for offset, item in enumerate(chunk):
        try:
            out.append(fn(item))
        except Exception as exc:  # deliberate: captured, never swallowed
            out.append(TaskFailure(start + offset, exc, traceback.format_exc()))
    return out


def _finalize(
    results: list[Union[R, TaskFailure]], return_exceptions: bool
) -> list[Union[R, TaskFailure]]:
    """Raise a structured error for captured failures unless asked not to."""
    if return_exceptions:
        return results
    failures = tuple(r for r in results if isinstance(r, TaskFailure))
    if failures:
        indices = ", ".join(str(f.index) for f in failures[:10])
        more = "" if len(failures) <= 10 else f" (+{len(failures) - 10} more)"
        raise ParallelExecutionError(
            f"{len(failures)}/{len(results)} task(s) failed at indices "
            f"[{indices}]{more}; first: {failures[0]}",
            failures,
        ) from failures[0].error
    return results


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    workers: int | None = None,
    chunk_size: int | None = None,
    min_parallel: int = 4,
    progress: Callable[[int, int, Sequence[Union[R, TaskFailure]]], None] | None = None,
    return_exceptions: bool = False,
) -> list[Union[R, TaskFailure]]:
    """Apply ``fn`` to every item, optionally across worker processes.

    Parameters
    ----------
    fn:
        A picklable callable (top-level function or partial of one).
    items:
        The work list; it is materialized once so results can be returned
        in input order.
    workers:
        Process count.  ``None`` uses :func:`default_workers`; ``1`` forces
        the serial path.
    chunk_size:
        Items per submitted task.  ``None`` picks ``ceil(len/ (4*workers))``
        so each worker sees a few chunks (dynamic load balancing without
        per-item dispatch overhead).
    min_parallel:
        Work lists shorter than this run serially regardless of ``workers``;
        pool startup would dominate.
    progress:
        Optional ``progress(done, total, chunk_results)`` hook, called in
        the parent process after each item (serial path) or each finished
        chunk (pool path), in *completion* order.  Chunk results may
        contain :class:`TaskFailure` records.  The returned list is
        still in input order.
    return_exceptions:
        If true, a task that raises contributes a :class:`TaskFailure`
        at its input position instead of aborting the call; every
        sibling result is preserved.  If false (default), all tasks
        still run to completion, then one
        :class:`~repro.errors.ParallelExecutionError` reports every
        failed index.

    Returns
    -------
    list
        ``[fn(x) for x in items]`` in input order (with
        :class:`TaskFailure` placeholders when ``return_exceptions``).
    """
    work = list(items)
    if workers is None:
        workers = default_workers()
    workers = check_positive_int("workers", workers)
    if workers == 1 or len(work) < max(min_parallel, 2):
        results: list[Union[R, TaskFailure]] = []
        for i, item in enumerate(work):
            try:
                results.append(fn(item))
            except Exception as exc:  # deliberate: captured, never swallowed
                results.append(TaskFailure(i, exc, traceback.format_exc()))
            if progress is not None:
                progress(len(results), len(work), results[-1:])
        return _finalize(results, return_exceptions)

    if chunk_size is None:
        chunk_size = max(1, -(-len(work) // (4 * workers)))
    chunk_size = check_positive_int("chunk_size", chunk_size)
    starts = list(range(0, len(work), chunk_size))
    chunks = [work[s : s + chunk_size] for s in starts]

    with ProcessPoolExecutor(max_workers=min(workers, len(chunks))) as pool:
        if progress is None:
            pooled: list[Union[R, TaskFailure]] = []
            for part in pool.map(_run_chunk, [fn] * len(chunks), chunks, starts):
                pooled.extend(part)
            return _finalize(pooled, return_exceptions)
        # submit/as_completed so the hook fires as chunks finish, not in
        # input order; parts are reassembled positionally afterwards.
        futures = {
            pool.submit(_run_chunk, fn, chunk, start): i
            for i, (chunk, start) in enumerate(zip(chunks, starts, strict=True))
        }
        parts: list[list[Union[R, TaskFailure]] | None] = [None] * len(chunks)
        done = 0
        for fut in as_completed(futures):
            part = fut.result()
            parts[futures[fut]] = part
            done += len(part)
            progress(done, len(work), part)
    flat = [r for part in parts for r in part]  # type: ignore[union-attr]
    return _finalize(flat, return_exceptions)
