"""Process-parallel map for embarrassingly parallel Monte-Carlo work.

The simulation experiments in Sec. 5 of the paper average 30 independent
runs per ``(rho, p)`` grid point; those runs share nothing, so a process
pool is the right tool.  This module wraps
:class:`concurrent.futures.ProcessPoolExecutor` with the conventions the
rest of the library relies on:

* **serial fallback** — ``workers=1`` (or tiny workloads) runs in-process,
  which keeps tests debuggable and avoids fork overhead for small grids;
* **deterministic ordering** — results always come back in input order,
  whatever the completion order was;
* **chunking** — tasks are submitted in contiguous chunks to amortize
  pickling, following the mpi4py/HPC guidance of communicating few large
  messages rather than many small ones.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable, Iterable, Sequence, TypeVar

from repro.utils.validation import check_positive_int

__all__ = ["parallel_map", "default_workers"]

T = TypeVar("T")
R = TypeVar("R")


def default_workers() -> int:
    """A conservative default worker count: physical parallelism minus one."""
    return max(1, (os.cpu_count() or 2) - 1)


def _run_chunk(fn: Callable[[T], R], chunk: Sequence[T]) -> list[R]:
    return [fn(item) for item in chunk]


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    workers: int | None = None,
    chunk_size: int | None = None,
    min_parallel: int = 4,
    progress: Callable[[int, int, Sequence[R]], None] | None = None,
) -> list[R]:
    """Apply ``fn`` to every item, optionally across worker processes.

    Parameters
    ----------
    fn:
        A picklable callable (top-level function or partial of one).
    items:
        The work list; it is materialized once so results can be returned
        in input order.
    workers:
        Process count.  ``None`` uses :func:`default_workers`; ``1`` forces
        the serial path.
    chunk_size:
        Items per submitted task.  ``None`` picks ``ceil(len/ (4*workers))``
        so each worker sees a few chunks (dynamic load balancing without
        per-item dispatch overhead).
    min_parallel:
        Work lists shorter than this run serially regardless of ``workers``;
        pool startup would dominate.
    progress:
        Optional ``progress(done, total, chunk_results)`` hook, called in
        the parent process after each item (serial path) or each finished
        chunk (pool path), in *completion* order.  The returned list is
        still in input order.

    Returns
    -------
    list
        ``[fn(x) for x in items]`` in input order.
    """
    work = list(items)
    if workers is None:
        workers = default_workers()
    workers = check_positive_int("workers", workers)
    if workers == 1 or len(work) < max(min_parallel, 2):
        if progress is None:
            return [fn(item) for item in work]
        results = []
        for item in work:
            results.append(fn(item))
            progress(len(results), len(work), results[-1:])
        return results

    if chunk_size is None:
        chunk_size = max(1, -(-len(work) // (4 * workers)))
    chunk_size = check_positive_int("chunk_size", chunk_size)
    chunks = [work[i : i + chunk_size] for i in range(0, len(work), chunk_size)]

    with ProcessPoolExecutor(max_workers=min(workers, len(chunks))) as pool:
        if progress is None:
            results: list[R] = []
            for part in pool.map(_run_chunk, [fn] * len(chunks), chunks):
                results.extend(part)
            return results
        # submit/as_completed so the hook fires as chunks finish, not in
        # input order; parts are reassembled positionally afterwards.
        futures = {
            pool.submit(_run_chunk, fn, chunk): i for i, chunk in enumerate(chunks)
        }
        parts: list[list[R] | None] = [None] * len(chunks)
        done = 0
        for fut in as_completed(futures):
            part = fut.result()
            parts[futures[fut]] = part
            done += len(part)
            progress(done, len(work), part)
    return [r for part in parts for r in part]  # type: ignore[union-attr]
