"""Small statistical helpers with no heavyweight dependencies.

:func:`norm_ppf` replaces the lazy ``scipy.stats.norm.ppf`` import that
used to sit inside :attr:`~repro.sim.results.AggregateResult.half_width`
— a property evaluated once per aggregated metric on the sweep path,
where importing ``scipy.stats`` on first touch cost hundreds of
milliseconds.  The implementation is Acklam's rational approximation
(relative error < 1.15e-9 on its own) polished with one Halley step
against the exact ``math.erfc`` CDF, which lands within ~1e-15 of
``scipy.stats.norm.ppf`` over the whole open interval.

:func:`gammaln` replaces ``scipy.special.gammaln`` in the collision
kernels (the only scipy call the runtime ever made), completing the
scipy decoupling: scipy is now a test-only dependency, consulted solely
by the equivalence tests.  The implementation is the classic Lanczos
approximation (g = 7, 9 coefficients) in plain numpy, with the
reflection formula below ``x = 0.5``; it agrees with scipy to a few
ulps (< 1e-14 relative) on the positive axis the kernels use and to
< 1e-12 on negative non-integers.
"""

from __future__ import annotations

import math

import numpy as np
from numpy.typing import ArrayLike

__all__ = ["norm_ppf", "gammaln"]

# Acklam's coefficients for the inverse normal CDF.
_A = (
    -3.969683028665376e01,
    2.209460984245205e02,
    -2.759285104469687e02,
    1.383577518672690e02,
    -3.066479806614716e01,
    2.506628277459239e00,
)
_B = (
    -5.447609879822406e01,
    1.615858368580409e02,
    -1.556989798598866e02,
    6.680131188771972e01,
    -1.328068155288572e01,
)
_C = (
    -7.784894002430293e-03,
    -3.223964580411365e-01,
    -2.400758277161838e00,
    -2.549732539343734e00,
    4.374664141464968e00,
    2.938163982698783e00,
)
_D = (
    7.784695709041462e-03,
    3.224671290700398e-01,
    2.445134137142996e00,
    3.754408661907416e00,
)
_P_LOW = 0.02425
_SQRT2 = math.sqrt(2.0)
_SQRT_2PI = math.sqrt(2.0 * math.pi)


def norm_ppf(q: float) -> float:
    """Inverse CDF of the standard normal distribution.

    ``norm_ppf(0.975)`` is the familiar ``1.959964...``.  Matches
    ``scipy.stats.norm.ppf`` to well under 1e-9 absolute error across
    ``(0, 1)``; the boundaries return ``±inf`` and values outside
    ``[0, 1]`` raise ``ValueError``.
    """
    q = float(q)
    if math.isnan(q) or q < 0.0 or q > 1.0:
        raise ValueError(f"probability must be in [0, 1], got {q}")
    if q == 0.0:
        return -math.inf
    if q == 1.0:
        return math.inf

    if q < _P_LOW:
        u = math.sqrt(-2.0 * math.log(q))
        x = (
            ((((_C[0] * u + _C[1]) * u + _C[2]) * u + _C[3]) * u + _C[4]) * u + _C[5]
        ) / ((((_D[0] * u + _D[1]) * u + _D[2]) * u + _D[3]) * u + 1.0)
    elif q <= 1.0 - _P_LOW:
        u = q - 0.5
        r = u * u
        x = (
            (((((_A[0] * r + _A[1]) * r + _A[2]) * r + _A[3]) * r + _A[4]) * r + _A[5])
            * u
            / (((((_B[0] * r + _B[1]) * r + _B[2]) * r + _B[3]) * r + _B[4]) * r + 1.0)
        )
    else:
        u = math.sqrt(-2.0 * math.log(1.0 - q))
        x = -(
            ((((_C[0] * u + _C[1]) * u + _C[2]) * u + _C[3]) * u + _C[4]) * u + _C[5]
        ) / ((((_D[0] * u + _D[1]) * u + _D[2]) * u + _D[3]) * u + 1.0)

    # One Halley refinement against the exact CDF (erfc is exact to ulp):
    # drives Acklam's ~1e-9 relative error down to machine precision.
    # The residual CDF(x) - q must be formed without cancellation: near
    # q = 1 both terms are ~1 and their difference would drown in ulps,
    # so evaluate through the survival function against the complement
    # (1 - q is exact for q >= 0.5 by Sterbenz's lemma).
    if q > 0.5:
        e = (1.0 - q) - 0.5 * math.erfc(x / _SQRT2)
    else:
        e = 0.5 * math.erfc(-x / _SQRT2) - q
    u = e * _SQRT_2PI * math.exp(0.5 * x * x)
    return x - u / (1.0 + 0.5 * x * u)


# Lanczos coefficients for g = 7 (the standard 9-term double-precision
# set); the partial-fraction form below is accurate to a few ulps of
# ``ln Γ`` for z >= 0.5.
_LANCZOS = (
    0.99999999999980993,
    676.5203681218851,
    -1259.1392167224028,
    771.32342877765313,
    -176.61502916214059,
    12.507343278686905,
    -0.13857109526572012,
    9.9843695780195716e-6,
    1.5056327351493116e-7,
)
_HALF_LOG_2PI = 0.5 * math.log(2.0 * math.pi)


def _lanczos_lgamma(z: np.ndarray) -> np.ndarray:
    """``ln Γ(z)`` for ``z >= 0.5`` (callers mask; no domain checks)."""
    a = np.full_like(z, _LANCZOS[0])
    for i, c in enumerate(_LANCZOS[1:]):
        a += c / (z + i)
    t = z + 6.5  # z + g - 0.5
    return _HALF_LOG_2PI + (z - 0.5) * np.log(t) - t + np.log(a)


def gammaln(x: ArrayLike) -> float | np.ndarray:
    """``ln |Γ(x)|``, vectorized, scipy-free.

    Matches ``scipy.special.gammaln`` to well under 1e-12 relative
    error everywhere it is finite; non-positive integers (the poles of
    ``Γ``) return ``+inf`` exactly as scipy does.  Scalar input returns
    a python ``float``, array input an ``ndarray``.
    """
    arr = np.asarray(x, dtype=float)
    out = np.empty_like(arr)
    direct = arr >= 0.5
    with np.errstate(divide="ignore", invalid="ignore"):
        out[direct] = _lanczos_lgamma(arr[direct])
        refl = arr[~direct]
        # Reflection: ln|Γ(x)| = ln(π / |sin πx|) − ln Γ(1 − x).
        out[~direct] = np.log(np.pi / np.abs(np.sin(np.pi * refl))) - _lanczos_lgamma(
            1.0 - refl
        )
    # Poles of Γ: sin(πx) only hits 0.0 exactly for |x| small enough that
    # πx is exact, so pin every non-positive integer explicitly.
    with np.errstate(invalid="ignore"):
        pole = (arr <= 0.0) & (np.floor(arr) == arr)
    out[pole] = np.inf
    out[np.isposinf(arr)] = np.inf
    out[np.isnan(arr)] = np.nan
    return float(out[()]) if out.ndim == 0 else out
