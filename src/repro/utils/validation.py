"""Argument validation helpers.

All checks raise :class:`repro.errors.ConfigurationError` with a message
that names the offending parameter, so misuse surfaces at the public API
boundary rather than as a cryptic numpy failure deep in a recursion.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

from repro.errors import ConfigurationError

__all__ = [
    "check_positive",
    "check_positive_int",
    "check_probability",
    "check_fraction",
    "check_in",
]


def _fail(name: str, value: Any, expectation: str) -> None:
    raise ConfigurationError(f"{name}={value!r} is invalid: expected {expectation}")


def check_positive(name: str, value: float, *, allow_zero: bool = False) -> float:
    """Validate that ``value`` is a finite positive real number.

    Returns the value as a ``float`` so callers can validate-and-coerce
    in one step.
    """
    try:
        out = float(value)
    except (TypeError, ValueError):
        _fail(name, value, "a real number")
    if math.isnan(out) or math.isinf(out):
        _fail(name, value, "a finite number")
    if allow_zero:
        if out < 0:
            _fail(name, value, "a non-negative number")
    elif out <= 0:
        _fail(name, value, "a strictly positive number")
    return out


def check_positive_int(name: str, value: int, *, minimum: int = 1) -> int:
    """Validate that ``value`` is an integer ``>= minimum``."""
    if isinstance(value, bool):
        # bool is an int subclass with __index__; reject it explicitly so
        # `slots=True` style mistakes fail loudly instead of meaning 1.
        _fail(name, value, f"an integer >= {minimum}")
    if not isinstance(value, int):
        # numpy integer types pass through __index__
        try:
            value = int(value.__index__())  # type: ignore[union-attr]
        except (AttributeError, TypeError):
            _fail(name, value, f"an integer >= {minimum}")
    out = int(value)
    if out < minimum:
        _fail(name, value, f"an integer >= {minimum}")
    return out


def check_probability(name: str, value: float, *, allow_zero: bool = True) -> float:
    """Validate a probability in ``[0, 1]`` (or ``(0, 1]`` if zero disallowed)."""
    out = check_positive(name, value, allow_zero=allow_zero)
    if out > 1.0:
        _fail(name, value, "a probability in [0, 1]")
    return out


def check_fraction(name: str, value: float) -> float:
    """Validate a strictly interior fraction in ``(0, 1)``.

    Used for reachability targets: a target of exactly 1.0 is never
    attainable under CAM with finite phases, and 0.0 is vacuous.
    """
    out = check_positive(name, value, allow_zero=False)
    if out >= 1.0:
        _fail(name, value, "a fraction strictly inside (0, 1)")
    return out


def check_in(name: str, value: Any, options: Iterable[Any]) -> Any:
    """Validate membership in an explicit option set."""
    opts = tuple(options)
    if value not in opts:
        _fail(name, value, f"one of {opts!r}")
    return value
