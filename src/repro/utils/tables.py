"""Plain-text rendering of result tables and series.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers keep that output aligned and diffable.  Rendering is
deliberately dependency-free (no rich/tabulate) so it works in any
offline environment.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = ["format_table", "format_series", "format_mapping"]


def _fmt_cell(value: object, precision: int) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, (float, np.floating)):
        if np.isnan(value):
            return "-"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    precision: int = 4,
    title: str | None = None,
) -> str:
    """Render rows as an aligned ASCII table.

    ``None`` and ``NaN`` cells render as ``-`` (the paper omits points
    where a constraint is infeasible, e.g. Fig. 5a for tiny ``p``).
    """
    str_rows = [[_fmt_cell(c, precision) for c in row] for row in rows]
    cols = (
        [list(col) for col in zip(list(headers), *str_rows, strict=True)]
        if str_rows
        else [[h] for h in headers]
    )
    widths = [max(len(cell) for cell in col) for col in cols]

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(w) for cell, w in zip(cells, widths, strict=True))

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def format_series(
    x_name: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[object]],
    *,
    precision: int = 4,
    title: str | None = None,
) -> str:
    """Render one x-column against several named y-series (a 'figure' as text)."""
    headers = [x_name, *series]
    columns = [list(x_values), *(list(v) for v in series.values())]
    n = len(columns[0])
    for name, col in zip(headers, columns, strict=True):
        if len(col) != n:
            raise ValueError(f"series {name!r} has {len(col)} points, expected {n}")
    rows = list(zip(*columns, strict=True))
    return format_table(headers, rows, precision=precision, title=title)


def format_mapping(
    items: Mapping[str, object], *, precision: int = 4, title: str | None = None
) -> str:
    """Render a flat key/value mapping, one aligned row per entry."""
    return format_table(
        ["key", "value"],
        [(k, v) for k, v in items.items()],
        precision=precision,
        title=title,
    )
