"""Shared infrastructure: validation, RNG streams, parallelism, quadrature, reports."""

from repro.utils.validation import (
    check_fraction,
    check_in,
    check_positive,
    check_positive_int,
    check_probability,
)
from repro.utils.rng import RngFactory, as_seed_sequence, spawn_rngs
from repro.utils.parallel import parallel_map
from repro.utils.quadrature import GaussLegendreRule
from repro.utils.tables import format_series, format_table

__all__ = [
    "check_fraction",
    "check_in",
    "check_positive",
    "check_positive_int",
    "check_probability",
    "RngFactory",
    "as_seed_sequence",
    "spawn_rngs",
    "parallel_map",
    "GaussLegendreRule",
    "format_series",
    "format_table",
]
