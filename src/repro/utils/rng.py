"""Reproducible random-number stream management.

Monte-Carlo experiments in this library follow the modern numpy idiom:
a single root :class:`numpy.random.SeedSequence` is spawned into
independent child sequences, one per replication, so that

* results are bit-reproducible for a given root seed,
* replications are statistically independent regardless of how they are
  scheduled across processes, and
* adding replications never perturbs existing ones.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.utils.validation import check_positive_int

__all__ = ["SeedLike", "as_seed_sequence", "spawn_rngs", "RngFactory"]

SeedLike = Union[None, int, Sequence[int], np.random.SeedSequence, np.random.Generator]


def as_seed_sequence(seed: SeedLike) -> np.random.SeedSequence:
    """Normalize any accepted seed form into a :class:`~numpy.random.SeedSequence`.

    ``Generator`` inputs are rejected: a generator is a mutable stream,
    and silently splitting one would couple otherwise-independent
    experiments through shared hidden state.
    """
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, np.random.Generator):
        raise TypeError(
            "pass an integer seed or SeedSequence, not a Generator; "
            "generators carry mutable state and cannot be split reproducibly"
        )
    return np.random.SeedSequence(seed)


def spawn_rngs(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Create ``n`` independent generators from one root seed."""
    n = check_positive_int("n", n)
    root = as_seed_sequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(n)]


class RngFactory:
    """A spawning point for independent random streams.

    The factory hands out generators on demand (:meth:`generator`) or in
    bulk (:meth:`generators`), each backed by a distinct child of the
    root :class:`~numpy.random.SeedSequence`.  The ``k``-th stream handed
    out is a deterministic function of the root seed and ``k`` alone.

    Examples
    --------
    >>> f = RngFactory(1234)
    >>> a = f.generator()
    >>> b = f.generator()
    >>> float(a.random()) != float(b.random())
    True
    """

    def __init__(self, seed: SeedLike = None) -> None:
        self._root = as_seed_sequence(seed)
        self._spawned = 0

    @property
    def root(self) -> np.random.SeedSequence:
        """The root seed sequence (never handed out for direct use)."""
        return self._root

    @property
    def streams_issued(self) -> int:
        """How many independent streams this factory has issued so far."""
        return self._spawned

    def seed_sequences(self, n: int) -> list[np.random.SeedSequence]:
        """Issue ``n`` fresh child seed sequences."""
        n = check_positive_int("n", n)
        children = self._root.spawn(n)
        self._spawned += n
        return children

    def generator(self) -> np.random.Generator:
        """Issue one fresh independent generator."""
        return np.random.default_rng(self.seed_sequences(1)[0])

    def generators(self, n: int) -> list[np.random.Generator]:
        """Issue ``n`` fresh independent generators."""
        return [np.random.default_rng(s) for s in self.seed_sequences(n)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RngFactory(entropy={self._root.entropy!r}, issued={self._spawned})"
