"""The two-type slot-collision probability of Appendix A: ``mu'(K1, K2, s)``.

``K1`` in-range transmitters (type A) and ``K2`` carrier-sense-only
transmitters (type B) each pick one of ``s`` slots uniformly; the
receiver succeeds iff some slot holds exactly one A and zero B.  As with
Eq. (2), we compute the complement:

    ``Q(k1, k2, s) = P(no good slot)``
    ``Q(k1, k2, s) = sum_{(i,j) != (1,0)} Multinom(i, j) * Q(k1-i, k2-j, s-1)``
    ``Q(k1, k2, 1) = [not (k1 == 1 and k2 == 0)]``

where ``Multinom(i, j) = C(k1,i) C(k2,j) (1/s)^{i+j} ((s-1)/s)^{k1+k2-i-j}``
is the probability the first bucket receives ``i`` A-items and ``j``
B-items.  The exact DP costs ``O(s * K1^2 * K2^2)``; above a configurable
size threshold we fall back to the Poisson closed form, which is already
accurate to a few 1e-3 at those counts (the tests quantify this).
"""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike

from repro.utils.stats import gammaln

from repro.collision.poisson import mu_poisson_carrier
from repro.utils.validation import check_positive_int

__all__ = ["no_good_slot_table", "mu_carrier_exact", "CarrierCollisionTable", "mu_carrier_real"]


def _binom_pmf_matrix(kmax: int, q: float) -> np.ndarray:
    """``W[k, j] = P(Binomial(k, q) = j)`` (duplicated locally to keep this
    module importable without :mod:`repro.collision.slots`)."""
    k = np.arange(kmax + 1)[:, None].astype(float)
    j = np.arange(kmax + 1)[None, :].astype(float)
    with np.errstate(divide="ignore", invalid="ignore"):
        log_comb = gammaln(k + 1.0) - gammaln(j + 1.0) - gammaln(k - j + 1.0)
        logw = log_comb + j * np.log(q) + (k - j) * np.log1p(-q)
    return np.where(j <= k, np.exp(logw), 0.0)


def no_good_slot_table(k1max: int, k2max: int, slots: int) -> np.ndarray:
    """``Q(k1, k2, slots)`` for all ``k1 <= k1max, k2 <= k2max``.

    Returns an array of shape ``(k1max + 1, k2max + 1)``.
    """
    k1max = check_positive_int("k1max", k1max, minimum=0)
    k2max = check_positive_int("k2max", k2max, minimum=0)
    slots = check_positive_int("slots", slots)

    # s = 1 base: the single bucket is good iff (k1, k2) == (1, 0).
    q_prev = np.ones((k1max + 1, k2max + 1))
    if k1max >= 1:
        q_prev[1, 0] = 0.0

    for s in range(2, slots + 1):
        w1 = _binom_pmf_matrix(k1max, 1.0 / s)
        w2 = _binom_pmf_matrix(k2max, 1.0 / s)
        q_next = np.empty_like(q_prev)
        for k1 in range(k1max + 1):
            # Reversed slices give Qprev[k1 - i, k2 - j] as a matrix in (i, j).
            b1 = w1[k1, : k1 + 1]
            for k2 in range(k2max + 1):
                b2 = w2[k2, : k2 + 1]
                block = q_prev[k1::-1, k2::-1]
                total = float(b1 @ block @ b2)
                if k1 >= 1:
                    # remove the (i, j) = (1, 0) term: first bucket good
                    total -= float(b1[1] * b2[0] * q_prev[k1 - 1, k2])
                q_next[k1, k2] = total
        q_prev = q_next
    # Clip ~1e-14 round-off so mu' = 1 - Q stays inside [0, 1] exactly.
    return np.clip(q_prev, 0.0, 1.0)


def mu_carrier_exact(k1: int, k2: int, slots: int) -> float:
    """Exact ``mu'(K1, K2, s)`` for one integer pair (Appendix A, Eq. A.1)."""
    if k1 < 0 or k2 < 0:
        raise ValueError("item counts must be non-negative")
    if k1 == 0:
        return 0.0
    return float(1.0 - no_good_slot_table(k1, k2, slots)[k1, k2])


class CarrierCollisionTable:
    """Cached ``mu'`` tables with bilinear real-argument interpolation.

    Parameters
    ----------
    exact_limit:
        Maximum ``k1 + k2`` for which the exact DP is used.  Larger
        arguments fall back to :func:`repro.collision.poisson.mu_poisson_carrier`,
        whose error at such counts is far below the quantities of
        interest (``mu'`` itself is nearly 0 or the counts are large
        enough for the Poisson limit to hold).
    """

    def __init__(self, exact_limit: int = 96) -> None:
        self.exact_limit = check_positive_int("exact_limit", exact_limit)
        self._tables: dict[int, np.ndarray] = {}
        self._shape: tuple[int, int] = (0, 0)

    def _ensure(self, slots: int, k1max: int, k2max: int) -> np.ndarray:
        cached = self._tables.get(slots)
        need1 = max(k1max + 1, self._shape[0], 8)
        need2 = max(k2max + 1, self._shape[1], 8)
        if cached is None or cached.shape[0] < need1 or cached.shape[1] < need2:
            q = no_good_slot_table(need1 - 1, need2 - 1, slots)
            cached = 1.0 - q
            cached[0, :] = 0.0  # no in-range transmitter => no reception
            self._tables[slots] = cached
            self._shape = cached.shape
        return self._tables[slots]

    def mu(self, k1: ArrayLike, k2: ArrayLike, slots: int) -> float | np.ndarray:
        """Vectorized exact ``mu'`` for integer counts (within ``exact_limit``)."""
        k1a = np.asarray(k1)
        k2a = np.asarray(k2)
        k1max = int(k1a.max()) if k1a.size else 0
        k2max = int(k2a.max()) if k2a.size else 0
        if k1max + k2max > self.exact_limit:
            raise ValueError(
                f"counts {k1max}+{k2max} exceed exact_limit={self.exact_limit}; "
                "use mu_real which falls back to the Poisson form"
            )
        tab = self._ensure(slots, k1max, k2max)
        out = tab[k1a, k2a]
        return float(out[()]) if out.ndim == 0 else out

    def mu_real(
        self, lam1: ArrayLike, lam2: ArrayLike, slots: int
    ) -> float | np.ndarray:
        """``mu'`` at real-valued expected counts.

        Bilinear interpolation on the exact table where
        ``ceil(lam1) + ceil(lam2) <= exact_limit``; the Poisson closed
        form elsewhere.  The two branches agree to ~1e-3 at the
        crossover, so the switch introduces no visible artifacts.
        """
        l1 = np.atleast_1d(np.asarray(lam1, dtype=float))
        l2 = np.atleast_1d(np.asarray(lam2, dtype=float))
        l1, l2 = np.broadcast_arrays(l1, l2)
        if np.any(l1 < 0) or np.any(l2 < 0):
            raise ValueError("expected counts must be non-negative")
        out = np.empty(l1.shape, dtype=float)
        exact = np.ceil(l1) + np.ceil(l2) <= self.exact_limit
        if np.any(exact):
            e1 = l1[exact]
            e2 = l2[exact]
            tab = self._ensure(
                slots, int(np.ceil(e1.max())) + 1, int(np.ceil(e2.max())) + 1
            )
            i1 = np.floor(e1).astype(int)
            i2 = np.floor(e2).astype(int)
            f1 = e1 - i1
            f2 = e2 - i2
            out[exact] = (
                (1 - f1) * (1 - f2) * tab[i1, i2]
                + f1 * (1 - f2) * tab[i1 + 1, i2]
                + (1 - f1) * f2 * tab[i1, i2 + 1]
                + f1 * f2 * tab[i1 + 1, i2 + 1]
            )
        if np.any(~exact):
            out[~exact] = mu_poisson_carrier(l1[~exact], l2[~exact], slots)
        shaped = out.reshape(np.broadcast(np.asarray(lam1), np.asarray(lam2)).shape)
        return float(shaped[()]) if shaped.ndim == 0 else shaped


_DEFAULT = CarrierCollisionTable()


def mu_carrier_real(
    lam1: ArrayLike, lam2: ArrayLike, slots: int
) -> float | np.ndarray:
    """Module-level convenience wrapper over a shared :class:`CarrierCollisionTable`."""
    return _DEFAULT.mu_real(lam1, lam2, slots)
