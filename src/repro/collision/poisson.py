"""Closed-form slot-collision probabilities under Poisson transmitter counts.

When the number of transmitters is Poisson(``lam``) and each picks one
of ``s`` slots uniformly at random, the per-slot occupancies are
*independent* Poisson(``lam/s``) variables (Poisson thinning).  A slot
delivers a packet iff it holds exactly one transmitter, so

    ``P(slot good) = (lam/s) * exp(-lam/s)``
    ``mu_poisson(lam, s) = 1 - (1 - (lam/s) e^{-lam/s})^s``

This is *exact* for the Poisson mixture — not an approximation of it —
which gives the library a strong cross-check: mixing the exact
fixed-``K`` table :func:`repro.collision.slots.mu_exact` over a Poisson
pmf must reproduce the closed form (see :func:`mu_poisson_mixture` and
the property tests).

In the analytical framework these forms serve two roles:

* an **ablation** against the paper's plug-the-expectation convention
  (``mu(g(x)p, s)`` with linear interpolation), quantifying how much the
  choice of real-``K`` extension matters;
* a **fallback** for the carrier-sense model at transmitter counts where
  the exact two-type DP (Appendix A) is too expensive.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike

from repro.utils.stats import gammaln

from repro.utils.validation import check_positive_int

__all__ = [
    "mu_poisson",
    "mu_poisson_carrier",
    "mu_poisson_mixture",
    "expected_singleton_slots_poisson",
]


def mu_poisson(lam: ArrayLike, slots: int) -> float | np.ndarray:
    """P(at least one singleton slot) for Poisson(``lam``) transmitters."""
    slots = check_positive_int("slots", slots)
    lam_arr = np.asarray(lam, dtype=float)
    if np.any(lam_arr < 0):
        raise ValueError("expected counts must be non-negative")
    per = lam_arr / slots
    good = per * np.exp(-per)
    out = 1.0 - (1.0 - good) ** slots
    return float(out[()]) if out.ndim == 0 else out


def mu_poisson_carrier(
    lam_tx: ArrayLike, lam_cs: ArrayLike, slots: int
) -> float | np.ndarray:
    """Carrier-sense variant: Poisson(``lam_tx``) in-range transmitters,
    Poisson(``lam_cs``) carrier-sense-only transmitters.

    A slot is good iff it holds exactly one in-range transmitter and no
    carrier-sense-only transmitter:

        ``P(slot good) = (lam_tx/s) * exp(-(lam_tx + lam_cs)/s)``
    """
    slots = check_positive_int("slots", slots)
    lt = np.asarray(lam_tx, dtype=float)
    lc = np.asarray(lam_cs, dtype=float)
    if np.any(lt < 0) or np.any(lc < 0):
        raise ValueError("expected counts must be non-negative")
    good = (lt / slots) * np.exp(-(lt + lc) / slots)
    out = 1.0 - (1.0 - good) ** slots
    return float(out[()]) if out.ndim == 0 else out


def mu_poisson_mixture(lam: float, slots: int, *, tail: float = 1e-12) -> float:
    """Poisson mixture of the *exact* fixed-``K`` ``mu`` values.

    Computes ``sum_k Pois(k; lam) * mu(k, s)`` by direct summation over
    the Poisson pmf (truncated once the remaining tail mass is below
    ``tail``).  Mathematically identical to :func:`mu_poisson`; kept as
    an independent implementation for verification.
    """
    slots = check_positive_int("slots", slots)
    lam = float(lam)
    if lam < 0:
        raise ValueError("expected count must be non-negative")
    if lam == 0.0:
        return 0.0
    from repro.collision.slots import SlotCollisionTable

    # Truncate at a point where the upper Poisson tail is negligible.
    kmax = int(np.ceil(lam + 12.0 * np.sqrt(lam) + 30.0))
    table = SlotCollisionTable(initial_kmax=max(kmax, 8)).table(slots, kmax)
    ks = np.arange(kmax + 1)
    log_pmf = ks * np.log(lam) - lam - gammaln(ks + 1.0)
    pmf = np.exp(log_pmf)
    covered = pmf.sum()
    if 1.0 - covered > max(tail, 1e-9):  # pragma: no cover - defensive
        raise RuntimeError(f"Poisson truncation too aggressive: tail {1.0 - covered}")
    return float(np.dot(pmf, table[: kmax + 1]))


def expected_singleton_slots_poisson(lam: ArrayLike, slots: int) -> float | np.ndarray:
    """Expected number of singleton slots under Poisson(``lam``) transmitters.

    ``E = s * (lam/s) * exp(-lam/s) = lam * exp(-lam/s)``.
    """
    slots = check_positive_int("slots", slots)
    lam_arr = np.asarray(lam, dtype=float)
    if np.any(lam_arr < 0):
        raise ValueError("expected counts must be non-negative")
    out = lam_arr * np.exp(-lam_arr / slots)
    return float(out[()]) if out.ndim == 0 else out
