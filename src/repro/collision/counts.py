"""The full distribution of collision-free receptions per phase.

Eq. (2) gives only ``P(at least one singleton slot)``; schemes that
react to *how many* copies a node hears (the counter-based family) need
the whole distribution of the singleton-slot count ``S`` for ``K``
transmitters in ``s`` slots.  The same first-slot conditioning yields

    ``f_{K,s}(m) = P(S = m)``
    ``f_{K,0} = [K == 0]`` at ``m = 0``
    ``f_{K,s}(m) = sum_j Binom(K, j; 1/s) * f_{K-j, s-1}(m - [j == 1])``

Consistency is over-determined and the tests exploit it:
``P(S >= 1) == mu(K, s)`` (Eq. 2) and
``E[S] == K ((s-1)/s)^(K-1)`` (the linearity formula).
"""

from __future__ import annotations

import numpy as np

from repro.collision.slots import _binom_pmf_matrix
from repro.utils.validation import check_positive_int

__all__ = ["singleton_count_distribution", "duplicates_at_least"]


def singleton_count_distribution(k: int, slots: int) -> np.ndarray:
    """``P(S = m)`` for ``m = 0..slots``: the singleton-slot count law.

    Parameters
    ----------
    k:
        Number of items (transmitters); ``k = 0`` returns a point mass
        at 0.
    slots:
        Number of buckets (slots per phase).

    Returns
    -------
    numpy.ndarray
        Length ``slots + 1`` probability vector.
    """
    k = check_positive_int("k", k, minimum=0)
    slots = check_positive_int("slots", slots)

    # dist[k_remaining] = distribution over m for k_remaining items in
    # the slots processed so far (built up slot by slot).
    # Start with zero slots: all items must be "placed" later, so the
    # only valid state is the empty one; we instead iterate forward.
    # dist_s[k'][m]: distribution of singletons among the first `s'`
    # slots given k' items fell into them — built by slot recursion on
    # the *last* slot of the prefix.
    max_m = slots
    # s' = 1: the single slot holds all kk items; singleton iff kk == 1.
    dist = np.zeros((k + 1, max_m + 1))
    dist[0, 0] = 1.0
    for kk in range(1, k + 1):
        dist[kk, 1 if kk == 1 else 0] = 1.0
    for s_prime in range(2, slots + 1):
        w = _binom_pmf_matrix(k, 1.0 / s_prime)
        nxt = np.zeros_like(dist)
        for kk in range(k + 1):
            for j in range(kk + 1):
                p_j = w[kk, j]
                if p_j == 0.0:
                    continue
                if j == 1:
                    nxt[kk, 1:] += p_j * dist[kk - 1, :-1]
                else:
                    nxt[kk] += p_j * dist[kk - j]
        dist = nxt
    out = dist[k]
    # Round-off hygiene: renormalize the ~1e-15 drift.
    total = out.sum()
    if total > 0:
        out = out / total
    return out


def duplicates_at_least(k: int, slots: int, threshold: int) -> float:
    """``P(S >= threshold)``: at least ``threshold`` collision-free packets.

    This is the analytic building block of counter-based suppression:
    a node overhearing ``threshold`` clean copies cancels its relay.
    """
    check_positive_int("threshold", threshold, minimum=0)
    if threshold == 0:
        return 1.0
    pmf = singleton_count_distribution(k, slots)
    if threshold > slots:
        return 0.0
    return float(pmf[threshold:].sum())
