"""Exact computation of the paper's ``mu(K, s)`` (Eq. 2).

``mu(K, s)`` is the probability that, when ``K`` items are dropped
uniformly and independently into ``s`` buckets, at least one bucket ends
up with exactly one item.  In the broadcasting analysis the items are
the neighbors that decided to transmit, the buckets are the ``s`` slots
of a phase, and a singleton bucket is a collision-free reception.

The paper states a recursion (Eq. 2) over the occupancy of the first
bucket and evaluates it numerically.  We implement the complementary
form, which is numerically friendlier and has a clean base case:

    ``Q(K, s) = P(no bucket holds exactly one item)``
    ``Q(K, s) = sum_{j != 1} Binom(K, j; 1/s) * Q(K - j, s - 1)``
    ``Q(0, s) = 1``,  ``Q(K, 1) = [K != 1]``

and ``mu = 1 - Q``.  The whole table ``K = 0..Kmax`` is filled in one
vectorized sweep per bucket and cached, so repeated queries from the
ring-model recursion are table lookups.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike

from repro.utils.stats import gammaln

from repro.obs import metrics as obs_metrics
from repro.utils.validation import check_positive_int

__all__ = [
    "no_singleton_table",
    "mu_exact",
    "mu_real",
    "expected_singleton_slots",
    "SlotCollisionTable",
]


def _binom_pmf_matrix(kmax: int, q: float) -> np.ndarray:
    """``W[k, j] = P(Binomial(k, q) = j)`` for ``0 <= j <= k <= kmax``.

    Computed in log space with ``gammaln`` so large ``k`` does not
    overflow the binomial coefficient.
    """
    k = np.arange(kmax + 1)[:, None].astype(float)
    j = np.arange(kmax + 1)[None, :].astype(float)
    with np.errstate(divide="ignore", invalid="ignore"):
        log_comb = gammaln(k + 1.0) - gammaln(j + 1.0) - gammaln(k - j + 1.0)
        logw = log_comb + j * np.log(q) + (k - j) * np.log1p(-q)
    w = np.where(j <= k, np.exp(logw), 0.0)
    # log(0) paths: q==1 handled by caller (s==1 short-circuits earlier).
    return w


def no_singleton_table(kmax: int, slots: int) -> np.ndarray:
    """``Q(k, slots)`` for ``k = 0..kmax``: probability of *no* singleton bucket."""
    kmax = check_positive_int("kmax", kmax)
    slots = check_positive_int("slots", slots)
    ks = np.arange(kmax + 1)
    # s = 1: the only bucket holds all k items; singleton iff k == 1.
    q_prev = (ks != 1).astype(float)
    for s in range(2, slots + 1):
        w = _binom_pmf_matrix(kmax, 1.0 / s)
        w[:, 1] = 0.0  # exclude "exactly one item in this bucket"
        q_next = np.empty(kmax + 1)
        for k in range(kmax + 1):
            # sum_j W[k, j] * q_prev[k - j]
            q_next[k] = float(np.dot(w[k, : k + 1], q_prev[k::-1]))
        q_prev = q_next
    # The recursion is a convex-ish combination of probabilities; clip the
    # ~1e-14 round-off so downstream invariants (mu in [0, 1]) hold exactly.
    return np.clip(q_prev, 0.0, 1.0)


def mu_exact(k: int, slots: int) -> float:
    """The paper's ``mu(K, s)`` for a single integer ``K >= 0``.

    ``mu(0, s) = 0`` (no transmitter, nothing to receive) and
    ``mu(1, s) = 1`` (a lone transmitter never collides), matching
    Eq. (2)'s base case.
    """
    if k < 0:
        raise ValueError(f"item count must be non-negative, got {k}")
    if k == 0:
        return 0.0
    return float(1.0 - no_singleton_table(k, slots)[k])


class SlotCollisionTable:
    """Cached, growable tables of ``mu(K, s)`` for fast repeated queries.

    The ring-model recursion evaluates ``mu`` at every quadrature node of
    every ring of every phase; this class amortizes the DP by caching the
    full ``K = 0..Kmax`` table per slot count and doubling ``Kmax`` on
    demand.

    Thread-safety: instances are not thread-safe; share one per model.
    """

    def __init__(self, initial_kmax: int = 256) -> None:
        self._kmax = check_positive_int("initial_kmax", initial_kmax)
        self._tables: dict[int, np.ndarray] = {}

    def table(self, slots: int, kmax: int | None = None) -> np.ndarray:
        """``mu(0..Kmax, slots)`` as an array, growing the cache if needed.

        The grow check compares the cached table against what *this*
        query needs, not against the shared ``Kmax`` high-water mark:
        once a slot count's table covers the request it is returned
        as-is, even if a different slot count has since grown the mark.
        Rebuilds only happen when the request genuinely outgrows the
        cache, and they double ``Kmax`` so growth stays amortized.
        """
        slots = check_positive_int("slots", slots)
        need = self._kmax if kmax is None else kmax
        cached = self._tables.get(slots)
        reg = obs_metrics.registry()
        if cached is not None and len(cached) > need:
            if reg.enabled:
                reg.counter("collision.table_hits").inc()
            return cached
        if reg.enabled:
            reg.counter("collision.table_rebuilds").inc()
        size = self._kmax
        while size < need:
            size *= 2
        self._kmax = size
        table = 1.0 - no_singleton_table(size, slots)
        self._tables[slots] = table
        return table

    def mu(self, k: ArrayLike, slots: int) -> float | np.ndarray:
        """Vectorized ``mu`` for integer item counts ``k`` (array-friendly)."""
        k_arr = np.asarray(k)
        if np.any(k_arr < 0):
            raise ValueError("item counts must be non-negative")
        kmax = int(k_arr.max()) if k_arr.size else 0
        tab = self.table(slots, kmax)
        out = tab[k_arr]
        return float(out[()]) if out.ndim == 0 else out

    def mu_real(
        self, lam: ArrayLike, slots: int, method: str = "interpolate"
    ) -> float | np.ndarray:
        """``mu`` extended to real-valued expected counts ``lam``.

        ``method="interpolate"`` (default) linearly interpolates between
        the integer table entries — the natural reading of the paper's
        ``mu(g(x) * p, s)`` with non-integer argument.
        ``method="poisson"`` instead treats the transmitter count as
        Poisson-distributed with mean ``lam`` and returns the exact
        closed form for that mixture (see :mod:`repro.collision.poisson`);
        the ablation benchmark compares the two.
        """
        lam_arr = np.asarray(lam, dtype=float)
        if np.any(lam_arr < 0):
            raise ValueError("expected counts must be non-negative")
        if method == "poisson":
            from repro.collision.poisson import mu_poisson

            return mu_poisson(lam_arr, slots)
        if method != "interpolate":
            raise ValueError(f"unknown method {method!r}")
        kmax = int(np.ceil(lam_arr.max())) + 1 if lam_arr.size else 1
        tab = self.table(slots, kmax)
        lo = np.floor(lam_arr).astype(int)
        frac = lam_arr - lo
        out = (1.0 - frac) * tab[lo] + frac * tab[lo + 1]
        return float(out[()]) if out.ndim == 0 else out


_DEFAULT_TABLE = SlotCollisionTable()


def mu_real(
    lam: ArrayLike, slots: int, method: str = "interpolate"
) -> float | np.ndarray:
    """Module-level convenience wrapper over a shared :class:`SlotCollisionTable`."""
    return _DEFAULT_TABLE.mu_real(lam, slots, method=method)


def expected_singleton_slots(k: ArrayLike, slots: int) -> float | np.ndarray:
    """Expected number of singleton buckets for ``k`` items in ``slots`` buckets.

    ``E = k * ((s-1)/s)^(k-1)`` — each item is alone in its bucket with
    probability ``((s-1)/s)^(k-1)``.  Evaluated with the continuous
    extension in ``k`` (used by the flooding success-rate analysis of
    Fig. 12, where ``k`` is an expectation).
    """
    slots = check_positive_int("slots", slots)
    k_arr = np.asarray(k, dtype=float)
    if np.any(k_arr < 0):
        raise ValueError("item counts must be non-negative")
    if slots == 1:
        out = np.where(np.abs(k_arr - 1.0) < 1e-12, 1.0, k_arr * 0.0)
        # continuous extension through k=1 for s=1 is degenerate; report
        # the k * 0^(k-1) limit: 1 at k=1, 0 elsewhere (k=0 gives 0).
        return float(out[()]) if out.ndim == 0 else out
    ratio = (slots - 1.0) / slots
    out = k_arr * ratio ** np.maximum(k_arr - 1.0, 0.0)
    return float(out[()]) if out.ndim == 0 else out
