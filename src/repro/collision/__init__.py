"""Slot-collision probability mathematics (paper Eq. 2 and Appendix A).

Under CAM with the phase/slot backoff of Sec. 4.2, a receiver gets a
packet in a slot iff exactly one of its transmitting neighbors chose
that slot (and, in the carrier-sense extension, no node in the
carrier-sense annulus transmitted in it).  This package computes the
probability that *at least one* slot succeeds:

* :func:`mu_exact` / :class:`SlotCollisionTable` — the paper's
  ``mu(K, s)`` via an exact dynamic program equivalent to Eq. (2);
* :func:`mu_real` — the real-argument extension the paper implicitly
  uses when plugging the expectation ``g(x) * p`` into ``mu``;
* :mod:`repro.collision.poisson` — closed forms under a Poisson
  transmitter count (used as an ablation and a large-``K`` fallback);
* :mod:`repro.collision.carrier` — the two-type ``mu'(K1, K2, s)`` of
  Appendix A.
"""

from repro.collision.slots import (
    SlotCollisionTable,
    expected_singleton_slots,
    mu_exact,
    mu_real,
)
from repro.collision.poisson import (
    expected_singleton_slots_poisson,
    mu_poisson,
    mu_poisson_carrier,
    mu_poisson_mixture,
)
from repro.collision.carrier import CarrierCollisionTable, mu_carrier_exact, mu_carrier_real
from repro.collision.counts import duplicates_at_least, singleton_count_distribution

__all__ = [
    "SlotCollisionTable",
    "expected_singleton_slots",
    "mu_exact",
    "mu_real",
    "expected_singleton_slots_poisson",
    "mu_poisson",
    "mu_poisson_carrier",
    "mu_poisson_mixture",
    "CarrierCollisionTable",
    "mu_carrier_exact",
    "mu_carrier_real",
    "duplicates_at_least",
    "singleton_count_distribution",
]
