"""The expensive tier: Monte-Carlo verification of shortlisted rungs.

The surrogate frontier is an analytical claim; this module checks it
against the simulator for a *tolerance band* of candidates — the
frontier rungs themselves plus any probed point whose objectives sit
within a relative tolerance of the frontier — capped at ``max_verify``
points.  Candidates dispatch as one
:func:`~repro.sim.runner.sweep_grid` call, which routes replication
blocks through the :mod:`repro.store` scheduler when a store is given:
each rung's seed comes from :func:`~repro.optimize.search.candidate_seed`
(a pure function of the root seed and the rung), so a repeated or
adjacent query finds its tasks already in the store and performs zero
new simulator runs — pinned by test via the ``store.hits``/``misses``
counters.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.optimize.search import SearchOutcome, candidate_seed
from repro.optimize.spec import (
    Evaluation,
    OptimizeQuery,
    evaluate_runs,
    objective_key,
)
from repro.sim.config import SimulationConfig
from repro.sim.runner import PathLike, StoreLike, sweep_grid
from repro.utils.rng import SeedLike, as_seed_sequence

__all__ = ["select_candidates", "verify_candidates", "frontier_gap"]

#: Guard against zero denominators in relative-gap computation.
_GAP_EPS = 1e-9


def frontier_gap(
    ev: Evaluation, frontier: Sequence[Evaluation], query: OptimizeQuery
) -> float:
    """Relative distance of one evaluation behind the frontier.

    For each frontier point: the worst per-objective relative shortfall
    (minimize-normalized); the gap is the minimum over frontier points.
    0 means the point matches some frontier point; ``tolerance`` bounds
    how far behind a candidate may sit and still be worth simulating.
    """
    if not frontier:
        return math.inf
    ke = objective_key(ev, query)
    gap = math.inf
    for f in frontier:
        kf = objective_key(f, query)
        worst = 0.0
        for e_val, f_val in zip(ke, kf, strict=True):
            denom = max(abs(f_val), _GAP_EPS)
            worst = max(worst, (e_val - f_val) / denom)
        gap = min(gap, worst)
    return gap


def select_candidates(
    outcome: SearchOutcome,
    query: OptimizeQuery,
    *,
    tolerance: float,
    max_verify: int,
) -> list[int]:
    """The rungs worth paying the simulator for, ordered by rung.

    Frontier rungs come first; remaining slots go to feasible probes
    within ``tolerance`` of the frontier, closest first.
    """
    frontier_rungs = sorted(
        rung
        for rung, ev in outcome.evaluations.items()
        if ev in outcome.frontier
    )
    chosen = frontier_rungs[:max_verify]
    if len(chosen) < max_verify:
        near: list[tuple[float, int]] = []
        for rung, ev in outcome.evaluations.items():
            if rung in chosen or not ev.feasible:
                continue
            gap = frontier_gap(ev, outcome.frontier, query)
            if gap <= tolerance:
                near.append((gap, rung))
        for _, rung in sorted(near)[: max_verify - len(chosen)]:
            chosen.append(rung)
    return sorted(chosen)


def verify_candidates(
    config: SimulationConfig,
    query: OptimizeQuery,
    rungs: Sequence[int],
    ladder: Sequence[float],
    seed: SeedLike,
    *,
    replications: int,
    engine: str = "vector",
    alignment: str = "phase",
    workers: int | None = 1,
    store: StoreLike = None,
    resume: bool = False,
    retries: int = 1,
    block_size: int | None = None,
    progress: bool = False,
    manifest_dir: PathLike = None,
) -> dict[int, Evaluation]:
    """Simulate the shortlisted rungs; one sweep, per-rung stable seeds.

    Returns rung to aggregated simulation :class:`Evaluation`.  The
    per-point seed is :func:`~repro.optimize.search.candidate_seed`
    — a function of ``(seed, rung)``, never of the candidate list — so
    store entries are shared across searches.
    """
    if not rungs:
        return {}
    # Resolve the root once: a None seed draws OS entropy exactly one
    # time, keeping every rung's child derived from the same root.
    root = as_seed_sequence(seed)
    ps = [float(ladder[r]) for r in rungs]
    rung_list = list(rungs)
    grid = sweep_grid(
        config,
        [config.rho],
        ps,
        replications,
        seed=root,
        point_seed=lambda _rho, i: candidate_seed(root, rung_list[i]),
        engine=engine,
        alignment=alignment,
        workers=workers,
        store=store,
        resume=resume,
        retries=retries,
        block_size=block_size,
        progress=progress,
        manifest_dir=manifest_dir,
    )
    rho = float(config.rho)
    return {
        rung: evaluate_runs(grid[(rho, p)], query, p)
        for rung, p in zip(rung_list, ps, strict=True)
    }
