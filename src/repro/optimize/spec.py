"""The query model: bounds, objectives, and metric evaluation.

A deployment question — "best ``p`` for my network under these
constraints" — is an :class:`OptimizeQuery`: each of the paper's three
broadcast metrics (reachability, latency in phases, energy as expected
transmissions) is either a *hard bound* or an *objective*.  The four
single-metric optima of the paper's Figs. 4–7 are the four
one-bound/one-objective corners of this space, and
:func:`evaluate_trace` reproduces them bit-for-bit against
:func:`repro.analysis.optimizer.sweep_metric` (pinned by tests):

* bound ``latency <= L``, maximize reachability  — Fig. 4,
* bound ``reachability >= R``, minimize latency  — Fig. 5,
* bound ``reachability >= R``, minimize energy   — Fig. 6,
* bound ``energy <= E``, maximize reachability   — Fig. 7.

Evaluation follows a single stopping rule: the broadcast is observed up
to ``t_stop``, the earliest of the latency budget, the moment the
energy budget is exhausted, the crossing of the reachability target,
and the end of the trace.  All three metrics are then read off at
``t_stop``, which is what makes combined bounds (e.g. ``reach >= 0.95``
*and* ``latency <= 5``) well defined: the query is infeasible at ``p``
exactly when the target is not crossed before the caps.

:func:`evaluate_run` is the slot-resolution analog for simulated
:class:`~repro.sim.results.RunResult` records, matching the per-run
metric methods exactly; :func:`evaluate_runs` aggregates replications
with the figures' convention (mean over feasible runs, infeasible runs
excluded but counted).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.analysis.trace import BroadcastTrace
from repro.errors import ConfigurationError, InfeasibleConstraintError
from repro.sim.results import RunResult

__all__ = [
    "METRIC_NAMES",
    "METRIC_SENSES",
    "OptimizeQuery",
    "Evaluation",
    "evaluate_trace",
    "evaluate_run",
    "evaluate_runs",
    "better",
    "best_evaluation",
    "objective_key",
]

#: The three broadcast metrics a query may bound or optimize.
METRIC_NAMES: tuple[str, ...] = ("reachability", "latency", "energy")

#: Optimization sense per metric: reachability is maximized, latency
#: (phases) and energy (expected transmissions) are minimized.  A bound
#: is always on the unfavourable side: ``reachability >= value``,
#: ``latency <= value``, ``energy <= value``.
METRIC_SENSES: dict[str, str] = {
    "reachability": "max",
    "latency": "min",
    "energy": "min",
}

#: Slack used when checking a crossing time against a stopping cap;
#: absorbs the one-ulp noise of interpolating the same trace twice.
_EPS = 1e-12


@dataclass(frozen=True)
class OptimizeQuery:
    """One deployment question over the three broadcast metrics.

    Attributes
    ----------
    bounds:
        Hard constraints, metric name to value: ``reachability >= v``,
        ``latency <= v`` (phases), ``energy <= v`` (transmissions).
    objectives:
        Metrics to optimize, in priority order (the first is the
        primary objective; search compares lexicographically and the
        frontier is Pareto over all of them).  Must be non-empty and
        disjoint from the bounds.
    min_feasible:
        Fraction of Monte-Carlo replications that must individually
        satisfy the bounds for an aggregated simulation evaluation to
        count as feasible (surrogate evaluations ignore it).
    """

    bounds: Mapping[str, float] = field(default_factory=dict)
    objectives: tuple[str, ...] = ()
    min_feasible: float = 0.5

    def __post_init__(self) -> None:
        bounds = dict(self.bounds)
        object.__setattr__(self, "bounds", bounds)
        object.__setattr__(self, "objectives", tuple(self.objectives))
        for name, value in bounds.items():
            if name not in METRIC_NAMES:
                raise ConfigurationError(
                    f"unknown bound metric {name!r}; expected one of {METRIC_NAMES}"
                )
            v = float(value)
            if not math.isfinite(v) or v <= 0:
                raise ConfigurationError(f"bound {name} must be finite and > 0, got {value}")
            if name == "reachability" and v > 1:
                raise ConfigurationError(f"reachability bound must be <= 1, got {value}")
            bounds[name] = v
        if not self.objectives:
            raise ConfigurationError("a query needs at least one objective")
        seen: set[str] = set()
        for name in self.objectives:
            if name not in METRIC_NAMES:
                raise ConfigurationError(
                    f"unknown objective {name!r}; expected one of {METRIC_NAMES}"
                )
            if name in bounds:
                raise ConfigurationError(
                    f"{name!r} cannot be both a bound and an objective"
                )
            if name in seen:
                raise ConfigurationError(f"duplicate objective {name!r}")
            seen.add(name)
        if not 0.0 < self.min_feasible <= 1.0:
            raise ConfigurationError(
                f"min_feasible must be in (0, 1], got {self.min_feasible}"
            )


@dataclass(frozen=True)
class Evaluation:
    """All three metrics of one probability, read at the stopping time.

    ``violation`` is the reachability shortfall when the query is
    infeasible at this ``p`` (how far below the target the trace stood
    when the caps ran out) — the hillclimb's guidance signal while it
    is outside the feasible region.  ``feasible_fraction`` is 1 for
    surrogate evaluations and the per-replication feasibility rate for
    aggregated simulation evaluations.
    """

    p: float
    reachability: float
    latency: float
    energy: float
    feasible: bool
    violation: float = 0.0
    source: str = "surrogate"
    feasible_fraction: float = 1.0


def _budget_time(trace: BroadcastTrace, budget: float) -> float:
    """The fractional phase at which a broadcast budget is exhausted.

    Mirrors the inversion of
    :meth:`~repro.analysis.trace.BroadcastTrace.reachability_within_energy`
    exactly (``searchsorted(..., side="right")`` on the cumulative
    broadcasts, latest time the budget still holds), so
    ``trace.reachability_after(_budget_time(trace, b))`` is bit-identical
    to ``trace.reachability_within_energy(b)``.
    """
    cum_b = trace.cumulative_broadcasts
    if budget >= cum_b[-1]:
        return float(trace.phases)
    b_values = np.concatenate(([0.0], cum_b))
    idx = int(np.searchsorted(b_values, budget, side="right"))
    prev_b = b_values[idx - 1]
    gain = b_values[idx] - prev_b
    return float((idx - 1) + (budget - prev_b) / gain)


def evaluate_trace(trace: BroadcastTrace, query: OptimizeQuery) -> Evaluation:
    """Evaluate one analytical trace under a query's stopping rule.

    For each of the paper's four single-metric queries this reproduces
    the corresponding :data:`~repro.analysis.optimizer.METRICS` entry
    bit-for-bit; combined bounds compose through the shared ``t_stop``.
    """
    bounds = query.bounds
    t_cap = float(trace.phases)
    if "latency" in bounds:
        t_cap = min(t_cap, bounds["latency"])
    if "energy" in bounds:
        t_cap = min(t_cap, _budget_time(trace, bounds["energy"]))

    crossing: float | None = None
    feasible = True
    violation = 0.0
    if "reachability" in bounds:
        target = bounds["reachability"]
        try:
            crossing = trace.latency_to(target)
        except InfeasibleConstraintError:
            crossing = None
        if crossing is not None and crossing <= t_cap + _EPS:
            t_stop = min(crossing, t_cap)
        else:
            feasible = False
            t_stop = t_cap
            violation = max(0.0, target - trace.reachability_after(t_cap))
    else:
        t_stop = t_cap

    reach = trace.reachability_after(t_stop)
    latency = crossing if (feasible and crossing is not None) else t_stop
    energy = trace.broadcasts_at(t_stop)
    return Evaluation(
        p=float(trace.p),
        reachability=float(reach),
        latency=float(latency),
        energy=float(energy),
        feasible=feasible,
        violation=violation,
        source="surrogate",
    )


def evaluate_run(run: RunResult, query: OptimizeQuery) -> Evaluation:
    """Slot-resolution analog of :func:`evaluate_trace` for one MC run.

    Matches the :class:`~repro.sim.results.RunResult` metric methods
    exactly at the four paper queries: ``reachability_after_phases``,
    ``latency_phases_to``, ``broadcasts_to`` and
    ``reachability_within_budget`` (pinned by tests).
    """
    bounds = query.bounds
    spp = run.slots_per_phase
    cum_r = np.cumsum(run.new_informed_by_slot) / run.n_field_nodes
    cum_b = np.cumsum(run.broadcasts_by_slot)
    n = len(cum_r)

    cap = n - 1
    if "latency" in bounds:
        # Same slot index as RunResult.reachability_after_phases.
        cap = min(cap, min(int(math.ceil(bounds["latency"] * spp)), n) - 1)
    if "energy" in bounds:
        # Same index as RunResult.reachability_within_budget.
        within = np.flatnonzero(cum_b <= bounds["energy"])
        cap = min(cap, int(within[-1]) if len(within) else -1)

    crossing: int | None = None
    feasible = True
    violation = 0.0
    if "reachability" in bounds:
        target = bounds["reachability"]
        if n and cum_r[-1] >= target:
            crossing = int(np.searchsorted(cum_r, target))
        if crossing is not None and crossing <= cap:
            stop = crossing
        else:
            feasible = False
            stop = cap
            reach_at_cap = float(cum_r[cap]) if cap >= 0 else 0.0
            violation = max(0.0, target - reach_at_cap)
    else:
        stop = cap

    reach = float(cum_r[stop]) if stop >= 0 else 0.0
    if feasible and crossing is not None:
        latency = (crossing + 1) / spp
    else:
        latency = (stop + 1) / spp if stop >= 0 else 0.0
    energy = float(cum_b[stop]) if stop >= 0 else 0.0
    return Evaluation(
        p=float("nan"),
        reachability=reach,
        latency=float(latency),
        energy=energy,
        feasible=feasible,
        violation=violation,
        source="simulation",
    )


def evaluate_runs(
    runs: Sequence[RunResult], query: OptimizeQuery, p: float
) -> Evaluation:
    """Aggregate replications of one ``p`` into a single evaluation.

    Metric values are means over the *feasible* replications — the same
    convention as :func:`repro.sim.results.aggregate_metric` and the
    paper's figures (infeasible runs are excluded, not zero-filled).
    The point is feasible when at least ``query.min_feasible`` of the
    replications individually satisfy the bounds; ``violation``
    averages the per-run reachability shortfalls for search guidance.
    """
    if not runs:
        raise ConfigurationError("evaluate_runs needs at least one run")
    evs = [evaluate_run(r, query) for r in runs]
    feas = [e for e in evs if e.feasible]
    frac = len(feas) / len(evs)
    feasible = frac >= query.min_feasible
    if feas:
        reach = float(np.mean([e.reachability for e in feas]))
        latency = float(np.mean([e.latency for e in feas]))
        energy = float(np.mean([e.energy for e in feas]))
    else:
        reach = float(np.mean([e.reachability for e in evs]))
        latency = float("nan")
        energy = float("nan")
    violation = 0.0 if feasible else float(np.mean([e.violation for e in evs]))
    return Evaluation(
        p=float(p),
        reachability=reach,
        latency=latency,
        energy=energy,
        feasible=feasible,
        violation=violation,
        source="simulation",
        feasible_fraction=frac,
    )


def objective_key(ev: Evaluation, query: OptimizeQuery) -> tuple[float, ...]:
    """Minimize-normalized objective vector: smaller is better, per axis."""
    out = []
    for name in query.objectives:
        v = float(getattr(ev, name))
        out.append(-v if METRIC_SENSES[name] == "max" else v)
    return tuple(out)


def better(a: Evaluation, b: Evaluation, query: OptimizeQuery) -> bool:
    """Strict total order used by the hillclimb and ``best`` selection.

    Feasible beats infeasible; between infeasible points the smaller
    bound violation wins; between feasible points the objectives
    compare lexicographically in query order.  Every tie breaks toward
    the lower ``p`` — the convention of the figures' dense-grid
    ``argmax``/``argmin`` (first index wins), which is what lets the
    search reproduce their optima exactly on plateaus.
    """
    if a.feasible != b.feasible:
        return a.feasible
    if not a.feasible:
        if a.violation != b.violation:
            return a.violation < b.violation
        return a.p < b.p
    ka, kb = objective_key(a, query), objective_key(b, query)
    if ka != kb:
        return ka < kb
    return a.p < b.p


def best_evaluation(
    evaluations: Iterable[Evaluation], query: OptimizeQuery
) -> Evaluation | None:
    """The best *feasible* evaluation under :func:`better`, or ``None``."""
    best: Evaluation | None = None
    for ev in evaluations:
        if not ev.feasible:
            continue
        if best is None or better(ev, best, query):
            best = ev
    return best
