"""``python -m repro.optimize`` — the ``repro-optimize`` CLI."""

from repro.optimize.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
