"""The library entry point: ``optimize()`` and its result record.

One call answers "best ``p`` for this deployment under these
constraints" through the full two-tier pipeline: shotgun + hillclimb
search over a fixed probability ladder with the analytical ring model
as surrogate, then Monte-Carlo verification of the frontier (plus a
tolerance band of near-optimal probes) through the result-store
scheduler.  With a warm store, a repeated or adjacent query performs
zero new simulator runs.

Telemetry follows the repo conventions: ``optimize.*`` counters when
metric collection is enabled, :class:`~repro.obs.events.SearchStep`
trace events behind the hoisted emit guard, and an optional provenance
manifest naming the query, seed entropy, candidates and frontier.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.analysis.config import AnalysisConfig
from repro.analysis.optimizer import default_probability_grid
from repro.errors import ConfigurationError
from repro.obs import metrics as obs_metrics
from repro.obs import provenance as obs_provenance
from repro.obs import spans as obs_spans
from repro.obs import trace as obs_trace
from repro.obs.events import SearchStep
from repro.optimize.frontier import FrontierSet
from repro.optimize.search import SearchOutcome, search_frontier
from repro.optimize.spec import Evaluation, OptimizeQuery, better
from repro.optimize.surrogate import SurrogateModel
from repro.optimize.verify import select_candidates, verify_candidates
from repro.sim.config import SimulationConfig
from repro.sim.runner import PathLike, StoreLike
from repro.utils.rng import SeedLike, as_seed_sequence

__all__ = ["FrontierPoint", "OptimizeResult", "optimize"]


@dataclass(frozen=True)
class FrontierPoint:
    """One verified (or surrogate-only) point of the result frontier."""

    rung: int
    p: float
    surrogate: Evaluation
    simulated: Evaluation | None = None

    @property
    def evaluation(self) -> Evaluation:
        """The authoritative evaluation: simulation when verified."""
        return self.simulated if self.simulated is not None else self.surrogate


@dataclass(frozen=True)
class OptimizeResult:
    """Outcome of one :func:`optimize` call.

    Attributes
    ----------
    query:
        The bounds/objectives asked.
    resolution:
        Ladder step (``p = (rung + 1) * resolution``).
    frontier:
        The verified Pareto frontier (Pareto over simulation
        evaluations when verification ran, over surrogate evaluations
        otherwise), ordered by increasing ``p``.  Empty when no
        candidate satisfied the bounds.
    best:
        The frontier point winning the lexicographic objective order
        (``None`` when the frontier is empty).
    surrogate_frontier:
        The analytical frontier the search produced, before
        verification.
    candidates:
        Ladder rungs sent to the simulator.
    surrogate_probes:
        Distinct probabilities the ring recursion evaluated.
    sim_tasks:
        Monte-Carlo runs dispatched (``len(candidates) *
        replications``; a warm store serves them without computing).
    seed_entropy:
        Root entropy driving candidate seeds (for replay).
    """

    query: OptimizeQuery
    resolution: float
    frontier: tuple[FrontierPoint, ...]
    best: FrontierPoint | None
    surrogate_frontier: tuple[Evaluation, ...]
    candidates: tuple[int, ...]
    surrogate_probes: int
    sim_tasks: int
    seed_entropy: object = None

    def to_dict(self) -> dict:
        """A JSON-ready summary (the ``repro-optimize --json`` payload)."""

        def _ev(ev: Evaluation | None) -> dict | None:
            if ev is None:
                return None
            return {
                "p": _nan_none(ev.p),
                "reachability": _nan_none(ev.reachability),
                "latency": _nan_none(ev.latency),
                "energy": _nan_none(ev.energy),
                "feasible": ev.feasible,
                "violation": _nan_none(ev.violation),
                "source": ev.source,
                "feasible_fraction": _nan_none(ev.feasible_fraction),
            }

        return {
            "query": {
                "bounds": dict(self.query.bounds),
                "objectives": list(self.query.objectives),
                "min_feasible": self.query.min_feasible,
            },
            "resolution": self.resolution,
            "frontier": [
                {
                    "rung": pt.rung,
                    "p": pt.p,
                    "surrogate": _ev(pt.surrogate),
                    "simulated": _ev(pt.simulated),
                }
                for pt in self.frontier
            ],
            "best_p": None if self.best is None else self.best.p,
            "surrogate_frontier_p": [ev.p for ev in self.surrogate_frontier],
            "candidates": list(self.candidates),
            "surrogate_probes": self.surrogate_probes,
            "sim_tasks": self.sim_tasks,
            "seed_entropy": self.seed_entropy,
        }


def _nan_none(v: float) -> float | None:
    return None if math.isnan(v) else float(v)


def optimize(
    config: SimulationConfig | AnalysisConfig,
    *,
    objectives: Sequence[str],
    bounds: Mapping[str, float] | None = None,
    seed: SeedLike = None,
    resolution: float = 0.001,
    restarts: int = 4,
    neighborhood: int = 6,
    max_steps: int = 64,
    tolerance: float = 0.05,
    verify: bool = True,
    replications: int = 30,
    max_verify: int = 4,
    min_feasible: float = 0.5,
    surrogate: SurrogateModel | None = None,
    engine: str = "vector",
    alignment: str = "phase",
    workers: int | None = 1,
    store: StoreLike = None,
    resume: bool = False,
    retries: int = 1,
    block_size: int | None = None,
    progress: bool = False,
    manifest_dir: PathLike = None,
) -> OptimizeResult:
    """Find the Pareto frontier of broadcast probabilities for a query.

    Parameters
    ----------
    config:
        The deployment: a :class:`~repro.sim.config.SimulationConfig`
        (carrier-sense scenarios automatically get the Appendix-A
        surrogate) or a bare
        :class:`~repro.analysis.config.AnalysisConfig`.
    objectives:
        Metrics to optimize (``"reachability"``/``"latency"``/
        ``"energy"``), primary first.
    bounds:
        Hard constraints: ``reachability >= v``, ``latency <= v``,
        ``energy <= v``.
    seed:
        Root seed.  Candidate seeds are a pure function of
        ``(seed, rung)`` (see
        :func:`~repro.optimize.search.candidate_seed`), so two searches
        with the same seed share store entries for shared rungs.
    resolution:
        Probability-ladder step (default 0.001: rungs 0.001..1.000).
    restarts, neighborhood, max_steps:
        Search knobs (see :func:`~repro.optimize.search.search_frontier`).
    tolerance:
        Relative band behind the surrogate frontier from which
        near-optimal probes are also verified.
    verify:
        If false, skip the simulator entirely and return the surrogate
        frontier (``simulated`` stays ``None``).
    replications:
        Monte-Carlo runs per verified candidate (the paper's 30).
    max_verify:
        Cap on candidates sent to the simulator.
    min_feasible:
        Per-candidate feasibility quorum (see
        :class:`~repro.optimize.spec.OptimizeQuery`).
    surrogate:
        A prebuilt :class:`~repro.optimize.surrogate.SurrogateModel` to
        reuse trace memos across queries at one density.
    engine, alignment, workers, store, resume, retries, block_size,
    progress, manifest_dir:
        Forwarded to the Monte-Carlo sweep (see
        :func:`~repro.sim.runner.sweep_grid`).
    """
    if isinstance(config, AnalysisConfig):
        sim_config = SimulationConfig(analysis=config)
    else:
        sim_config = config
    query = OptimizeQuery(
        bounds=dict(bounds or {}),
        objectives=tuple(objectives),
        min_feasible=min_feasible,
    )
    if verify:
        if replications < 1:
            raise ConfigurationError(
                f"replications must be >= 1, got {replications}"
            )
        if max_verify < 1:
            raise ConfigurationError(f"max_verify must be >= 1, got {max_verify}")
    root = as_seed_sequence(seed)
    model = surrogate if surrogate is not None else SurrogateModel(sim_config)
    ladder = default_probability_grid(resolution)

    started = obs_provenance.start_clock() if manifest_dir is not None else None
    reg = obs_metrics.registry()
    tracer = obs_trace.get_tracer()
    emit = tracer.emit if tracer.enabled else None
    prof = obs_spans.profiler()
    begin = prof.begin if prof.enabled else None
    h_query = begin("optimize.query", "optimize") if begin is not None else None
    primary = query.objectives[0]

    def _evaluate(rungs: Sequence[int]) -> Sequence[Evaluation]:
        evs = model.evaluate(query, [float(ladder[r]) for r in rungs])
        if emit is not None:
            for rung, ev in zip(rungs, evs, strict=True):
                emit(
                    SearchStep(
                        "probe",
                        int(rung),
                        ev.p,
                        ev.feasible,
                        float(getattr(ev, primary)) if ev.feasible else float("nan"),
                    )
                )
        return evs

    h_search = begin("optimize.search", "optimize") if begin is not None else None
    outcome: SearchOutcome = search_frontier(
        _evaluate,
        ladder,
        query,
        root,
        restarts=restarts,
        neighborhood=neighborhood,
        max_steps=max_steps,
    )
    if h_search is not None:
        h_search.end(
            probes=model.probes,
            restarts=outcome.restarts,
            frontier=len(outcome.frontier),
        )
    if reg.enabled:
        reg.counter("optimize.searches").inc()
        reg.counter("optimize.restarts").inc(outcome.restarts)

    rung_of = {ev.p: rung for rung, ev in outcome.evaluations.items()}
    candidates: list[int] = []
    simulated: dict[int, Evaluation] = {}
    if verify:
        candidates = select_candidates(
            outcome, query, tolerance=tolerance, max_verify=max_verify
        )
        h_verify = begin("optimize.verify", "optimize") if begin is not None else None
        simulated = verify_candidates(
            sim_config,
            query,
            candidates,
            ladder,
            root,
            replications=replications,
            engine=engine,
            alignment=alignment,
            workers=workers,
            store=store,
            resume=resume,
            retries=retries,
            block_size=block_size,
            progress=progress,
        )
        if h_verify is not None:
            h_verify.end(
                candidates=len(candidates), replications=replications
            )
        if reg.enabled:
            reg.counter("optimize.sim_tasks").inc(len(candidates) * replications)
        if emit is not None:
            for rung in candidates:
                ev = simulated[rung]
                emit(
                    SearchStep(
                        "verify",
                        int(rung),
                        ev.p,
                        ev.feasible,
                        float(getattr(ev, primary)) if ev.feasible else float("nan"),
                    )
                )

    # The result frontier: Pareto over the authoritative evaluations —
    # simulation when verification ran, surrogate otherwise.
    points: list[FrontierPoint] = []
    if verify:
        verified_front = FrontierSet(query)
        for rung in candidates:
            verified_front.consider(simulated[rung])
        sim_rung = {id(simulated[r]): r for r in candidates}
        for ev in verified_front.points:
            rung = sim_rung[id(ev)]
            points.append(
                FrontierPoint(
                    rung=rung,
                    p=float(ladder[rung]),
                    surrogate=outcome.evaluations[rung],
                    simulated=ev,
                )
            )
    else:
        for ev in outcome.frontier:
            rung = rung_of[ev.p]
            points.append(
                FrontierPoint(rung=rung, p=ev.p, surrogate=ev, simulated=None)
            )

    best: FrontierPoint | None = None
    for pt in points:
        if best is None or better(pt.evaluation, best.evaluation, query):
            best = pt

    result = OptimizeResult(
        query=query,
        resolution=float(resolution),
        frontier=tuple(points),
        best=best,
        surrogate_frontier=outcome.frontier,
        candidates=tuple(candidates),
        surrogate_probes=model.probes,
        sim_tasks=len(candidates) * replications if verify else 0,
        seed_entropy=root.entropy,
    )
    if manifest_dir is not None:
        obs_provenance.write_manifest(
            manifest_dir,
            "optimize",
            config=sim_config,
            seed=root,
            params={
                "bounds": dict(query.bounds),
                "objectives": list(query.objectives),
                "resolution": float(resolution),
                "restarts": restarts,
                "neighborhood": neighborhood,
                "tolerance": tolerance,
                "verify": verify,
                "replications": replications,
                "max_verify": max_verify,
                "engine": engine,
                "alignment": alignment,
                "candidates_p": [float(ladder[r]) for r in candidates],
                "frontier_p": [pt.p for pt in points],
                "best_p": None if best is None else best.p,
                "surrogate_probes": model.probes,
                "sim_tasks": result.sim_tasks,
                "store": None if store is None else str(store),
            },
            metrics=obs_metrics.registry().snapshot() or None,
            started=started,
        )
    if h_query is not None:
        h_query.end(
            candidates=len(candidates), sim_tasks=result.sim_tasks
        )
    return result
