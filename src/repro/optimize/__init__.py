"""Pareto-frontier adaptive search for the best broadcast probability.

Answers "what ``p`` should my deployment use under these constraints?"
with orders of magnitude fewer Monte-Carlo runs than the dense
``(rho, p)`` grids of :mod:`repro.experiments`:

* :mod:`repro.optimize.spec` — the query model: reachability/latency/
  energy as hard bounds or lexicographic objectives, and the shared
  stopping rule that evaluates a trace or simulated run against one.
* :mod:`repro.optimize.frontier` — :class:`FrontierSet` dominance
  pruning over feasible evaluations.
* :mod:`repro.optimize.search` — shotgun + hillclimb over a fixed
  probability ladder, driven by bound-violation-first comparison.
* :mod:`repro.optimize.surrogate` — the cheap tier: memoized batched
  ring-recursion traces answering every probe analytically.
* :mod:`repro.optimize.verify` — the expensive tier: Monte-Carlo
  verification of the shortlisted candidates through the store-backed
  scheduler, warm-starting from previous searches.
* :mod:`repro.optimize.api` / :mod:`repro.optimize.cli` — the
  :func:`optimize` library call and the ``repro-optimize`` console
  script.
"""

from repro.optimize.api import FrontierPoint, OptimizeResult, optimize
from repro.optimize.frontier import FrontierSet, dominates
from repro.optimize.search import (
    SearchOutcome,
    candidate_seed,
    search_frontier,
)
from repro.optimize.spec import (
    METRIC_NAMES,
    Evaluation,
    OptimizeQuery,
    better,
    evaluate_run,
    evaluate_runs,
    evaluate_trace,
)
from repro.optimize.surrogate import SurrogateModel
from repro.optimize.verify import (
    frontier_gap,
    select_candidates,
    verify_candidates,
)

__all__ = [
    "METRIC_NAMES",
    "OptimizeQuery",
    "Evaluation",
    "better",
    "evaluate_trace",
    "evaluate_run",
    "evaluate_runs",
    "FrontierSet",
    "dominates",
    "SearchOutcome",
    "candidate_seed",
    "search_frontier",
    "SurrogateModel",
    "frontier_gap",
    "select_candidates",
    "verify_candidates",
    "FrontierPoint",
    "OptimizeResult",
    "optimize",
]
