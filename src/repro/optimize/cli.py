"""Command-line driver: find the best broadcast probability for a query.

Installed as the ``repro-optimize`` console script::

    repro-optimize --rho 80 --min-reach 0.95 --objective latency
    repro-optimize --rho 60 --max-energy 40 --objective reachability \\
        --store .repro-store --json
    repro-optimize --rho 100 --min-reach 0.9 --objective latency,energy \\
        --no-verify --resolution 0.01

Exit codes: 0 on success, 1 when no probability satisfies the bounds
(empty frontier), 2 on bad arguments.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.config import AnalysisConfig
from repro.errors import ReproError
from repro.optimize.api import OptimizeResult, optimize
from repro.optimize.spec import METRIC_NAMES
from repro.sim.config import SimulationConfig

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-optimize",
        description=(
            "Pareto-frontier search for the best broadcast probability "
            "under reachability/latency/energy constraints."
        ),
    )
    scenario = parser.add_argument_group("scenario")
    scenario.add_argument(
        "--rho", type=float, default=60.0, help="neighbor density (default: 60)"
    )
    scenario.add_argument(
        "--n-rings", type=int, default=5, help="field rings P (default: 5)"
    )
    scenario.add_argument(
        "--slots", type=int, default=3, help="slots per phase s (default: 3)"
    )
    scenario.add_argument(
        "--carrier-sense",
        action="store_true",
        help="carrier-sense collisions (Appendix A surrogate + simulator)",
    )

    query = parser.add_argument_group("query")
    query.add_argument(
        "--min-reach",
        type=float,
        default=None,
        metavar="R",
        help="hard bound: mean reachability >= R",
    )
    query.add_argument(
        "--max-latency",
        type=float,
        default=None,
        metavar="L",
        help="hard bound: latency <= L phases",
    )
    query.add_argument(
        "--max-energy",
        type=float,
        default=None,
        metavar="E",
        help="hard bound: broadcast count <= E",
    )
    query.add_argument(
        "--objective",
        action="append",
        default=None,
        metavar="NAME",
        help=(
            "metric to optimize (repeatable or comma-separated, primary "
            f"first): {', '.join(METRIC_NAMES)}"
        ),
    )
    query.add_argument(
        "--min-feasible",
        type=float,
        default=0.5,
        help="fraction of replications that must satisfy the bounds (default: 0.5)",
    )

    search = parser.add_argument_group("search")
    search.add_argument("--seed", type=int, default=None, help="root seed")
    search.add_argument(
        "--resolution",
        type=float,
        default=0.001,
        help="probability-ladder step (default: 0.001)",
    )
    search.add_argument(
        "--restarts", type=int, default=4, help="random restarts (default: 4)"
    )
    search.add_argument(
        "--tolerance",
        type=float,
        default=0.05,
        help="relative band behind the surrogate frontier that still gets "
        "verified (default: 0.05)",
    )
    search.add_argument(
        "--no-verify",
        action="store_true",
        help="skip Monte-Carlo verification; report the analytical frontier",
    )

    verify = parser.add_argument_group("verification")
    verify.add_argument(
        "--replications",
        type=int,
        default=30,
        help="Monte-Carlo runs per verified candidate (default: 30)",
    )
    verify.add_argument(
        "--max-verify",
        type=int,
        default=4,
        help="candidate cap for the simulator (default: 4)",
    )
    verify.add_argument(
        "--engine",
        choices=("vector", "event"),
        default="vector",
        help="simulation engine (default: vector)",
    )
    verify.add_argument(
        "--workers",
        type=int,
        default=1,
        help="processes for the verification sweep (default: 1)",
    )
    verify.add_argument(
        "--block-size",
        type=int,
        default=None,
        help="replications per dispatched block (default: engine heuristic)",
    )
    verify.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="result-store directory: reuse cached simulation tasks, persist "
        "fresh ones (a warm store makes repeat queries free)",
    )
    verify.add_argument(
        "--resume",
        action="store_true",
        help="with --store: resume an interrupted verification from its journal",
    )

    out = parser.add_argument_group("output")
    out.add_argument("--json", action="store_true", help="emit a JSON report")
    out.add_argument(
        "-o",
        "--manifest-dir",
        default=None,
        metavar="DIR",
        help="write a provenance manifest into DIR",
    )
    return parser


def _render(result: OptimizeResult) -> str:
    """The human-readable report."""
    lines: list[str] = []
    q = result.query
    bounds = ", ".join(
        f"{name} {'>=' if name == 'reachability' else '<='} {v:g}"
        for name, v in sorted(q.bounds.items())
    )
    lines.append(
        f"query: minimize {', '.join(q.objectives)}"
        + (f"  subject to {bounds}" if bounds else "  (unconstrained)")
    )
    lines.append(
        f"search: {result.surrogate_probes} surrogate probes, "
        f"{len(result.candidates)} candidates verified, "
        f"{result.sim_tasks} simulator runs"
    )
    if not result.frontier:
        lines.append("frontier: EMPTY — no probability satisfies the bounds")
        return "\n".join(lines)
    lines.append("frontier:")
    header = f"  {'p':>7} {'reach':>8} {'latency':>9} {'energy':>9}  source"
    lines.append(header)
    for pt in result.frontier:
        ev = pt.evaluation
        mark = " *" if result.best is pt else ""
        lines.append(
            f"  {ev.p:7.3f} {ev.reachability:8.4f} {ev.latency:9.3f} "
            f"{ev.energy:9.2f}  {ev.source}{mark}"
        )
    if result.best is not None:
        lines.append(f"best p: {result.best.p:g}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.objective is None:
        print("at least one --objective is required", file=sys.stderr)
        return 2
    objectives = [
        name.strip()
        for spec in args.objective
        for name in spec.split(",")
        if name.strip()
    ]
    bounds: dict[str, float] = {}
    if args.min_reach is not None:
        bounds["reachability"] = args.min_reach
    if args.max_latency is not None:
        bounds["latency"] = args.max_latency
    if args.max_energy is not None:
        bounds["energy"] = args.max_energy
    if args.resume and args.store is None:
        print("--resume requires --store", file=sys.stderr)
        return 2

    try:
        config = SimulationConfig(
            analysis=AnalysisConfig(
                n_rings=args.n_rings, rho=args.rho, slots=args.slots
            ),
            carrier_sense=args.carrier_sense,
        )
        result = optimize(
            config,
            objectives=objectives,
            bounds=bounds,
            seed=args.seed,
            resolution=args.resolution,
            restarts=args.restarts,
            tolerance=args.tolerance,
            verify=not args.no_verify,
            replications=args.replications,
            max_verify=args.max_verify,
            min_feasible=args.min_feasible,
            engine=args.engine,
            workers=args.workers,
            store=args.store,
            resume=args.resume,
            block_size=args.block_size,
            manifest_dir=args.manifest_dir,
        )
    except ValueError as exc:  # includes ConfigurationError
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(_render(result))
    return 0 if result.frontier else 1


if __name__ == "__main__":
    raise SystemExit(main())
