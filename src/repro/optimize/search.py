"""Shotgun + hillclimb frontier search over the probability ladder.

The quantifind pattern (SNIPPETS Snippet 3) adapted to one knob: probe
a spread of starting probabilities (deterministic quantile "shotgun"
inits plus optional random restarts), then hillclimb each start over a
fixed ladder of probabilities with doubling step offsets.  The
comparison driving every move is :func:`repro.optimize.spec.better`:
while the bounds are violated the climb improves the bound metric (the
reachability shortfall), once inside the feasible region it improves
the objectives lexicographically — and every tie breaks toward lower
``p``, so on a plateau the climb drifts left to the exact index a
dense-grid ``argmax``/``argmin`` would have picked.

Every evaluation ever probed feeds the :class:`FrontierSet`, so the
search returns both the frontier and the full probe log (which the
verification tier mines for near-optimal candidates).

The ladder is a *fixed* grid (``rung`` = index, ``p = (rung+1) *
resolution``): making probe positions — and therefore the per-rung
Monte-Carlo verification seeds of :func:`candidate_seed` — a function
of the rung alone is what lets repeated or adjacent queries warm-start
from the result store with zero new simulator tasks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.optimize.frontier import FrontierSet
from repro.optimize.spec import Evaluation, OptimizeQuery, better
from repro.utils.rng import SeedLike, as_seed_sequence

__all__ = [
    "SEED_NAMESPACE",
    "RESTART_NAMESPACE",
    "candidate_seed",
    "SearchOutcome",
    "search_frontier",
]

#: Spawn-key namespace for per-rung verification seeds (``0x6F70`` is
#: ASCII ``"op"``).  Keeps optimizer-spawned seed sequences disjoint
#: from ``root.spawn(n)`` children and from the restart stream.
SEED_NAMESPACE = 0x6F70

#: Spawn-key namespace for the random-restart stream.
RESTART_NAMESPACE = 0x6F71

#: Quantiles of the ladder probed as deterministic shotgun inits.
_INIT_QUANTILES = (0.0, 0.25, 0.5, 0.75, 1.0)


def candidate_seed(seed: SeedLike, rung: int) -> np.random.SeedSequence:
    """The deterministic Monte-Carlo seed for one ladder rung.

    Built from the root's entropy with an explicit namespaced spawn key
    — *not* ``spawn()``, which mutates the parent — so the seed of rung
    ``r`` depends only on ``(seed, r)``: candidate lists of different
    searches over the same ladder address the same store entries.
    """
    root = as_seed_sequence(seed)
    if rung < 0:
        raise ConfigurationError(f"rung must be >= 0, got {rung}")
    return np.random.SeedSequence(
        entropy=root.entropy, spawn_key=(*root.spawn_key, SEED_NAMESPACE, rung)
    )


@dataclass(frozen=True)
class SearchOutcome:
    """Everything a search learned.

    Attributes
    ----------
    frontier:
        The surrogate Pareto frontier, ordered by increasing ``p``.
    evaluations:
        Every probe, ladder rung to evaluation.
    probes:
        Number of distinct rungs evaluated.
    restarts:
        Random restarts performed.
    steps:
        Hillclimb moves taken across all starts.
    """

    frontier: tuple[Evaluation, ...]
    evaluations: dict[int, Evaluation]
    probes: int
    restarts: int
    steps: int


# The evaluator contract: rung indices in, evaluations out (same order).
Evaluator = Callable[[Sequence[int]], Sequence[Evaluation]]


def _climb(
    evaluate: Evaluator,
    seen: dict[int, Evaluation],
    query: OptimizeQuery,
    start: int,
    n: int,
    neighborhood: int,
    max_steps: int,
) -> int:
    """Hillclimb from one rung; returns moves taken.

    Neighbors are probed at doubling offsets (±1, ±2, ... ±2^(k-1));
    the climb moves to the best strictly-better neighbor under
    :func:`better` (whose tie-break prefers lower ``p``, so exact
    plateaus drain leftward in up-to-max-offset jumps) and stops at a
    local optimum.
    """
    _probe(evaluate, seen, [start])
    current = start
    steps = 0
    for _ in range(max_steps):
        offsets = [1 << k for k in range(neighborhood)]
        cand = sorted(
            {
                r
                for off in offsets
                for r in (current - off, current + off)
                if 0 <= r < n
            }
        )
        _probe(evaluate, seen, cand)
        best = current
        for r in cand:
            if better(seen[r], seen[best], query):
                best = r
        if best == current:
            break
        current = best
        steps += 1
    return steps


def _probe(
    evaluate: Evaluator, seen: dict[int, Evaluation], rungs: Sequence[int]
) -> None:
    fresh = [r for r in rungs if r not in seen]
    if not fresh:
        return
    for r, ev in zip(fresh, evaluate(fresh), strict=True):
        seen[r] = ev


def search_frontier(
    evaluate: Evaluator,
    ladder: Sequence[float] | np.ndarray,
    query: OptimizeQuery,
    seed: SeedLike = None,
    *,
    restarts: int = 4,
    neighborhood: int = 6,
    max_steps: int = 64,
) -> SearchOutcome:
    """Run the shotgun + hillclimb search over a probability ladder.

    Parameters
    ----------
    evaluate:
        Batch evaluator: ladder rung indices in, evaluations out.  The
        library passes a telemetry-wrapped
        :meth:`~repro.optimize.surrogate.SurrogateModel.evaluate`.
    ladder:
        The probability grid being searched (only its length matters
        here; rungs index into it).
    query:
        Bounds and objectives.
    seed:
        Entropy for the random restarts; deterministic inits and climbs
        are unaffected.  With ``restarts=0`` the search is fully
        deterministic and the seed is never consumed.
    restarts:
        Random restart count (uniform rungs from a namespaced child of
        ``seed``).
    neighborhood:
        Doubling-offset levels per climb step (6 probes offsets up to
        ±32 rungs).
    max_steps:
        Hillclimb move cap per start.
    """
    n = len(ladder)
    if n == 0:
        raise ConfigurationError("ladder must be non-empty")
    if restarts < 0:
        raise ConfigurationError(f"restarts must be >= 0, got {restarts}")
    if neighborhood < 1:
        raise ConfigurationError(f"neighborhood must be >= 1, got {neighborhood}")

    starts = sorted({int(round(f * (n - 1))) for f in _INIT_QUANTILES})
    if restarts:
        root = as_seed_sequence(seed)
        rng = np.random.default_rng(
            np.random.SeedSequence(
                entropy=root.entropy,
                spawn_key=(*root.spawn_key, RESTART_NAMESPACE),
            )
        )
        starts += [int(r) for r in rng.integers(0, n, size=restarts)]

    seen: dict[int, Evaluation] = {}
    steps = 0
    for start in starts:
        steps += _climb(evaluate, seen, query, start, n, neighborhood, max_steps)

    frontier = FrontierSet(query)
    for rung in sorted(seen):
        frontier.consider(seen[rung])
    return SearchOutcome(
        frontier=frontier.points,
        evaluations=seen,
        probes=len(seen),
        restarts=restarts,
        steps=steps,
    )
