"""Pareto-frontier maintenance with dominance pruning.

A :class:`FrontierSet` holds the mutually non-dominated *feasible*
evaluations seen so far, under the query's objective senses.  Offering
a dominated point is a no-op; offering a dominating point evicts
everything it dominates.  Exact objective ties keep only the lowest
``p`` (the figures' dense-grid convention), so a frontier is a
deterministic function of the set of evaluations offered, independent
of order — pinned by tests.

For a single-objective query the frontier is simply the best feasible
point; multi-objective queries get the menu the quantifind pattern
(SNIPPETS Snippet 3) maintains: every trade-off a deployment planner
could rationally pick.
"""

from __future__ import annotations

from typing import Iterator

from repro.optimize.spec import Evaluation, OptimizeQuery, objective_key

__all__ = ["FrontierSet", "dominates"]


def dominates(a: Evaluation, b: Evaluation, query: OptimizeQuery) -> bool:
    """True when ``a`` is at least as good as ``b`` on every objective
    and strictly better on at least one (sense-aware)."""
    ka, kb = objective_key(a, query), objective_key(b, query)
    return all(x <= y for x, y in zip(ka, kb, strict=True)) and ka != kb


class FrontierSet:
    """The mutually non-dominated feasible evaluations seen so far."""

    def __init__(self, query: OptimizeQuery) -> None:
        self.query = query
        self._points: list[Evaluation] = []

    def consider(self, ev: Evaluation) -> bool:
        """Offer one evaluation; returns True if it joined the frontier.

        Infeasible evaluations never join.  An exact objective tie with
        a resident point keeps whichever has the lower ``p``.
        """
        if not ev.feasible:
            return False
        key = objective_key(ev, self.query)
        for q in self._points:
            kq = objective_key(q, self.query)
            if all(x <= y for x, y in zip(kq, key, strict=True)):
                # q dominates ev, or ties it; on a tie the lower p stays.
                if kq != key or q.p <= ev.p:
                    return False
        self._points = [
            q
            for q in self._points
            if not dominates(ev, q, self.query)
            and not (objective_key(q, self.query) == key and ev.p < q.p)
        ]
        self._points.append(ev)
        self._points.sort(key=lambda e: e.p)
        return True

    def extend(self, evaluations: Iterator[Evaluation] | list[Evaluation]) -> None:
        """Offer a batch of evaluations."""
        for ev in evaluations:
            self.consider(ev)

    @property
    def points(self) -> tuple[Evaluation, ...]:
        """Frontier members, ordered by increasing ``p``."""
        return tuple(self._points)

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[Evaluation]:
        return iter(self._points)

    def __contains__(self, ev: object) -> bool:
        return any(q == ev for q in self._points)
