"""The cheap tier of the two-tier evaluator: the analytical ring model.

Every search probe is answered by the paper's own ring recursion — a
closed-form surrogate that costs microseconds per probability via the
batched :meth:`~repro.analysis.ring_model.RingModel.run_batch` — so the
Monte-Carlo simulator is reserved for *verifying* the handful of
candidates the search shortlists (see :mod:`repro.optimize.verify`).

Traces are memoized per probability: adjacent queries against one
:class:`SurrogateModel` re-derive their metrics from cached traces
without re-running the recursion, and ``run_batch`` is bit-identical
per trace regardless of batch composition, so a memoized probe equals
a dense-sweep probe exactly.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.config import AnalysisConfig
from repro.analysis.metrics import QUIESCENCE_PHASES
from repro.analysis.ring_model import RingModel
from repro.analysis.trace import BroadcastTrace
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans
from repro.optimize.spec import Evaluation, OptimizeQuery, evaluate_trace
from repro.sim.config import SimulationConfig

__all__ = ["SurrogateModel"]


class SurrogateModel:
    """Memoizing analytical evaluator over broadcast probabilities.

    Parameters
    ----------
    config:
        A :class:`~repro.sim.config.SimulationConfig` — carrier-sense
        scenarios get the Appendix-A
        :class:`~repro.analysis.carrier_model.CarrierRingModel`, others
        the plain ring model — or a bare
        :class:`~repro.analysis.config.AnalysisConfig`.
    max_phases:
        Recursion horizon; the quiescent default serves every metric
        (truncating at a latency budget would yield the same
        interpolated values, see the trace's ``reachability_after``).

    Attributes
    ----------
    probes:
        Fresh recursion runs paid so far (cache misses).
    hits:
        Probe requests served from the trace memo.
    """

    def __init__(
        self,
        config: SimulationConfig | AnalysisConfig,
        *,
        max_phases: int = QUIESCENCE_PHASES,
    ) -> None:
        if isinstance(config, SimulationConfig):
            analysis = config.analysis
            if config.carrier_sense:
                from repro.analysis.carrier_model import CarrierRingModel

                self.model: RingModel = CarrierRingModel(analysis)
            else:
                self.model = RingModel(analysis)
        else:
            self.model = RingModel(config)
        self.max_phases = max_phases
        self.probes = 0
        self.hits = 0
        self._traces: dict[float, BroadcastTrace] = {}

    @property
    def config(self) -> AnalysisConfig:
        """The analytical configuration the surrogate runs under."""
        return self.model.config

    def trace(self, p: float) -> BroadcastTrace:
        """The (memoized) quiescent trace at one probability."""
        return self.traces([p])[0]

    def traces(self, ps: Sequence[float]) -> list[BroadcastTrace]:
        """Memoized traces for a batch of probabilities.

        Cache misses run through one batched recursion; per-trace
        output is bit-identical to any other batch composition.
        """
        wanted = [float(p) for p in ps]
        cached = sum(1 for p in wanted if p in self._traces)
        missing = sorted({p for p in wanted if p not in self._traces})
        if missing:
            prof = obs_spans.profiler()
            begin = prof.begin if prof.enabled else None
            h = begin("optimize.surrogate", "optimize") if begin is not None else None
            batch = self.model.run_batch(
                np.asarray(missing, dtype=float), max_phases=self.max_phases
            )
            for p, trace in zip(missing, batch, strict=True):
                self._traces[p] = trace
            self.probes += len(missing)
            if h is not None:
                h.end(probes=len(missing))
            reg = obs_metrics.registry()
            if reg.enabled:
                reg.counter("optimize.surrogate_probes").inc(len(missing))
        self.hits += cached
        return [self._traces[p] for p in wanted]

    def evaluate(
        self, query: OptimizeQuery, ps: Sequence[float]
    ) -> list[Evaluation]:
        """Evaluate a query at a batch of probabilities."""
        return [evaluate_trace(t, query) for t in self.traces(ps)]
