"""Hierarchical wall-time spans: where did this sweep's seconds go?

Slot-level tracing (:mod:`repro.obs.trace`) answers "what happened
*inside* a simulation run"; spans answer "where did the *wall time* of a
whole pipeline invocation go" — runner → store → engine → optimize.  A
span is one timed region with a name, a category, a parent link (spans
nest per thread), and optional counters (cache hits, slots advanced,
bytes written) attached when it closes.

Design constraints, mirroring the tracer:

1. **Zero overhead when disabled.**  Instrumented code hoists one guard
   per function call::

       prof = spans.profiler()
       begin = prof.begin if prof.enabled else None
       ...
       h = begin("engine.slot_loop", "engine") if begin is not None else None
       ...work...
       if h is not None:
           h.end(slots=n_slots)

   With no sink attached the cost per call site is a single attribute
   read plus an ``is not None`` test — no objects, no clock reads.  The
   ``obs-neutrality`` lint rule enforces the discipline: a direct
   ``prof.begin(...)``/``prof.end(...)`` attribute call outside
   :mod:`repro.obs` is a finding.
2. **Thread- and process-safe identity.**  Span ids are allocated under
   a lock; the parent stack is thread-local; every emitted
   :class:`SpanEvent` carries ``pid``/``tid``, so merged traces from
   several threads (or JSONL files from several processes) stay
   attributable.  Like trace sinks, span sinks are *not* inherited by
   pool workers — profile with ``workers=1`` (the default everywhere).
3. **Emit-on-close.**  A span is delivered to the sinks when it ends,
   so a region that raises simply never reports (and any still-open
   children are discarded from the stack, keeping later parent links
   sane).  Exports order by start time, which restores the tree.

For cool paths (CLIs, scripts, tests) the module-level :func:`span`
context manager and :func:`traced` decorator wrap the same machinery
behind an internal enabled check.

Export lives in :mod:`repro.obs.export` (Chrome trace-event JSON and
JSONL); :mod:`repro.obs.report` renders fused run reports.
"""

from __future__ import annotations

import functools
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, ParamSpec, Protocol, TypeVar

__all__ = [
    "SpanEvent",
    "Span",
    "SpanSink",
    "SpanBuffer",
    "SpanProfiler",
    "profiler",
    "capture_spans",
    "span",
    "traced",
    "span_to_dict",
    "span_from_dict",
]

_P = ParamSpec("_P")
_R = TypeVar("_R")


@dataclass(frozen=True)
class SpanEvent:
    """One completed timed region.

    Attributes
    ----------
    name:
        Dotted region name (``"sweep.grid"``, ``"engine.slot_loop"``).
    cat:
        Coarse layer for grouping/coloring: ``"runner"``, ``"store"``,
        ``"engine"``, ``"optimize"`` (free-form).
    start:
        Seconds since the profiler's epoch (a ``perf_counter`` origin
        fixed at profiler creation — monotonic, not wall-clock).
    dur:
        Wall seconds the region took.
    span_id, parent_id:
        Process-unique id and the id of the enclosing span on the same
        thread (``None`` for roots).
    pid, tid:
        Operating-system process id and Python thread id.
    counters:
        Values attached at close: cache hits, slots advanced, bytes.
    """

    name: str
    cat: str
    start: float
    dur: float
    span_id: int
    parent_id: int | None
    pid: int
    tid: int
    counters: dict[str, float] = field(default_factory=dict)


class SpanSink(Protocol):
    """Anything with an ``emit(span)`` method can receive closed spans."""

    def emit(self, span: SpanEvent) -> None: ...


class Span:
    """An open span handle returned by :meth:`SpanProfiler.begin`.

    The handle exists only on the enabled path (callers guard the
    hoisted ``begin`` with ``is not None``), so ``h.end(...)`` never
    runs work when profiling is off.
    """

    __slots__ = ("_profiler", "name", "cat", "span_id", "parent_id", "_t0", "counters")

    def __init__(
        self,
        profiler: "SpanProfiler",
        name: str,
        cat: str,
        span_id: int,
        parent_id: int | None,
        t0: float,
    ) -> None:
        self._profiler = profiler
        self.name = name
        self.cat = cat
        self.span_id = span_id
        self.parent_id = parent_id
        self._t0 = t0
        self.counters: dict[str, float] = {}

    def add(self, **counters: float) -> None:
        """Accumulate counter values while the span is open."""
        for key, value in counters.items():
            self.counters[key] = self.counters.get(key, 0.0) + float(value)

    def end(self, **counters: float) -> SpanEvent:
        """Close the span: merge ``counters``, emit, return the event."""
        return self._profiler._finish(self, counters)


class SpanBuffer:
    """Keep every closed span in memory, in completion order."""

    def __init__(self) -> None:
        self._spans: list[SpanEvent] = []

    def emit(self, span: SpanEvent) -> None:
        self._spans.append(span)

    @property
    def spans(self) -> list[SpanEvent]:
        """The buffered spans, in completion (close) order."""
        return list(self._spans)

    def named(self, name: str) -> list[SpanEvent]:
        """Buffered spans with one name, in completion order."""
        return [s for s in self._spans if s.name == name]

    def clear(self) -> None:
        self._spans.clear()

    def __len__(self) -> int:
        return len(self._spans)


class _ThreadStacks(threading.local):
    """Per-thread open-span stack (parent links are per thread)."""

    def __init__(self) -> None:
        self.stack: list[Span] = []


class SpanProfiler:
    """Fan-out point for span events, with pluggable sinks.

    Hot-path contract: reading :attr:`enabled` is one attribute access;
    :meth:`begin`/:meth:`Span.end` run only when a sink is attached.
    """

    def __init__(self) -> None:
        self._sinks: list[SpanSink] = []
        self.enabled = False
        self._lock = threading.Lock()
        self._next_id = 1
        self._stacks = _ThreadStacks()
        self._epoch = time.perf_counter()

    # ------------------------------------------------------------------
    # sink management (mirrors the tracer)
    # ------------------------------------------------------------------
    def attach(self, sink: SpanSink) -> None:
        """Add a sink (idempotent)."""
        if sink not in self._sinks:
            self._sinks.append(sink)
        self.enabled = True

    def detach(self, sink: SpanSink) -> None:
        """Remove a sink; unknown sinks are ignored."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass
        self.enabled = bool(self._sinks)

    @property
    def sinks(self) -> tuple[SpanSink, ...]:
        return tuple(self._sinks)

    # ------------------------------------------------------------------
    # span lifecycle
    # ------------------------------------------------------------------
    def begin(self, name: str, cat: str = "") -> Span:
        """Open a span as a child of this thread's innermost open span."""
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        stack = self._stacks.stack
        parent_id = stack[-1].span_id if stack else None
        handle = Span(self, name, cat, span_id, parent_id, time.perf_counter())
        stack.append(handle)
        return handle

    def end(self, handle: Span, **counters: float) -> SpanEvent:
        """Close ``handle`` (equivalent to ``handle.end(**counters)``)."""
        return self._finish(handle, counters)

    def _finish(self, handle: Span, counters: dict[str, float]) -> SpanEvent:
        dur = time.perf_counter() - handle._t0
        stack = self._stacks.stack
        if handle in stack:
            # Pop through any abandoned (never-ended) children so later
            # spans do not parent onto a dead handle.
            while stack:
                if stack.pop() is handle:
                    break
        merged = handle.counters
        for key, value in counters.items():
            merged[key] = merged.get(key, 0.0) + float(value)
        event = SpanEvent(
            name=handle.name,
            cat=handle.cat,
            start=handle._t0 - self._epoch,
            dur=dur,
            span_id=handle.span_id,
            parent_id=handle.parent_id,
            pid=os.getpid(),
            tid=threading.get_ident(),
            counters=dict(merged),
        )
        for sink in self._sinks:
            sink.emit(event)
        return event


_PROFILER = SpanProfiler()


def profiler() -> SpanProfiler:
    """The process-global profiler instrumented code consults."""
    return _PROFILER


@contextmanager
def capture_spans(sink: SpanSink | None = None) -> Iterator[SpanSink]:
    """Attach ``sink`` (default: a fresh :class:`SpanBuffer`) for a block.

    Yields the sink; on exit it is detached and, if it has a ``close``
    method (e.g. :class:`~repro.obs.export.SpanJsonlSink`), closed.

    >>> from repro.obs import spans
    >>> with spans.capture_spans() as buf:          # doctest: +SKIP
    ...     sweep_grid(cfg, rhos, ps, 30, seed=0)
    >>> buf.named("sweep.grid")[0].dur              # doctest: +SKIP
    """
    if sink is None:
        sink = SpanBuffer()
    _PROFILER.attach(sink)
    try:
        yield sink
    finally:
        _PROFILER.detach(sink)
        close = getattr(sink, "close", None)
        if close is not None:
            close()


@contextmanager
def span(name: str, cat: str = "") -> Iterator[Span | None]:
    """Context-manager convenience for cool paths (CLIs, scripts).

    Yields the open :class:`Span` (or ``None`` when profiling is
    disabled — the disabled cost is one attribute read).  Hot paths use
    the hoisted ``begin``/``is not None`` discipline instead.
    """
    if not _PROFILER.enabled:
        yield None
        return
    handle = _PROFILER.begin(name, cat)
    try:
        yield handle
    finally:
        handle.end()


def traced(
    name: str | None = None, cat: str = ""
) -> Callable[[Callable[_P, _R]], Callable[_P, _R]]:
    """Decorator form of :func:`span` for cool-path functions.

    ``name`` defaults to the function's qualified name.  When profiling
    is disabled the wrapper adds one attribute read and a call frame.
    """

    def decorate(fn: Callable[_P, _R]) -> Callable[_P, _R]:
        label = name if name is not None else fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: _P.args, **kwargs: _P.kwargs) -> _R:
            if not _PROFILER.enabled:
                return fn(*args, **kwargs)
            handle = _PROFILER.begin(label, cat)
            try:
                return fn(*args, **kwargs)
            finally:
                handle.end()

        return wrapper

    return decorate


def span_to_dict(event: SpanEvent) -> dict:
    """The JSONL wire form of one span (plain JSON-safe dict)."""
    return {
        "name": event.name,
        "cat": event.cat,
        "start": event.start,
        "dur": event.dur,
        "span_id": event.span_id,
        "parent_id": event.parent_id,
        "pid": event.pid,
        "tid": event.tid,
        "counters": dict(event.counters),
    }


def span_from_dict(d: dict) -> SpanEvent:
    """Rebuild a :class:`SpanEvent` from :func:`span_to_dict` output."""
    parent = d.get("parent_id")
    return SpanEvent(
        name=str(d["name"]),
        cat=str(d.get("cat", "")),
        start=float(d["start"]),
        dur=float(d["dur"]),
        span_id=int(d["span_id"]),
        parent_id=None if parent is None else int(parent),
        pid=int(d.get("pid", 0)),
        tid=int(d.get("tid", 0)),
        counters={str(k): float(v) for k, v in (d.get("counters") or {}).items()},
    )
