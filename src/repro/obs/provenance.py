"""Provenance manifests: what code, config and entropy produced a result.

A manifest is one JSON document written next to an experiment's outputs
that answers, months later, "how do I re-run exactly this?": the full
configuration, the root seed entropy (and spawn key, for seeds that
were themselves spawned), the git commit, the package versions, wall
and CPU time, and a metrics snapshot.  :func:`config_from_manifest` and
:func:`seed_from_manifest` close the loop — a loaded manifest
reconstructs the objects needed to reproduce the run bit-for-bit.

The writers in :mod:`repro.sim.runner` (``replicate``/``sweep_grid``
with ``manifest_dir=``) and the ``repro-figures`` CLI (``--save-json``)
call :func:`write_manifest`; :func:`repro.experiments.io.load_manifest`
re-exports the loader next to the figure loaders.
"""

from __future__ import annotations

import dataclasses
import json
import math
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    import numpy as np

__all__ = [
    "MANIFEST_SCHEMA",
    "MANIFEST_NAME",
    "start_clock",
    "write_manifest",
    "load_manifest",
    "config_from_manifest",
    "seed_from_manifest",
]

MANIFEST_SCHEMA = "repro.manifest/1"
MANIFEST_NAME = "manifest.json"


def _jsonable(value: Any) -> Any:
    """Recursively convert a value into JSON-safe primitives."""
    if isinstance(value, float):
        return None if math.isnan(value) else value
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonable(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    # numpy scalars / arrays without importing numpy here
    item = getattr(value, "item", None)
    if callable(item) and getattr(value, "shape", None) == ():
        return _jsonable(value.item())
    tolist = getattr(value, "tolist", None)
    if callable(tolist):
        return _jsonable(tolist())
    return repr(value)


def _git_info() -> dict | None:
    """Commit SHA and dirty flag of the source tree, or None outside git."""
    cwd = Path(__file__).resolve().parent
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
        if sha.returncode != 0:
            return None
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
        return {
            "sha": sha.stdout.strip(),
            "dirty": bool(status.stdout.strip()) if status.returncode == 0 else None,
        }
    except (OSError, subprocess.SubprocessError):
        return None


def _package_versions() -> dict:
    from importlib import metadata

    versions = {"python": platform.python_version()}
    for pkg in ("numpy", "scipy", "networkx", "repro"):
        try:
            versions[pkg] = metadata.version(pkg)
        except metadata.PackageNotFoundError:
            module = sys.modules.get(pkg)
            versions[pkg] = getattr(module, "__version__", None)
    return versions


def start_clock() -> tuple[float, float]:
    """A (wall, cpu) clock pair for ``write_manifest(started=...)``."""
    return (time.perf_counter(), time.process_time())


def write_manifest(
    directory: str | Path,
    kind: str,
    *,
    config: Any = None,
    seed: Any = None,
    params: dict | None = None,
    metrics: dict | None = None,
    started: tuple[float, float] | None = None,
    filename: str = MANIFEST_NAME,
) -> Path:
    """Write a provenance manifest into ``directory``; returns its path.

    Parameters
    ----------
    directory:
        Output directory (created if missing); the manifest sits next to
        the artifacts it describes.
    kind:
        What produced the outputs (``"replicate"``, ``"sweep_grid"``,
        ``"runall"``, ...).
    config:
        The :class:`~repro.sim.config.SimulationConfig` or
        :class:`~repro.analysis.config.AnalysisConfig` of the run; any
        dataclass serializes, and :func:`config_from_manifest` restores
        the two known kinds.
    seed:
        The root seed in any :data:`~repro.utils.rng.SeedLike` form; its
        entropy and spawn key are recorded so
        :func:`seed_from_manifest` rebuilds the identical sequence.
    params:
        Free-form invocation parameters (grids, replications, engine,
        figure names, ...).
    metrics:
        A :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`.
    started:
        A :func:`start_clock` pair taken before the work, for wall/CPU
        accounting.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    doc: dict = {
        "schema": MANIFEST_SCHEMA,
        "kind": kind,
        "created_unix": time.time(),
        "argv": list(sys.argv),
        "platform": platform.platform(),
        "versions": _package_versions(),
        "git": _git_info(),
    }
    if seed is not None:
        from repro.utils.rng import as_seed_sequence

        seq = as_seed_sequence(seed)
        doc["seed"] = {
            "entropy": _jsonable(seq.entropy),
            "spawn_key": list(seq.spawn_key),
        }
    if config is not None:
        doc["config_class"] = type(config).__name__
        doc["config"] = _jsonable(config)
    if params is not None:
        doc["params"] = _jsonable(params)
    if metrics is not None:
        doc["metrics"] = _jsonable(metrics)
    if started is not None:
        wall0, cpu0 = started
        doc["wall_time_s"] = time.perf_counter() - wall0
        doc["cpu_time_s"] = time.process_time() - cpu0

    path = directory / filename
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def load_manifest(path: str | Path) -> dict:
    """Load a manifest, accepting the file or its containing directory."""
    path = Path(path)
    if path.is_dir():
        path = path / MANIFEST_NAME
    doc = json.loads(path.read_text())
    if doc.get("schema") != MANIFEST_SCHEMA:
        raise ValueError(
            f"not a repro manifest (schema={doc.get('schema')!r}) at {path}"
        )
    return doc


def config_from_manifest(manifest: dict) -> Any:
    """Reconstruct the recorded configuration object.

    Supports the two config kinds the experiment layer writes
    (``SimulationConfig`` and ``AnalysisConfig``); other recorded
    dataclasses come back as plain dicts.
    """
    cls_name = manifest.get("config_class")
    data = manifest.get("config")
    if data is None:
        raise ValueError("manifest records no config")
    if cls_name == "AnalysisConfig":
        from repro.analysis.config import AnalysisConfig

        return AnalysisConfig(**data)
    if cls_name == "SimulationConfig":
        from repro.analysis.config import AnalysisConfig
        from repro.sim.config import SimulationConfig

        data = dict(data)
        analysis = AnalysisConfig(**data.pop("analysis"))
        return SimulationConfig(analysis=analysis, **data)
    return data


def seed_from_manifest(manifest: dict) -> np.random.SeedSequence:
    """Rebuild the run's root :class:`numpy.random.SeedSequence`."""
    import numpy as np

    info = manifest.get("seed")
    if info is None:
        raise ValueError("manifest records no seed")
    entropy = info["entropy"]
    if isinstance(entropy, list):
        entropy = [int(e) for e in entropy]
    # repro: allow(flow-seed-provenance) — replay boundary: the manifest
    # *is* the recorded seed, so rebuilding from its entropy/spawn_key
    # is how a past run's root seed re-enters the seed-typed world.
    return np.random.SeedSequence(
        entropy=entropy, spawn_key=tuple(int(k) for k in info.get("spawn_key", ()))
    )
