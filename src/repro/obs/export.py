"""Span export: JSONL persistence and Chrome trace-event JSON.

Two wire formats for :class:`~repro.obs.spans.SpanEvent` streams:

* **JSONL** (:class:`SpanJsonlSink` / :func:`read_spans_jsonl`) — one
  span object per line, append-only, crash-tolerant; the round-trip
  format ``repro-report`` consumes.
* **Chrome trace-event JSON** (:func:`to_chrome_trace` /
  :func:`write_chrome_trace`) — a ``{"traceEvents": [...]}`` document of
  ``"ph": "X"`` complete events loadable in ``chrome://tracing`` or
  `Perfetto <https://ui.perfetto.dev>`_.  Timestamps and durations are
  microseconds relative to the profiler epoch; counters and span ids
  ride along in ``args`` so the tree survives viewers that re-derive
  nesting from timestamps alone.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterable, Iterator

from repro.obs.spans import SpanEvent, span_from_dict, span_to_dict

__all__ = [
    "SpanJsonlSink",
    "read_spans_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
]


class SpanJsonlSink:
    """Append closed spans to a JSON-lines file (one span per line)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh: IO[str] | None = None

    def emit(self, span: SpanEvent) -> None:
        if self._fh is None:
            self._fh = self.path.open("a")
        self._fh.write(json.dumps(span_to_dict(span)) + "\n")

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SpanJsonlSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def read_spans_jsonl(path: str | Path) -> Iterator[SpanEvent]:
    """Iterate the spans of a :class:`SpanJsonlSink` file."""
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield span_from_dict(json.loads(line))


def to_chrome_trace(spans: Iterable[SpanEvent]) -> dict:
    """Render spans as a Chrome trace-event document (a JSON-safe dict).

    Every span becomes one ``"ph": "X"`` (complete) event; ``ts``/``dur``
    are integer microseconds.  Viewers nest events per ``(pid, tid)`` by
    timestamp containment, which matches the parent links because spans
    nest per thread by construction.
    """
    events: list[dict] = []
    for s in sorted(spans, key=lambda s: (s.start, s.span_id)):
        args: dict[str, object] = {"span_id": s.span_id}
        if s.parent_id is not None:
            args["parent_id"] = s.parent_id
        args.update(s.counters)
        events.append(
            {
                "name": s.name,
                "cat": s.cat or "span",
                "ph": "X",
                "ts": round(s.start * 1e6),
                "dur": round(s.dur * 1e6),
                "pid": s.pid,
                "tid": s.tid,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: Iterable[SpanEvent], path: str | Path) -> Path:
    """Write :func:`to_chrome_trace` output to ``path``; returns the path."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(to_chrome_trace(spans), indent=1) + "\n")
    return out
