"""Structured run telemetry: tracing, metrics, provenance, progress.

The observability layer for the simulation stack, in four orthogonal
pieces (see DESIGN.md, "Observability"):

* :mod:`repro.obs.trace` — slot-level event tracing with pluggable
  sinks; zero overhead when no sink is attached.
* :mod:`repro.obs.metrics` — a counter/gauge/timer registry the hot
  paths report into when collection is enabled.
* :mod:`repro.obs.provenance` — manifests recording seed entropy,
  config, git SHA and environment next to experiment outputs, with
  helpers to reconstruct the run from a loaded manifest.
* :mod:`repro.obs.progress` — stderr progress/ETA reporting for sweeps
  and the figure battery.
* :mod:`repro.obs.spans` — hierarchical wall-time spans attributing a
  whole pipeline invocation (runner → store → engine → optimize); zero
  overhead when no sink is attached.
* :mod:`repro.obs.export` — span persistence: JSONL and Chrome
  trace-event JSON (``chrome://tracing``/Perfetto).
* :mod:`repro.obs.report` — the ``repro-report`` CLI fusing manifest,
  span trace, event trace, and perf ledger into one run report.

``python -m repro.obs.summarize`` renders traces and manifests.
"""

from repro.obs import export, metrics, progress, provenance, report, spans, trace
from repro.obs.events import (
    ChannelDelivery,
    NodeInformed,
    PhaseComplete,
    RunComplete,
    SearchStep,
    SlotResolved,
    StoreAccess,
)
from repro.obs.metrics import collect, registry
from repro.obs.provenance import (
    config_from_manifest,
    load_manifest,
    seed_from_manifest,
    write_manifest,
)
from repro.obs.spans import SpanBuffer, capture_spans, profiler
from repro.obs.trace import JsonlSink, NullSink, RingBufferSink, capture, get_tracer

__all__ = [
    "trace",
    "metrics",
    "provenance",
    "progress",
    "spans",
    "export",
    "report",
    "SpanBuffer",
    "capture_spans",
    "profiler",
    "SlotResolved",
    "NodeInformed",
    "PhaseComplete",
    "RunComplete",
    "ChannelDelivery",
    "StoreAccess",
    "SearchStep",
    "capture",
    "get_tracer",
    "RingBufferSink",
    "JsonlSink",
    "NullSink",
    "collect",
    "registry",
    "write_manifest",
    "load_manifest",
    "config_from_manifest",
    "seed_from_manifest",
]
