"""Progress reporting for long-running sweeps and figure batteries.

Lines go to *stderr* so they compose with result output on stdout.  Two
shapes:

* :class:`SweepProgress` — a callback for
  :func:`repro.utils.parallel.parallel_map`'s ``progress`` hook.  It
  aggregates completed :class:`~repro.sim.results.RunResult` chunks into
  rate / ETA / collision lines, throttled so a million tiny tasks don't
  melt the terminal.
* :func:`stage` — a one-liner for coarse multi-stage drivers (the
  ``repro-figures`` battery): ``[3/17] fig5a ... done in 2.1s``.
"""

from __future__ import annotations

import sys
import time
from typing import IO, Sequence

__all__ = ["SweepProgress", "stage"]


def _fmt_seconds(s: float) -> str:
    if s >= 3600:
        return f"{s / 3600:.1f}h"
    if s >= 60:
        return f"{s / 60:.1f}m"
    return f"{s:.1f}s"


class SweepProgress:
    """Accumulate task completions into periodic ETA lines.

    Parameters
    ----------
    total:
        Total number of tasks the sweep will run.
    label:
        Prefix for every line (e.g. ``"sweep 7x20x30"``).
    min_interval:
        Minimum seconds between lines (the final line always prints).
    stream:
        Defaults to ``sys.stderr``.
    """

    def __init__(
        self,
        total: int,
        label: str = "sweep",
        *,
        min_interval: float = 0.5,
        stream: IO[str] | None = None,
    ) -> None:
        self.total = total
        self.label = label
        self.min_interval = min_interval
        self.stream = stream if stream is not None else sys.stderr
        self._t0 = time.perf_counter()
        self._last_print = 0.0
        self._done = 0
        self._collisions = 0
        self._reach_sum = 0.0
        self._runs = 0

    def update(self, done: int, total: int, results: Sequence) -> None:
        """``parallel_map`` progress hook: one call per completed chunk."""
        self._done = done
        self.total = total
        for r in results:
            collisions = getattr(r, "collisions", None)
            if collisions is not None:
                self._collisions += collisions
                self._runs += 1
                self._reach_sum += getattr(r, "reachability", 0.0)
        now = time.perf_counter()
        if done < total and (now - self._last_print) < self.min_interval:
            return
        self._last_print = now
        self._print(now)

    def update_blocks(self, done: int, total: int, results: Sequence) -> None:
        """Progress hook for replication-*block* dispatch.

        When the runner batches replications, each ``parallel_map`` item
        is a whole block and its result is a ``list[RunResult]`` —
        ``done``/``total`` arrive in block units, which would make the
        ``X/Y runs`` line and the ETA lie by the block factor.  This
        hook flattens the blocks and advances the run counter by the
        number of runs they actually contain, keeping every printed
        quantity in run units (``self.total`` stays the run total the
        instance was constructed with).
        """
        runs = [r for block in results for r in block]
        self.update(self._done + len(runs), self.total, runs)

    def _print(self, now: float) -> None:
        elapsed = max(now - self._t0, 1e-9)
        rate = self._done / elapsed
        eta = (self.total - self._done) / rate if rate > 0 else float("inf")
        parts = [
            f"[{self.label}] {self._done}/{self.total} runs"
            f" ({100.0 * self._done / max(self.total, 1):.0f}%)",
            f"{rate:.1f} runs/s",
            f"eta {_fmt_seconds(eta)}",
        ]
        if self._runs:
            parts.append(f"collisions/run {self._collisions / self._runs:.1f}")
            parts.append(f"mean reach {self._reach_sum / self._runs:.3f}")
        print(" | ".join(parts), file=self.stream, flush=True)


def stage(
    index: int,
    total: int,
    name: str,
    *,
    elapsed: float | None = None,
    error: str | None = None,
    stream: IO[str] | None = None,
) -> None:
    """One battery-stage line: start, completion, or failure.

    Call with neither ``elapsed`` nor ``error`` when the stage starts,
    with ``elapsed`` when it finishes, with ``error`` when it raises.
    """
    out = stream if stream is not None else sys.stderr
    prefix = f"[{index}/{total}] {name}"
    if error is not None:
        print(f"{prefix} FAILED: {error}", file=out, flush=True)
    elif elapsed is not None:
        print(f"{prefix} done in {_fmt_seconds(elapsed)}", file=out, flush=True)
    else:
        print(f"{prefix} ...", file=out, flush=True)
