"""Typed slot-level trace events.

The observability layer speaks a small, closed vocabulary of events so
that sinks, the summarize CLI, and cross-engine comparison tests all
agree on field names and semantics without schema negotiation:

``SlotResolved``
    One contended slot was resolved by the channel.  Emitted by both
    simulation engines for every slot with at least one transmission.
    ``n_collisions`` counts *receivers* that heard two or more in-range
    transmitters (the vectorized CAM convention), not corrupted-packet
    events, so the two engines emit identical streams on identical
    schedules.
``NodeInformed``
    A field node received the broadcast information for the first time.
``PhaseComplete``
    One aligned time phase finished.
``RunComplete``
    The execution reached quiescence; carries the headline totals of the
    corresponding :class:`~repro.sim.results.RunResult`.
``ChannelDelivery``
    Low-level channel record emitted by
    :meth:`~repro.models.channel.Channel.resolve_slot` implementations
    (CAM/CFM), without phase context — useful when driving a channel
    outside an engine.
``StoreAccess``
    One result-store operation by the crash-safe scheduler
    (:mod:`repro.store.scheduler`): a cache hit/miss, a put of freshly
    computed results, or a corrupt entry dropped for recomputation.
``SearchStep``
    One probe of the :mod:`repro.optimize` frontier search: a surrogate
    evaluation of a ladder rung, or a Monte-Carlo verification of a
    shortlisted candidate.

Events are plain frozen dataclasses; :func:`event_to_dict` /
:func:`event_from_dict` define the JSONL wire form used by
:class:`~repro.obs.trace.JsonlSink` and ``repro.obs.summarize``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields

__all__ = [
    "SlotResolved",
    "NodeInformed",
    "PhaseComplete",
    "RunComplete",
    "ChannelDelivery",
    "StoreAccess",
    "SearchStep",
    "TraceEvent",
    "EVENT_TYPES",
    "event_to_dict",
    "event_from_dict",
]


@dataclass(frozen=True)
class SlotResolved:
    """One slot with transmissions was resolved.

    Attributes
    ----------
    phase:
        1-based phase containing the slot.
    slot:
        Absolute slot index (slot 0 is the first slot of phase 1).
    n_tx:
        Transmitters in the slot (after any last-moment veto).
    n_rx:
        Successful receptions, duplicates included.
    n_collisions:
        Receivers with two or more in-range transmitters this slot.
    """

    phase: int
    slot: int
    n_tx: int
    n_rx: int
    n_collisions: int


@dataclass(frozen=True)
class NodeInformed:
    """A node's first successful reception."""

    node: int
    sender: int
    phase: int
    slot: int


@dataclass(frozen=True)
class PhaseComplete:
    """One aligned phase finished.

    ``informed_total`` counts informed nodes including the source.
    """

    phase: int
    n_tx: int
    n_new: int
    informed_total: int


@dataclass(frozen=True)
class RunComplete:
    """The execution reached quiescence (or the phase cap)."""

    phases: int
    slots: int
    collisions: int
    reachability: float
    n_field_nodes: int
    total_tx: int
    total_rx: int


@dataclass(frozen=True)
class ChannelDelivery:
    """One channel-level slot resolution (no phase context)."""

    model: str
    n_tx: int
    n_rx: int
    n_collided: int


@dataclass(frozen=True)
class StoreAccess:
    """One result-store operation during a store-backed sweep.

    Attributes
    ----------
    op:
        ``"hit"``, ``"miss"``, ``"put"`` or ``"corrupt"``.
    key:
        The content-addressed task key (64 hex chars).
    n_results:
        Results in the batch (0 for misses).
    nbytes:
        Entry size in bytes (0 when unknown, e.g. for misses).
    """

    op: str
    key: str
    n_results: int
    nbytes: int


@dataclass(frozen=True)
class SearchStep:
    """One probe of the frontier search (:mod:`repro.optimize`).

    Attributes
    ----------
    stage:
        ``"probe"`` (surrogate evaluation) or ``"verify"``
        (Monte-Carlo candidate verification).
    rung:
        Ladder rung index probed.
    p:
        The broadcast probability at that rung.
    feasible:
        Whether the query's bounds held at this point.
    value:
        The primary-objective value (NaN while infeasible).
    """

    stage: str
    rung: int
    p: float
    feasible: bool
    value: float


#: Union of every event the observability layer can emit; sinks and the
#: wire-format helpers below are typed against it.
TraceEvent = (
    SlotResolved
    | NodeInformed
    | PhaseComplete
    | RunComplete
    | ChannelDelivery
    | StoreAccess
    | SearchStep
)

EVENT_TYPES: dict[str, type[TraceEvent]] = {
    cls.__name__: cls
    for cls in (
        SlotResolved,
        NodeInformed,
        PhaseComplete,
        RunComplete,
        ChannelDelivery,
        StoreAccess,
        SearchStep,
    )
}


def event_to_dict(event: TraceEvent) -> dict:
    """The JSONL wire form: the event's fields plus an ``"event"`` tag."""
    d = asdict(event)
    d["event"] = type(event).__name__
    return d


def event_from_dict(d: dict) -> TraceEvent:
    """Rebuild a typed event from :func:`event_to_dict` output.

    Unknown tags raise ``ValueError``; extra keys are ignored so traces
    written by newer versions still load.
    """
    name = d.get("event")
    cls = EVENT_TYPES.get(name)
    if cls is None:
        raise ValueError(f"unknown trace event type {name!r}")
    names = {f.name for f in fields(cls)}
    return cls(**{k: v for k, v in d.items() if k in names})
