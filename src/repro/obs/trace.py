"""The event tracing API: a process-global tracer with pluggable sinks.

Design constraints, in order:

1. **Zero overhead when disabled.**  The engines hoist the check to one
   attribute read per run (``emit = tracer.emit if tracer.enabled else
   None``) and one ``is not None`` test per slot; with no sink attached
   nothing else runs, no event objects are allocated.
2. **Composable capture.**  :func:`capture` attaches a sink for the
   dynamic extent of a ``with`` block, so a test (or a user chasing a
   divergence) can trace one run without touching global configuration.
3. **Dumb sinks.**  A sink is anything with an ``emit(event)`` method;
   the tracer fans out to every attached sink in attachment order.

The tracer is process-global: worker processes of a pool start with an
empty sink list (sinks are deliberately not pickled with tasks), so
tracing a pooled sweep means tracing in the workers' initializer or
running ``workers=1``.
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterable, Iterator, Protocol, TypeVar

from repro.obs.events import TraceEvent, event_from_dict, event_to_dict

__all__ = [
    "Sink",
    "Tracer",
    "RingBufferSink",
    "JsonlSink",
    "NullSink",
    "get_tracer",
    "attach",
    "detach",
    "capture",
    "read_jsonl",
]


class Sink(Protocol):
    """Anything with an ``emit(event)`` method can receive events."""

    def emit(self, event: TraceEvent) -> None: ...


_E = TypeVar("_E", bound=TraceEvent)


class Tracer:
    """Fan-out point for trace events.

    Hot-path contract: reading :attr:`enabled` is one attribute access;
    :meth:`emit` is only called when at least one sink is attached.
    """

    __slots__ = ("_sinks", "enabled")

    def __init__(self) -> None:
        self._sinks: list[Sink] = []
        self.enabled = False

    def attach(self, sink: Sink) -> None:
        """Add a sink (idempotent)."""
        if sink not in self._sinks:
            self._sinks.append(sink)
        self.enabled = True

    def detach(self, sink: Sink) -> None:
        """Remove a sink; unknown sinks are ignored."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass
        self.enabled = bool(self._sinks)

    @property
    def sinks(self) -> tuple[Sink, ...]:
        return tuple(self._sinks)

    def emit(self, event: TraceEvent) -> None:
        """Deliver one event to every attached sink."""
        for sink in self._sinks:
            sink.emit(event)


class RingBufferSink:
    """Keep the last ``maxlen`` events in memory (``None`` = unbounded)."""

    def __init__(self, maxlen: int | None = None) -> None:
        self._events: deque[TraceEvent] = deque(maxlen=maxlen)

    def emit(self, event: TraceEvent) -> None:
        self._events.append(event)

    @property
    def events(self) -> list[TraceEvent]:
        """The buffered events, oldest first."""
        return list(self._events)

    def of_type(self, event_type: type[_E]) -> list[_E]:
        """Buffered events of one type, oldest first."""
        return [e for e in self._events if isinstance(e, event_type)]

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)


class JsonlSink:
    """Append events to a JSON-lines file (one event object per line)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh: IO[str] | None = None

    def emit(self, event: TraceEvent) -> None:
        if self._fh is None:
            self._fh = self.path.open("a")
        self._fh.write(json.dumps(event_to_dict(event)) + "\n")

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class NullSink:
    """Count events and drop them (measures the emit path's own cost)."""

    def __init__(self) -> None:
        self.count = 0

    def emit(self, event: TraceEvent) -> None:
        self.count += 1


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-global tracer the engines consult."""
    return _TRACER


def attach(sink: Sink) -> None:
    """Attach a sink to the global tracer until :func:`detach`."""
    _TRACER.attach(sink)


def detach(sink: Sink) -> None:
    """Detach a sink from the global tracer."""
    _TRACER.detach(sink)


@contextmanager
def capture(sink: Sink | None = None) -> Iterator[Sink]:
    """Attach ``sink`` (default: a fresh unbounded ring buffer) for a block.

    Yields the sink; on exit it is detached and, if it has a ``close``
    method (e.g. :class:`JsonlSink`), closed.

    >>> from repro.obs import trace
    >>> with trace.capture() as buf:       # doctest: +SKIP
    ...     run_broadcast(policy, config, seed)
    >>> buf.of_type(SlotResolved)          # doctest: +SKIP
    """
    if sink is None:
        sink = RingBufferSink()
    _TRACER.attach(sink)
    try:
        yield sink
    finally:
        _TRACER.detach(sink)
        close = getattr(sink, "close", None)
        if close is not None:
            close()


def read_jsonl(path: str | Path) -> Iterable[TraceEvent]:
    """Iterate the typed events of a :class:`JsonlSink` file."""
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield event_from_dict(json.loads(line))
