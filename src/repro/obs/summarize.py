"""Render a captured trace or a provenance manifest as a report.

::

    python -m repro.obs.summarize run.jsonl             # slot timeline
    python -m repro.obs.summarize results/manifest.json # provenance

For a JSONL trace the report shows the per-phase timeline (transmissions,
new receptions, collisions), the busiest slots, and the run totals
recomputed *from the event stream* — so it doubles as an end-to-end
check that the trace is faithful: the recomputed total collisions and
final reachability must equal the ``RunResult`` the engine returned
(the acceptance test in ``tests/test_obs_summarize.py`` asserts this).
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
from pathlib import Path

from repro.obs.events import (
    NodeInformed,
    PhaseComplete,
    RunComplete,
    SearchStep,
    SlotResolved,
    StoreAccess,
)
from repro.obs.provenance import MANIFEST_SCHEMA, load_manifest
from repro.obs.trace import read_jsonl

__all__ = ["summarize_trace", "render_trace", "render_manifest", "main"]


def summarize_trace(path: str | Path) -> dict:
    """Aggregate a JSONL trace into the quantities the report prints.

    Returns a dict with ``slots`` (list of :class:`SlotResolved`),
    ``phases`` (list of :class:`PhaseComplete`), ``collisions_total``
    and ``n_informed`` recomputed from slot-level events, plus
    ``reachability`` / ``run`` from the :class:`RunComplete` record
    (``None`` when the trace was truncated before run end).

    Store and optimizer telemetry aggregate too: ``store_ops`` maps each
    :class:`StoreAccess` op (hit/miss/put/corrupt) to its count,
    ``store_put_bytes`` totals persisted bytes, and ``search_steps``
    collects the :class:`SearchStep` ladder walk in emission order.
    """
    slots: list[SlotResolved] = []
    phases: list[PhaseComplete] = []
    informed: list[NodeInformed] = []
    store_ops: dict[str, int] = {}
    store_put_bytes = 0
    search_steps: list[SearchStep] = []
    run: RunComplete | None = None
    n_events = 0
    for event in read_jsonl(path):
        n_events += 1
        if isinstance(event, SlotResolved):
            slots.append(event)
        elif isinstance(event, PhaseComplete):
            phases.append(event)
        elif isinstance(event, NodeInformed):
            informed.append(event)
        elif isinstance(event, StoreAccess):
            store_ops[event.op] = store_ops.get(event.op, 0) + 1
            if event.op == "put":
                store_put_bytes += event.nbytes
        elif isinstance(event, SearchStep):
            search_steps.append(event)
        elif isinstance(event, RunComplete):
            run = event
    collisions_total = sum(s.n_collisions for s in slots)
    n_informed = len(informed)
    reachability = None
    if run is not None and run.n_field_nodes:
        reachability = n_informed / run.n_field_nodes
    return {
        "n_events": n_events,
        "slots": slots,
        "phases": phases,
        "n_informed": n_informed,
        "collisions_total": collisions_total,
        "reachability": reachability,
        "run": run,
        "store_ops": store_ops,
        "store_put_bytes": store_put_bytes,
        "search_steps": search_steps,
    }


def render_trace(path: str | Path, *, max_slots: int = 40) -> str:
    """The human-readable report for one JSONL trace."""
    s = summarize_trace(path)
    lines = [f"trace {path}: {s['n_events']} events"]

    if s["phases"]:
        lines.append("")
        lines.append("phase   tx    new  informed")
        for ph in s["phases"]:
            lines.append(
                f"{ph.phase:5d} {ph.n_tx:5d} {ph.n_new:6d} {ph.informed_total:9d}"
            )

    if s["slots"]:
        lines.append("")
        busiest = sorted(s["slots"], key=lambda e: -e.n_collisions)[:max_slots]
        shown = sorted(busiest, key=lambda e: e.slot)
        lines.append(
            f"slot timeline ({len(shown)} of {len(s['slots'])} active slots, "
            "busiest by collisions):"
        )
        lines.append(" slot phase   tx   rx  coll")
        for ev in shown:
            lines.append(
                f"{ev.slot:5d} {ev.phase:5d} {ev.n_tx:4d} {ev.n_rx:4d} "
                f"{ev.n_collisions:5d}"
            )

    if s["store_ops"]:
        ops = s["store_ops"]
        lines.append("")
        total = sum(ops.values())
        lines.append(f"store accesses ({total} events):")
        for op in ("hit", "miss", "put", "corrupt"):
            if op in ops:
                extra = (
                    f"  ({s['store_put_bytes']} bytes)"
                    if op == "put" and s["store_put_bytes"]
                    else ""
                )
                lines.append(f"  {op:8s} {ops[op]:6d}{extra}")
        for op in sorted(set(ops) - {"hit", "miss", "put", "corrupt"}):
            lines.append(f"  {op:8s} {ops[op]:6d}")

    if s["search_steps"]:
        steps = s["search_steps"]
        lines.append("")
        lines.append(f"search steps ({len(steps)}):")
        lines.append(" stage   rung        p  feasible     value")
        for st in steps:
            lines.append(
                f"{st.stage:>6s} {st.rung:6d} {st.p:8.4f} "
                f"{'yes' if st.feasible else 'no':>9s} {st.value:9.4g}"
            )

    lines.append("")
    lines.append(f"total collisions (from SlotResolved): {s['collisions_total']}")
    lines.append(f"nodes informed   (from NodeInformed): {s['n_informed']}")
    run = s["run"]
    if run is not None:
        lines.append(
            f"run complete: phases={run.phases} slots={run.slots} "
            f"collisions={run.collisions} reachability={run.reachability:.4f} "
            f"tx={run.total_tx} rx={run.total_rx}"
        )
        if run.collisions != s["collisions_total"]:
            lines.append(
                "WARNING: slot-level collision sum disagrees with RunComplete "
                f"({s['collisions_total']} vs {run.collisions}) — truncated trace?"
            )
    else:
        lines.append("no RunComplete event (truncated trace?)")
    return "\n".join(lines)


def render_manifest(path: str | Path) -> str:
    """The human-readable report for one provenance manifest."""
    doc = load_manifest(path)
    lines = [f"manifest {path}: kind={doc.get('kind')}"]
    git = doc.get("git") or {}
    lines.append(
        f"git: {git.get('sha', 'unknown')}"
        + (" (dirty)" if git.get("dirty") else "")
    )
    versions = doc.get("versions", {})
    lines.append(
        "versions: "
        + ", ".join(f"{k}={v}" for k, v in sorted(versions.items()))
    )
    seed = doc.get("seed")
    if seed is not None:
        lines.append(
            f"seed: entropy={seed.get('entropy')} spawn_key={seed.get('spawn_key')}"
        )
    if "config" in doc:
        lines.append(f"config ({doc.get('config_class')}):")
        lines.append(json.dumps(doc["config"], indent=2, sort_keys=True))
    if "params" in doc:
        lines.append("params:")
        lines.append(json.dumps(doc["params"], indent=2, sort_keys=True))
    if "wall_time_s" in doc:
        lines.append(
            f"time: wall {doc['wall_time_s']:.2f}s, cpu {doc.get('cpu_time_s', 0):.2f}s"
        )
    metrics = doc.get("metrics")
    if metrics:
        lines.append("metrics:")
        for name, value in sorted(metrics.items()):
            lines.append(f"  {name}: {value}")
    return "\n".join(lines)


def _is_manifest(path: Path) -> bool:
    if path.is_dir():
        return True
    try:
        with path.open() as fh:
            head = fh.read(4096).lstrip()
        if not head.startswith("{"):
            return False
        first = json.loads(head[: head.index("\n")] if "\n" in head else head)
    except (ValueError, OSError):
        # Multi-line JSON document: fall back to a full parse.
        try:
            first = json.loads(path.read_text())
        except (ValueError, OSError):
            return False
    return isinstance(first, dict) and first.get("schema") == MANIFEST_SCHEMA


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.summarize",
        description="Summarize a JSONL trace or a provenance manifest.",
    )
    parser.add_argument("path", help="trace .jsonl file, manifest.json, or its directory")
    parser.add_argument(
        "--max-slots",
        type=int,
        default=40,
        metavar="N",
        help="cap for the slot-timeline rows (default 40)",
    )
    args = parser.parse_args(argv)
    path = Path(args.path)
    if not path.exists():
        print(f"no such file: {path}", file=sys.stderr)
        return 2
    try:
        if _is_manifest(path):
            print(render_manifest(path))
        else:
            print(render_trace(path, max_slots=args.max_slots))
    except ValueError as exc:
        print(f"cannot summarize {path}: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    # Die quietly when the reader of a pipe goes away (e.g. `... | head`).
    if hasattr(signal, "SIGPIPE"):
        signal.signal(signal.SIGPIPE, signal.SIG_DFL)
    raise SystemExit(main())
