"""``repro-report``: one fused run report from the observability outputs.

Pulls together whichever artifacts a run produced — a span trace
(``--spans``), a provenance manifest (``--manifest``), a slot/store
event trace (``--trace``), the perf ledger (``--bench``), the perf
history (``--history``) — and renders a single terminal or Markdown
report:

* the span tree with wall/self time and root wall-clock coverage,
* top-N span names by aggregate self-time,
* the store hit/miss/put/corrupt breakdown (from spans or trace events),
* the optimizer's probe/verify steps,
* the per-``(rho, p)`` task table of a ``sweep_grid`` manifest,
* perf-vs-seed deltas from ``BENCH_perf.json``,
* the median trajectory from ``BENCH_history.jsonl`` as sparklines.

Sections for inputs not supplied are simply omitted; the CLI exits 0 on
success and 2 when a named input file is missing.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
from pathlib import Path

from repro.obs.events import SearchStep, StoreAccess, TraceEvent
from repro.obs.export import read_spans_jsonl
from repro.obs.provenance import load_manifest
from repro.obs.spans import SpanEvent
from repro.obs.trace import read_jsonl

__all__ = [
    "span_tree_lines",
    "self_times",
    "aggregate_spans",
    "render_spans",
    "render_store_breakdown",
    "render_search_steps",
    "render_task_table",
    "render_perf_deltas",
    "render_history",
    "render_report",
    "main",
]

_SPARK = "▁▂▃▄▅▆▇█"


def _fmt_s(seconds: float) -> str:
    """Seconds for humans: ms below 1 s, 3 significant digits above."""
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.3g}s"


# ----------------------------------------------------------------------
# span analysis
# ----------------------------------------------------------------------
def self_times(spans: list[SpanEvent]) -> dict[int, float]:
    """Self time per span id: duration minus the sum of child durations.

    Clamped at zero — overlapping children (threads) cannot drive a
    parent's self time negative.
    """
    child_total: dict[int, float] = {}
    for s in spans:
        if s.parent_id is not None:
            child_total[s.parent_id] = child_total.get(s.parent_id, 0.0) + s.dur
    return {s.span_id: max(0.0, s.dur - child_total.get(s.span_id, 0.0)) for s in spans}


def aggregate_spans(
    spans: list[SpanEvent],
) -> list[tuple[str, str, int, float, float]]:
    """Per-name rollup: ``(name, cat, count, total_dur, total_self)``,
    sorted by self time descending."""
    selfs = self_times(spans)
    agg: dict[str, tuple[str, int, float, float]] = {}
    for s in spans:
        cat, count, total, self_total = agg.get(s.name, (s.cat, 0, 0.0, 0.0))
        agg[s.name] = (cat, count + 1, total + s.dur, self_total + selfs[s.span_id])
    rows = [
        (name, cat, count, total, self_total)
        for name, (cat, count, total, self_total) in agg.items()
    ]
    rows.sort(key=lambda r: -r[4])
    return rows


def span_tree_lines(spans: list[SpanEvent], *, max_children: int = 12) -> list[str]:
    """Indented tree of the span forest, ordered by start time.

    Each line shows name, category, duration, self time, and the share
    of its root's duration.  Sibling lists longer than ``max_children``
    are elided with a count (profiled sweeps have hundreds of
    ``runner.task`` leaves; the aggregate table covers those).
    """
    selfs = self_times(spans)
    known = {s.span_id for s in spans}
    children: dict[int | None, list[SpanEvent]] = {}
    for s in spans:
        # A span whose parent never closed (it raised) renders as a root.
        parent = s.parent_id if s.parent_id in known else None
        children.setdefault(parent, []).append(s)
    for sibs in children.values():
        sibs.sort(key=lambda s: (s.start, s.span_id))

    lines: list[str] = []

    def walk(s: SpanEvent, depth: int, root_dur: float) -> None:
        share = 100.0 * s.dur / root_dur if root_dur > 0 else 0.0
        cat = f" [{s.cat}]" if s.cat else ""
        extra = ""
        if s.counters:
            shown = ", ".join(
                f"{k}={v:g}" for k, v in sorted(s.counters.items())
            )
            extra = f"  ({shown})"
        lines.append(
            f"{'  ' * depth}{s.name}{cat}: {_fmt_s(s.dur)} "
            f"(self {_fmt_s(selfs[s.span_id])}, {share:.1f}%){extra}"
        )
        kids = children.get(s.span_id, [])
        for kid in kids[:max_children]:
            walk(kid, depth + 1, root_dur)
        if len(kids) > max_children:
            elided = kids[max_children:]
            lines.append(
                f"{'  ' * (depth + 1)}… {len(elided)} more siblings "
                f"({_fmt_s(sum(k.dur for k in elided))})"
            )

    for root in children.get(None, []):
        walk(root, 0, root.dur)
    return lines


def render_spans(spans: list[SpanEvent], *, top: int = 10) -> str:
    """The span sections: tree, then the top-N self-time table."""
    if not spans:
        return "no spans recorded"
    lines = [f"span tree ({len(spans)} spans):"]
    lines.extend(span_tree_lines(spans))
    lines.append("")
    lines.append(f"top {top} span names by self time:")
    lines.append("  self      total     count  name")
    for name, cat, count, total, self_total in aggregate_spans(spans)[:top]:
        label = f"{name} [{cat}]" if cat else name
        lines.append(
            f"  {_fmt_s(self_total):>8}  {_fmt_s(total):>8}  {count:5d}  {label}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# store / search sections
# ----------------------------------------------------------------------
def render_store_breakdown(
    spans: list[SpanEvent], events: list[TraceEvent]
) -> str | None:
    """Hit/miss/put/corrupt breakdown from span counters or trace events.

    Trace events win when present (they carry byte totals); span
    counters on ``store.*`` spans cover runs traced with spans only.
    """
    ops = {"hit": 0, "miss": 0, "put": 0, "corrupt": 0}
    put_bytes = 0
    seen = False
    accesses = [e for e in events if isinstance(e, StoreAccess)]
    if accesses:
        seen = True
        for ev in accesses:
            ops[ev.op] = ops.get(ev.op, 0) + 1
            if ev.op == "put":
                put_bytes += ev.nbytes
    else:
        for s in spans:
            if not s.name.startswith("store."):
                continue
            if s.name == "store.put":
                seen = True
                ops["put"] += 1
                put_bytes += int(s.counters.get("nbytes", 0))
                continue
            for key, target in (
                ("hits", "hit"),
                ("misses", "miss"),
                ("corrupt", "corrupt"),
            ):
                if key in s.counters:
                    seen = True
                    ops[target] += int(s.counters[key])
    if not seen:
        return None
    total = ops["hit"] + ops["miss"]
    rate = f" ({100.0 * ops['hit'] / total:.1f}% hit)" if total else ""
    lines = [
        "store accesses:",
        f"  hits     {ops['hit']:8d}{rate}",
        f"  misses   {ops['miss']:8d}",
        f"  puts     {ops['put']:8d}"
        + (f" ({put_bytes} bytes)" if put_bytes else ""),
        f"  corrupt  {ops['corrupt']:8d}",
    ]
    return "\n".join(lines)


def render_search_steps(events: list[TraceEvent], *, max_rows: int = 20) -> str | None:
    """The optimizer's probe/verify ladder walk, as a table."""
    steps = [e for e in events if isinstance(e, SearchStep)]
    if not steps:
        return None
    probes = sum(1 for s in steps if s.stage == "probe")
    verifies = len(steps) - probes
    lines = [
        f"search steps: {probes} surrogate probes, {verifies} MC verifications",
        "  stage    rung       p  feasible     value",
    ]
    shown = steps[:max_rows]
    for s in shown:
        value = "nan" if s.value != s.value else f"{s.value:.4f}"
        lines.append(
            f"  {s.stage:<7} {s.rung:5d}  {s.p:.4f}  {str(s.feasible):<8}  {value:>8}"
        )
    if len(steps) > max_rows:
        lines.append(f"  … {len(steps) - max_rows} more steps")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# manifest / perf sections
# ----------------------------------------------------------------------
def render_task_table(manifest: dict) -> str:
    """Manifest summary; ``sweep_grid`` manifests get a (rho, p) table."""
    lines = [f"run: kind={manifest.get('kind')}"]
    git = manifest.get("git") or {}
    if git.get("sha"):
        lines.append(
            f"git: {git['sha'][:12]}" + (" (dirty)" if git.get("dirty") else "")
        )
    seed = manifest.get("seed")
    if seed is not None:
        lines.append(f"seed entropy: {seed.get('entropy')}")
    if "wall_time_s" in manifest:
        lines.append(
            f"wall {manifest['wall_time_s']:.3f}s, "
            f"cpu {manifest.get('cpu_time_s', 0.0):.3f}s"
        )
    params = manifest.get("params") or {}
    rhos = params.get("rho_grid")
    ps = params.get("p_grid")
    reps = params.get("replications")
    if rhos and ps and reps:
        lines.append(
            f"task grid: {len(rhos)} rho x {len(ps)} p x {reps} replications "
            f"= {params.get('n_runs', len(rhos) * len(ps) * reps)} tasks"
        )
        header = "  rho \\ p " + "".join(f"{p:>8.3g}" for p in ps)
        lines.append(header)
        for rho in rhos:
            lines.append(f"  {rho:7.3g} " + "".join(f"{reps:>8d}" for _ in ps))
    metrics = manifest.get("metrics")
    if metrics:
        lines.append("metrics snapshot:")
        for name, value in sorted(metrics.items()):
            lines.append(f"  {name}: {value}")
    return "\n".join(lines)


def _resolve_seed(value: object, current: dict[str, float]) -> float | None:
    """A seed entry as a number: absolute, or ``baseline:<key>`` alias."""
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str) and value.startswith("baseline:"):
        return current.get(value[len("baseline:"):])
    return None


def render_perf_deltas(bench: dict) -> str | None:
    """Current-vs-seed medians for every guarded benchmark."""
    current = bench.get("current") or {}
    seeds = bench.get("seed") or {}
    if not current or not seeds:
        return None
    lines = ["perf vs seed (negative = faster than baseline):"]
    lines.append("   current      seed    delta  benchmark")
    for key in sorted(seeds):
        cur = current.get(key)
        base = _resolve_seed(seeds[key], current)
        if cur is None or base is None or base == 0:
            continue
        delta = 100.0 * (cur - base) / base
        name = key.rsplit("::", 1)[-1]
        lines.append(
            f"  {_fmt_s(cur):>8}  {_fmt_s(base):>8}  {delta:+6.1f}%  {name}"
        )
    return "\n".join(lines) if len(lines) > 2 else None


def _sparkline(values: list[float]) -> str:
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARK[0] * len(values)
    return "".join(
        _SPARK[min(len(_SPARK) - 1, int((v - lo) / (hi - lo) * len(_SPARK)))]
        for v in values
    )


def render_history(path: str | Path, *, last: int = 20) -> str | None:
    """The ``BENCH_history.jsonl`` trajectory as per-benchmark sparklines."""
    entries: list[dict] = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    if not entries:
        return None
    entries = entries[-last:]
    first_sha = entries[0].get("sha") or "?"
    last_sha = entries[-1].get("sha") or "?"
    lines = [
        f"perf history: {len(entries)} runs "
        f"({str(first_sha)[:8]} → {str(last_sha)[:8]}), newest right:"
    ]
    keys = sorted(entries[-1].get("medians", {}))
    for key in keys:
        series = [
            float(e["medians"][key])
            for e in entries
            if key in e.get("medians", {})
        ]
        if not series:
            continue
        name = key.rsplit("::", 1)[-1]
        lines.append(f"  {_sparkline(series)}  {_fmt_s(series[-1]):>8}  {name}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# the fused report
# ----------------------------------------------------------------------
def render_report(
    *,
    spans_path: str | Path | None = None,
    manifest_path: str | Path | None = None,
    trace_path: str | Path | None = None,
    bench_path: str | Path | None = None,
    history_path: str | Path | None = None,
    top: int = 10,
    markdown: bool = False,
) -> str:
    """The full report text for whichever inputs are provided."""
    spans = list(read_spans_jsonl(spans_path)) if spans_path is not None else []
    events = list(read_jsonl(trace_path)) if trace_path is not None else []

    sections: list[tuple[str, str]] = []
    if manifest_path is not None:
        sections.append(("Run", render_task_table(load_manifest(manifest_path))))
    if spans_path is not None:
        sections.append(("Wall-time attribution", render_spans(spans, top=top)))
    store = render_store_breakdown(spans, events)
    if store is not None:
        sections.append(("Store", store))
    search = render_search_steps(events)
    if search is not None:
        sections.append(("Optimizer", search))
    if bench_path is not None:
        bench = json.loads(Path(bench_path).read_text())
        deltas = render_perf_deltas(bench)
        if deltas is not None:
            sections.append(("Benchmarks", deltas))
    if history_path is not None:
        history = render_history(history_path)
        if history is not None:
            sections.append(("Perf trajectory", history))

    if not sections:
        return "nothing to report (no inputs produced a section)"
    parts: list[str] = []
    for title, body in sections:
        if markdown:
            parts.append(f"## {title}\n\n```\n{body}\n```")
        else:
            parts.append(f"=== {title} ===\n{body}")
    return "\n\n".join(parts)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-report",
        description=(
            "Fuse a span trace, provenance manifest, event trace, and perf "
            "ledger into one run report."
        ),
    )
    parser.add_argument("--spans", metavar="JSONL", help="span trace (SpanJsonlSink)")
    parser.add_argument(
        "--manifest", metavar="JSON", help="provenance manifest file or directory"
    )
    parser.add_argument("--trace", metavar="JSONL", help="event trace (JsonlSink)")
    parser.add_argument(
        "--bench", metavar="JSON", help="BENCH_perf.json for perf-vs-seed deltas"
    )
    parser.add_argument(
        "--history", metavar="JSONL", help="BENCH_history.jsonl for the trajectory"
    )
    parser.add_argument(
        "--top", type=int, default=10, metavar="N", help="self-time table rows"
    )
    parser.add_argument(
        "--markdown", action="store_true", help="emit Markdown sections"
    )
    args = parser.parse_args(argv)

    inputs = {
        "spans": args.spans,
        "manifest": args.manifest,
        "trace": args.trace,
        "bench": args.bench,
        "history": args.history,
    }
    if all(v is None for v in inputs.values()):
        parser.print_usage(sys.stderr)
        print("repro-report: provide at least one input", file=sys.stderr)
        return 2
    for label, value in inputs.items():
        if value is not None and not Path(value).exists():
            print(f"repro-report: no such {label} file: {value}", file=sys.stderr)
            return 2

    try:
        print(
            render_report(
                spans_path=args.spans,
                manifest_path=args.manifest,
                trace_path=args.trace,
                bench_path=args.bench,
                history_path=args.history,
                top=args.top,
                markdown=args.markdown,
            )
        )
    except ValueError as exc:
        print(f"repro-report: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    if hasattr(signal, "SIGPIPE"):
        signal.signal(signal.SIGPIPE, signal.SIG_DFL)
    raise SystemExit(main())
