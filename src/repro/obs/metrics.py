"""A lightweight counter/gauge/timer registry for the hot paths.

Instrumented code (engines, channels, the ``mu`` DP cache, the runner)
holds the pattern::

    reg = metrics.registry()
    ...
    if reg.enabled:
        reg.counter("cam.slots").inc()

so that with collection disabled — the default — the cost per call site
is a single attribute read.  Enable collection around a region with
:func:`collect`::

    with metrics.collect() as reg:
        run_broadcast(policy, config, seed)
    reg.snapshot()["engine.collisions"]

The registry is process-global and *not* thread- or process-safe:
worker processes of a pool each accumulate into their own copy (they
inherit the enabled flag through fork, but the parent never sees their
values).  Serial runs (``workers=1``, the default everywhere) capture
everything.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, TypeVar

__all__ = ["Counter", "Gauge", "Timer", "MetricsRegistry", "registry", "collect"]

_M = TypeVar("_M", "Counter", "Gauge", "Timer")


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Timer:
    """Accumulated wall time over any number of timed sections."""

    __slots__ = ("total", "count")

    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0

    def add(self, seconds: float) -> None:
        self.total += seconds
        self.count += 1

    @contextmanager
    def time(self) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add(time.perf_counter() - t0)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Named metrics, created on first use.

    A name is permanently bound to the kind that first claimed it;
    asking for the same name as a different kind raises ``TypeError``.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._metrics: dict[str, Counter | Gauge | Timer] = {}

    def _get(self, name: str, cls: type[_M]) -> _M:
        m = self._metrics.get(name)
        if m is None:
            m = self._metrics[name] = cls()
        elif not isinstance(m, cls):
            raise TypeError(
                f"metric {name!r} is a {type(m).__name__}, not a {cls.__name__}"
            )
        return m

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def timer(self, name: str) -> Timer:
        return self._get(name, Timer)

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop every metric (keeps the enabled flag)."""
        self._metrics.clear()

    def snapshot(self) -> dict:
        """A JSON-ready copy of every metric's current value.

        Counters and gauges map to their value; timers map to
        ``{"total_s", "count", "mean_s"}``.
        """
        out: dict = {}
        for name, m in sorted(self._metrics.items()):
            if isinstance(m, Timer):
                out[name] = {
                    "total_s": m.total,
                    "count": m.count,
                    "mean_s": m.mean,
                }
            else:
                out[name] = m.value
        return out


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global registry instrumented code consults."""
    return _REGISTRY


@contextmanager
def collect(*, reset: bool = True) -> Iterator[MetricsRegistry]:
    """Enable collection for a block; yields the registry.

    ``reset=True`` (default) clears previous values on entry so the
    snapshot after the block reflects just that block.  The previous
    enabled state is restored on exit (values are kept for inspection).
    """
    prev = _REGISTRY.enabled
    if reset:
        _REGISTRY.reset()
    _REGISTRY.enable()
    try:
        yield _REGISTRY
    finally:
        _REGISTRY.enabled = prev
