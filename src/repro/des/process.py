"""Generator-based processes on top of the event kernel.

A process is a generator that yields :class:`Timeout` objects; the
kernel resumes it when the timeout elapses.  This is the minimal slice
of the simpy programming model the network simulator needs (simpy
itself is not available offline), and it keeps protocol code in
straight-line style::

    def node_behaviour(sim):
        yield Timeout(1.5)        # back off
        transmit()
        yield Timeout(slot_len)   # transmission duration
        done()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.errors import SimulationError

__all__ = ["Timeout", "Process"]


@dataclass(frozen=True)
class Timeout:
    """Yielded by a process to sleep for ``delay`` simulation time."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise SimulationError(f"negative timeout: {self.delay}")


class Process:
    """Drives one generator as a cooperative simulation process."""

    def __init__(self, sim, generator: Generator):
        self.sim = sim
        self.generator = generator
        self.finished = False
        self.value = None

    def start(self):
        """Schedule the first resume immediately; returns the event handle."""
        return self.sim.schedule(0.0, self._resume)

    def _resume(self) -> None:
        try:
            yielded = next(self.generator)
        except StopIteration as stop:
            self.finished = True
            self.value = stop.value
            return
        if not isinstance(yielded, Timeout):
            raise SimulationError(
                f"process yielded {yielded!r}; only Timeout is supported"
            )
        self.sim.schedule(yielded.delay, self._resume)
