"""Event records for the DES kernel."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Event", "EventHandle"]


@dataclass(order=True)
class Event:
    """A scheduled callback, ordered by ``(time, priority, seq)``.

    ``seq`` is the kernel-assigned insertion number; it makes the heap
    order total and therefore the execution order deterministic.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """A caller-facing ticket for a scheduled event.

    Supports cancellation (lazy: the kernel skips cancelled events when
    they surface) and inspection of the scheduled time.
    """

    __slots__ = ("_event",)

    def __init__(self, event: Event):
        self._event = event

    @property
    def time(self) -> float:
        """Scheduled execution time."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called before execution."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from running (idempotent; no effect if run)."""
        self._event.cancelled = True
