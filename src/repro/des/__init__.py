"""A small discrete-event simulation kernel.

Stands in for the event engine the paper's authors got from GloMoSim.
The kernel is deliberately generic — a time-ordered event heap with
deterministic tie-breaking, plus generator-based processes — so the
object-level network simulator (:mod:`repro.sim.desimpl`) reads like
protocol pseudocode.

Determinism contract: two runs scheduling the same callbacks at the
same times execute them in the same order (ties break by priority,
then insertion order), so seeded simulations are bit-reproducible.
"""

from repro.des.events import Event, EventHandle
from repro.des.simulator import Simulator
from repro.des.process import Process, Timeout

__all__ = ["Event", "EventHandle", "Simulator", "Process", "Timeout"]
