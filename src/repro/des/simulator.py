"""The event-loop core of the DES kernel."""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable

from repro.des.events import Event, EventHandle
from repro.errors import SimulationError

__all__ = ["Simulator"]


class Simulator:
    """A deterministic discrete-event simulator.

    Events run in ``(time, priority, insertion)`` order; scheduling into
    the past raises.  The loop is re-entrant with respect to
    scheduling — callbacks routinely schedule more events — but not with
    respect to :meth:`run` itself.

    Examples
    --------
    >>> sim = Simulator()
    >>> log = []
    >>> _ = sim.schedule(2.0, log.append, "b")
    >>> _ = sim.schedule(1.0, log.append, "a")
    >>> sim.run()
    >>> log
    ['a', 'b']
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[Event] = []
        self._seq = 0
        self._running = False
        self._executed = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of scheduled (possibly cancelled) events."""
        return len(self._heap)

    @property
    def events_executed(self) -> int:
        """Total callbacks executed so far (cancelled events excluded)."""
        return self._executed

    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` from now."""
        if delay < 0 or math.isnan(delay):
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute time."""
        if time < self._now or math.isnan(time):
            raise SimulationError(
                f"cannot schedule at {time} (now is {self._now})"
            )
        event = Event(time=float(time), priority=priority, seq=self._seq, callback=callback, args=args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def process(self, generator) -> "EventHandle":
        """Adopt a generator-based process (see :mod:`repro.des.process`)."""
        from repro.des.process import Process

        proc = Process(self, generator)
        return proc.start()

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next non-cancelled event; False when none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time < self._now:  # pragma: no cover - heap invariant
                raise SimulationError("event heap returned a past event")
            self._now = event.time
            self._executed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: float | None = None, *, max_events: int | None = None) -> None:
        """Run until the heap empties, ``until`` is passed, or the budget hits.

        Parameters
        ----------
        until:
            Stop *before* executing events later than this time; the
            clock then advances exactly to ``until``.
        max_events:
            Safety valve for runaway models; raises
            :class:`~repro.errors.SimulationError` when exceeded.
        """
        if self._running:
            raise SimulationError("Simulator.run is not re-entrant")
        self._running = True
        executed = 0
        try:
            while self._heap:
                nxt = self._heap[0]
                if nxt.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and nxt.time > until:
                    break
                if not self.step():  # pragma: no cover - guarded by loop cond
                    break
                executed += 1
                if max_events is not None and executed > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway model?"
                    )
            if until is not None and self._now < until:
                self._now = float(until)
        finally:
            self._running = False
