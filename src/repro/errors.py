"""Exception hierarchy for :mod:`repro`.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch library failures without
masking genuine bugs (``TypeError`` from numpy, etc.).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ModelError",
    "ConvergenceError",
    "SimulationError",
    "ProtocolError",
    "InfeasibleConstraintError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter or combination of parameters was supplied."""


class ModelError(ReproError):
    """The analytical model was used outside its domain of validity."""


class ConvergenceError(ModelError):
    """An iterative computation failed to converge within its budget."""


class SimulationError(ReproError):
    """The discrete-event or slotted simulator reached an invalid state."""


class ProtocolError(SimulationError):
    """A protocol implementation violated the engine contract."""


class InfeasibleConstraintError(ModelError):
    """A requested constraint (reachability/latency/energy) cannot be met.

    Raised, for example, when a reachability target exceeds what a given
    broadcast probability can ever deliver (paper Sec. 4.2.4: for some
    ``(p, rho)`` combinations 72% reachability is unattainable).
    """
