"""Exception hierarchy for :mod:`repro`.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch library failures without
masking genuine bugs (``TypeError`` from numpy, etc.).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ModelError",
    "ConvergenceError",
    "SimulationError",
    "ProtocolError",
    "InfeasibleConstraintError",
    "ParallelExecutionError",
    "StoreError",
    "StoreCorruptionError",
    "SchedulerError",
    "ServeError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter or combination of parameters was supplied."""


class ModelError(ReproError):
    """The analytical model was used outside its domain of validity."""


class ConvergenceError(ModelError):
    """An iterative computation failed to converge within its budget."""


class SimulationError(ReproError):
    """The discrete-event or slotted simulator reached an invalid state."""


class ProtocolError(SimulationError):
    """A protocol implementation violated the engine contract."""


class InfeasibleConstraintError(ModelError):
    """A requested constraint (reachability/latency/energy) cannot be met.

    Raised, for example, when a reachability target exceeds what a given
    broadcast probability can ever deliver (paper Sec. 4.2.4: for some
    ``(p, rho)`` combinations 72% reachability is unattainable).
    """


class ParallelExecutionError(ReproError):
    """One or more tasks of a :func:`repro.utils.parallel.parallel_map`
    call raised.

    Unlike a raw worker exception, this error reports *which* task
    indices failed while every sibling task still ran to completion.
    ``failures`` holds the per-task
    :class:`~repro.utils.parallel.TaskFailure` records (input index,
    exception, formatted traceback); ``__cause__`` is the first failing
    task's exception.
    """

    def __init__(self, message: str, failures: tuple = ()) -> None:
        super().__init__(message)
        #: tuple of :class:`repro.utils.parallel.TaskFailure`
        self.failures = tuple(failures)


class StoreError(ReproError):
    """A result-store operation failed (I/O, layout, or invalid key)."""


class StoreCorruptionError(StoreError):
    """A store entry failed its checksum or could not be decoded.

    The scheduler treats this as a cache miss and recomputes; the
    ``verify`` CLI surfaces it to the operator.
    """


class SchedulerError(StoreError):
    """Tasks of a store-backed sweep kept failing after bounded retry.

    Everything that *did* complete has already been persisted to the
    store and journaled, so re-running the same sweep (``resume=True``)
    only retries the failed tasks.  ``failures`` holds ``(task_index,
    key, exception)`` triples; ``attempts`` is how many execution
    rounds each surviving failure went through (retries + 1 unless the
    task appeared mid-sweep).
    """

    def __init__(
        self, message: str, failures: tuple = (), attempts: int = 0
    ) -> None:
        super().__init__(message)
        #: tuple of ``(task_index, key, exception)``
        self.failures = tuple(failures)
        #: execution rounds the failing tasks went through
        self.attempts = int(attempts)


class ServeError(ReproError):
    """A serve-tier request failed: malformed wire input, a timeout
    after bounded retry, or a shut-down service.

    Scheduler-level failures surface as :class:`SchedulerError` even
    through the service — the serve tier adds request/transport
    failure modes, it does not re-wrap compute ones.
    """
