"""Random spatial sampling for deployments and Monte-Carlo checks.

All samplers take an explicit :class:`numpy.random.Generator`; nothing
in the library touches global numpy random state.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive, check_positive_int

__all__ = ["sample_disk", "sample_annulus", "sample_ring_offsets"]


def sample_disk(
    n: int, radius: float, rng: np.random.Generator, *, center: tuple[float, float] = (0.0, 0.0)
) -> np.ndarray:
    """Sample ``n`` points uniformly from a disk.

    Uses the inverse-CDF radial transform ``rho = R * sqrt(U)`` rather
    than rejection, so cost is deterministic and fully vectorized.

    Returns
    -------
    numpy.ndarray
        Shape ``(n, 2)`` array of xy coordinates.
    """
    n = check_positive_int("n", n, minimum=0)
    radius = check_positive("radius", radius)
    r = radius * np.sqrt(rng.random(n))
    theta = rng.random(n) * (2.0 * np.pi)
    pts = np.column_stack((r * np.cos(theta), r * np.sin(theta)))
    return pts + np.asarray(center, dtype=float)


def sample_annulus(
    n: int, inner: float, outer: float, rng: np.random.Generator
) -> np.ndarray:
    """Sample ``n`` points uniformly from the annulus ``inner < |p| <= outer``."""
    n = check_positive_int("n", n, minimum=0)
    inner = check_positive("inner", inner, allow_zero=True)
    outer = check_positive("outer", outer)
    if outer <= inner:
        raise ValueError(f"annulus requires outer > inner, got [{inner}, {outer}]")
    # Uniform over area: r^2 uniform on [inner^2, outer^2].
    r = np.sqrt(rng.uniform(inner**2, outer**2, size=n))
    theta = rng.random(n) * (2.0 * np.pi)
    return np.column_stack((r * np.cos(theta), r * np.sin(theta)))


def sample_ring_offsets(
    n: int, ring: int, width: float, rng: np.random.Generator
) -> np.ndarray:
    """Sample radial offsets ``x in [0, width]`` for points uniform in ring ``ring``.

    Within a ring, a uniformly placed node's offset ``x`` from the inner
    boundary follows density proportional to ``(r*(ring-1) + x)`` — the
    same radial weight that appears in the paper's Eq. (4) integrand.
    Used by tests to Monte-Carlo-validate the quadrature.
    """
    n = check_positive_int("n", n, minimum=0)
    ring = check_positive_int("ring", ring)
    width = check_positive("width", width)
    inner = width * (ring - 1)
    outer = width * ring
    r = np.sqrt(rng.uniform(inner**2, outer**2, size=n))
    return r - inner
