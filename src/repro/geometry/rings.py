"""The concentric-ring partition of the sensor field (paper Sec. 4.2.2).

The analytical framework views the circular field of radius ``P*r`` as
``P`` concentric rings of width ``r`` around the source.  For a node
``u`` in ring ``R_j`` at radial offset ``x`` from the ring's inner
boundary, the paper needs

* ``A(x, k)`` — the part of ring ``R_k`` within transmission range ``r``
  of ``u`` (nonzero only for ``k = j-1, j, j+1``), and
* ``B(x, k)`` — the part of ring ``R_k`` within carrier-sense range but
  beyond transmission range of ``u`` (Appendix A; nonzero for
  ``k = j-2 .. j+2`` when the carrier-sense radius is ``2r``).

Rather than transcribing the paper's telescoping subtraction formulas
(which are special cases), we compute every such quantity from a single
primitive, :meth:`RingPartition.ring_disk_overlap` — the area of
``ring_k ∩ disk(u, R)`` — which is exact for all configurations,
including the innermost ring (``D1 = 0``) and the field boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.circles import intersection_area
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["RingPartition"]


@dataclass(frozen=True)
class RingPartition:
    """``n_rings`` concentric rings of width ``radius`` around the origin.

    Rings are numbered ``1 .. n_rings`` from the center, matching the
    paper; ring ``j`` is the annulus ``(r*(j-1), r*j]`` (ring 1 is the
    inner disk).

    Parameters
    ----------
    n_rings:
        The paper's ``P``.
    radius:
        The transmission radius ``r`` (= ring width).  All downstream
        analysis is scale-free in ``r``, so the default of 1 is the
        common choice.
    """

    n_rings: int
    radius: float = 1.0

    def __post_init__(self) -> None:
        check_positive_int("n_rings", self.n_rings)
        check_positive("radius", self.radius)

    # ------------------------------------------------------------------
    # basic ring quantities
    # ------------------------------------------------------------------
    @property
    def field_radius(self) -> float:
        """Radius of the whole field, ``P * r``."""
        return self.n_rings * self.radius

    @property
    def field_area(self) -> float:
        """Area of the whole field, ``pi * (P*r)^2``."""
        return float(np.pi * self.field_radius**2)

    def ring_area(self, k) -> np.ndarray | float:
        """Area ``C_k = pi r^2 (2k - 1)`` of ring ``k`` (vectorized)."""
        k = np.asarray(k)
        if np.any(k < 1) or np.any(k > self.n_rings):
            raise ValueError(f"ring index out of range 1..{self.n_rings}: {k!r}")
        out = np.pi * self.radius**2 * (2.0 * k - 1.0)
        return float(out[()]) if out.ndim == 0 else out

    @property
    def ring_areas(self) -> np.ndarray:
        """``C_1 .. C_P`` as an array (index 0 is ring 1)."""
        return np.pi * self.radius**2 * (2.0 * np.arange(1, self.n_rings + 1) - 1.0)

    def ring_of(self, radial) -> np.ndarray | int:
        """Ring index containing radial distance(s) ``radial`` from the origin.

        The origin itself belongs to ring 1; distances beyond the field
        raise ``ValueError``.
        """
        rad = np.asarray(radial, dtype=float)
        if np.any(rad < 0) or np.any(rad > self.field_radius * (1 + 1e-12)):
            raise ValueError("radial distance outside the field")
        idx = np.minimum(
            np.ceil(rad / self.radius).astype(int), self.n_rings
        )
        idx = np.maximum(idx, 1)
        return int(idx[()]) if idx.ndim == 0 else idx

    # ------------------------------------------------------------------
    # overlap primitives
    # ------------------------------------------------------------------
    def ring_disk_overlap(self, k: int, radial, disk_radius: float):
        """Area of ring ``k`` intersected with a disk at distance ``radial``.

        Parameters
        ----------
        k:
            Ring index; values outside ``1..n_rings`` return 0 (there is
            no ring there — used freely by the window helpers).
        radial:
            Distance(s) from the origin to the disk center.
        disk_radius:
            Radius of the disk around the node.
        """
        if k < 1 or k > self.n_rings:
            rad = np.asarray(radial, dtype=float)
            zero = np.zeros(rad.shape)
            return float(zero[()]) if zero.ndim == 0 else zero
        outer = intersection_area(self.radius * k, disk_radius, radial)
        inner = intersection_area(self.radius * (k - 1), disk_radius, radial)
        return np.maximum(outer - inner, 0.0)

    def _radial(self, j: int, x) -> np.ndarray:
        """Distance from origin for offset ``x`` inside ring ``j``."""
        if j < 1 or j > self.n_rings:
            raise ValueError(f"ring index out of range 1..{self.n_rings}: {j}")
        x = np.asarray(x, dtype=float)
        if np.any(x < 0) or np.any(x > self.radius * (1 + 1e-12)):
            raise ValueError("offset x must lie in [0, r]")
        return self.radius * (j - 1) + x

    # ------------------------------------------------------------------
    # the paper's A(x, k) and B(x, k)
    # ------------------------------------------------------------------
    def transmission_areas(self, j: int, x) -> np.ndarray:
        """``A(x, k)`` for ``k = j-1, j, j+1`` (paper Sec. 4.2.2).

        Returns an array of shape ``x.shape + (3,)``; the last axis is
        ordered inner/current/outer ring.  Entries for rings that do not
        exist (``k < 1`` or ``k > P``) are zero.  For interior rings the
        three entries sum to ``pi r^2`` — the transmission disk is fully
        partitioned; for the outermost ring the remainder lies outside
        the field.
        """
        radial = self._radial(j, x)
        cols = [
            self.ring_disk_overlap(k, radial, self.radius) for k in (j - 1, j, j + 1)
        ]
        return np.stack(np.broadcast_arrays(*cols), axis=-1)

    def carrier_areas(self, j: int, x, carrier_radius: float | None = None) -> np.ndarray:
        """``B(x, k)`` — ring areas in the carrier-sense annulus (Appendix A).

        Parameters
        ----------
        j, x:
            Node ring and radial offset, as in :meth:`transmission_areas`.
        carrier_radius:
            Carrier-sense radius; defaults to ``2r`` (the paper's
            "typically twice the transmission range").

        Returns
        -------
        numpy.ndarray
            Shape ``x.shape + (2*w + 1,)`` where ``w = ceil(c/r)``; the
            last axis covers rings ``j-w .. j+w``.  ``B(x,k)`` counts only
            the annulus between transmission and carrier-sense radius.
        """
        c = 2.0 * self.radius if carrier_radius is None else float(carrier_radius)
        if c < self.radius:
            raise ValueError("carrier-sense radius must be >= transmission radius")
        radial = self._radial(j, x)
        w = int(np.ceil(c / self.radius))
        cols = []
        for k in range(j - w, j + w + 1):
            full = self.ring_disk_overlap(k, radial, c)
            inner = self.ring_disk_overlap(k, radial, self.radius)
            cols.append(np.maximum(full - inner, 0.0))
        return np.stack(np.broadcast_arrays(*cols), axis=-1)

    def carrier_window(self, j: int, carrier_radius: float | None = None) -> list[int]:
        """Ring indices matching the last axis of :meth:`carrier_areas`."""
        c = 2.0 * self.radius if carrier_radius is None else float(carrier_radius)
        w = int(np.ceil(c / self.radius))
        return list(range(j - w, j + w + 1))
