"""Planar geometry used by the analytical framework and deployments."""

from repro.geometry.circles import intersection_area, lens_area, paper_f
from repro.geometry.rings import RingPartition
from repro.geometry.sampling import (
    sample_annulus,
    sample_disk,
    sample_ring_offsets,
)

__all__ = [
    "intersection_area",
    "lens_area",
    "paper_f",
    "RingPartition",
    "sample_annulus",
    "sample_disk",
    "sample_ring_offsets",
]
