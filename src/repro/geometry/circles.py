"""Circle–circle intersection areas (paper Eq. 1).

The paper parameterizes the intersection of two circles ``L1`` (radius
``D1``) and ``L2`` (radius ``D2``) by ``x``, the signed distance from
the *center of L2* to the *border of L1* (positive outside, negative
inside), so the center distance is ``d = D1 + x``.  Equation (1) gives
the lens area for the properly-intersecting case only; the analytical
framework also hits the degenerate cases constantly (containment when a
node sits deep inside a ring, disjointness near the field boundary, and
``D1 = 0`` for the innermost ring), so :func:`intersection_area` handles
all of them and is the function the rest of the library uses.
"""

from __future__ import annotations

import numpy as np

__all__ = ["intersection_area", "lens_area", "paper_f"]


def intersection_area(r1, r2, d):
    """Area of intersection of two disks, robust to all configurations.

    Parameters
    ----------
    r1, r2:
        Disk radii (non-negative; broadcastable arrays accepted).
    d:
        Distance between centers (non-negative).

    Returns
    -------
    numpy.ndarray or float
        The overlap area: ``0`` when disjoint (``d >= r1 + r2``), the
        smaller disk's area when contained (``d <= |r1 - r2|``), and the
        standard lens formula otherwise.  Scalar inputs return a scalar.
    """
    r1a, r2a, da = np.broadcast_arrays(
        np.asarray(r1, dtype=float), np.asarray(r2, dtype=float), np.asarray(d, dtype=float)
    )
    scalar = r1a.ndim == 0
    r1a = np.atleast_1d(r1a)
    r2a = np.atleast_1d(r2a)
    da = np.atleast_1d(da)
    if np.any(r1a < 0) or np.any(r2a < 0):
        raise ValueError("disk radii must be non-negative")
    if np.any(da < 0):
        raise ValueError("center distance must be non-negative")

    out = np.zeros(r1a.shape, dtype=float)
    # Relative slack keeps subnormal distances (e.g. d = 5e-324 between
    # equal circles) out of the lens formula, where 2*d*r underflows to
    # zero and produces 0/0.
    slack = 1e-12 * (r1a + r2a + da)
    contained = da <= np.abs(r1a - r2a) + slack
    rmin = np.minimum(r1a, r2a)
    out[contained] = np.pi * rmin[contained] ** 2

    disjoint = da >= r1a + r2a - slack
    lens = ~(contained | disjoint)
    if np.any(lens):
        out[lens] = lens_area(r1a[lens], r2a[lens], da[lens])
    if scalar:
        return float(out[0])
    return out.reshape(np.broadcast(r1, r2, d).shape)


def lens_area(r1, r2, d):
    """Lens area for *properly intersecting* circles.

    Standard two-circular-segment formula; callers must guarantee
    ``|r1 - r2| < d < r1 + r2``.  Arguments are clipped before ``arccos``
    so values at the tangency boundaries do not produce NaNs from
    floating-point round-off.
    """
    r1 = np.asarray(r1, dtype=float)
    r2 = np.asarray(r2, dtype=float)
    d = np.asarray(d, dtype=float)
    cos1 = np.clip((d**2 + r1**2 - r2**2) / (2.0 * d * r1), -1.0, 1.0)
    cos2 = np.clip((d**2 + r2**2 - r1**2) / (2.0 * d * r2), -1.0, 1.0)
    seg1 = r1**2 * np.arccos(cos1)
    seg2 = r2**2 * np.arccos(cos2)
    # Heron-style product; clip negatives produced by round-off at tangency.
    prod = (-d + r1 + r2) * (d + r1 - r2) * (d - r1 + r2) * (d + r1 + r2)
    tri = 0.5 * np.sqrt(np.maximum(prod, 0.0))
    return seg1 + seg2 - tri


def paper_f(d1, d2, x):
    """The paper's ``f(D1, D2, x)`` (Eq. 1) with the paper's parameterization.

    ``x`` is the signed distance from the center of ``L2`` to the border
    of ``L1``; the center distance is ``D1 + x``.  Degenerate
    configurations (containment, disjointness, ``D1 = 0``) are resolved
    the same way as :func:`intersection_area`, which Eq. (1) itself
    leaves undefined.
    """
    d1 = np.asarray(d1, dtype=float)
    x = np.asarray(x, dtype=float)
    return intersection_area(d1, d2, np.maximum(d1 + x, 0.0))
