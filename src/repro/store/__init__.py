"""Content-addressed result store with crash-safe, resumable sweeps.

The paper's Sec. 5 validation is thousands of independent ``(rho, p,
replication)`` Monte-Carlo tasks, each a pure function of ``(config,
policy, seed, engine, code version)``.  This package memoizes them on
disk so repeated figure/optimizer workloads are served from cache, and
makes grid sweeps survive being killed mid-run:

* :mod:`repro.store.keys` — canonical, stable task keys (SHA-256 over
  a canonical JSON form; no wall clock or RNG may leak in, enforced by
  the ``flow-det-taint`` and ``flow-effects`` analyses).
* :mod:`repro.store.backend` — :class:`DiskStore`: packed
  :class:`~repro.sim.results.RunResult` batches with atomic writes,
  per-entry checksums (corruption is detected and recomputed, never
  served) and an advisory index; :class:`ShardedBackend`: the same
  entry format fanned across 16 hex-prefix shards with per-shard write
  logs and advisory locks, safe under concurrent schedulers
  (:func:`open_store` sniffs the layout, :func:`migrate_store` /
  ``repro-store migrate`` converts bit-identically).
* :mod:`repro.store.journal` — append-only per-sweep completion
  journals (a killed sweep resumes from where it died), plus the
  per-shard segmented write logs and ``flock`` file locks behind the
  sharded backend.
* :mod:`repro.store.scheduler` — :func:`run_tasks`, the cache-aware
  executor behind ``replicate(..., store=)`` / ``sweep_grid(...,
  store=)``: hits served, misses pooled, completions persisted as they
  land, failures retried then surfaced structurally.
* :mod:`repro.store.gc` — LRU eviction by size/age caps.
* :mod:`repro.store.cli` — ``python -m repro.store``
  (``stats``/``verify``/``gc``/``invalidate``).

Results are bit-identical with the store off, cold, warm, or resumed
mid-sweep; the only difference on a cached result is that the
telemetry-only ``metrics`` field comes back ``None``.
"""

from repro.store.backend import (
    DiskStore,
    ShardedBackend,
    StoreBackend,
    migrate_store,
    open_store,
    pack_result,
    unpack_result,
)
from repro.store.gc import GcReport, collect_garbage
from repro.store.journal import FileLock, ShardJournal, SweepJournal
from repro.store.keys import (
    RESULT_SCHEMA_VERSION,
    canonical_json,
    seed_fingerprint,
    sweep_key,
    task_key,
)
from repro.store.scheduler import run_tasks

__all__ = [
    "DiskStore",
    "ShardedBackend",
    "StoreBackend",
    "open_store",
    "migrate_store",
    "pack_result",
    "unpack_result",
    "GcReport",
    "collect_garbage",
    "SweepJournal",
    "FileLock",
    "ShardJournal",
    "RESULT_SCHEMA_VERSION",
    "canonical_json",
    "seed_fingerprint",
    "sweep_key",
    "task_key",
    "run_tasks",
]
