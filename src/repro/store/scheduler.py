"""Crash-safe, cache-aware task scheduling for Monte-Carlo sweeps.

:func:`run_tasks` is the store-backed execution path behind
:func:`repro.sim.runner.replicate` and
:func:`~repro.sim.runner.sweep_grid`.  For a list of independent tasks
(each a pure function of its key), it:

1. consults the :class:`~repro.store.backend.DiskStore` and serves
   every hit without computing (corrupt entries are dropped, counted,
   and recomputed — never served);
2. executes only the misses through
   :func:`repro.utils.parallel.parallel_map` with per-task error
   capture, so one crashing task cannot discard its siblings' work;
3. persists and journals each freshly computed task *as its chunk
   completes*, not at sweep end — a sweep killed at task 7,000 of
   10,000 leaves 7,000 results in the store and a journal recording
   them, and the same call with ``resume=True`` executes only the rest;
4. retries failed tasks up to ``retries`` extra rounds, then raises a
   structured :class:`~repro.errors.SchedulerError` naming every task
   that kept failing — after persisting everything that succeeded.

Observability: hit/miss/put/corrupt counters and byte totals go to the
:mod:`repro.obs.metrics` registry (when enabled), and each store
operation emits a :class:`~repro.obs.events.StoreAccess` trace event
through the process tracer (when a sink is attached), following the
hoisted-guard convention of the engines.
"""

from __future__ import annotations

import time
from functools import partial
from typing import Any, Callable, Sequence

from repro.errors import SchedulerError, StoreCorruptionError
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans
from repro.obs import trace as obs_trace
from repro.obs.events import StoreAccess
from repro.sim.results import RunResult
from repro.store.backend import StoreBackend
from repro.store.journal import SweepJournal
from repro.store.keys import sweep_key
from repro.utils.parallel import TaskFailure, parallel_map

__all__ = ["run_tasks"]

#: ``progress(done, total, recent_results)`` — the shape
#: :class:`repro.obs.progress.SweepProgress` accepts.
ProgressHook = Callable[[int, int, Sequence[Any]], None]


def _run_indexed(
    execute: Callable[[Any], RunResult], item: tuple[int, Any]
) -> tuple[int, RunResult]:
    """Worker wrapper: carry the task's input index across the pool."""
    index, task = item
    return index, execute(task)


def _run_indexed_block(
    batch_execute: Callable[[Sequence[Any]], Sequence[RunResult]],
    items: Sequence[tuple[int, Any]],
) -> list[tuple[int, RunResult]]:
    """Worker wrapper for one replication block: indices ride along."""
    block_results = batch_execute([task for _, task in items])
    return [
        (index, result)
        for (index, _), result in zip(items, block_results, strict=True)
    ]


class _Recorder:
    """Parent-side completion hook: persist, journal, report progress.

    Runs inside ``parallel_map``'s progress callback, i.e. in the
    parent process as each chunk finishes — that is what makes the
    sweep crash-safe with a process pool (workers only compute; all
    store writes happen here, in completion order).
    """

    def __init__(
        self,
        store: StoreBackend | None,
        journal: SweepJournal | None,
        keys: Sequence[str],
        total: int,
        done: int,
        progress: ProgressHook | None,
    ) -> None:
        self.store = store
        self.journal = journal
        self.keys = keys
        self.total = total
        self.done = done
        self.progress = progress

    def record(self, index: int, result: RunResult) -> None:
        self.done += 1
        if self.store is not None:
            nbytes = self.store.put(self.keys[index], [result])
            reg = obs_metrics.registry()
            if reg.enabled:
                reg.counter("store.puts").inc()
                reg.counter("store.put_bytes").inc(nbytes)
            tracer = obs_trace.get_tracer()
            emit = tracer.emit if tracer.enabled else None
            if emit is not None:
                emit(StoreAccess("put", self.keys[index], 1, nbytes))
        if self.journal is not None:
            self.journal.append(index, self.keys[index])

    def __call__(self, _done: int, _total: int, chunk: Sequence[Any]) -> None:
        fresh = []
        for item in chunk:
            if isinstance(item, TaskFailure):
                continue
            if isinstance(item, list):
                # One replication block: a list of (index, result) pairs.
                # Recording them individually keeps persistence, the
                # journal, and the progress hook in run units, so
                # batching never changes what lands in the store or
                # what ``done/total`` mean.
                for index, result in item:
                    self.record(index, result)
                    fresh.append(result)
                continue
            index, result = item
            self.record(index, result)
            fresh.append(result)
        if self.progress is not None:
            self.progress(self.done, self.total, fresh)


def run_tasks(
    execute: Callable[[Any], RunResult],
    tasks: Sequence[Any],
    keys: Sequence[str],
    *,
    store: StoreBackend | None = None,
    resume: bool = False,
    workers: int | None = 1,
    retries: int = 1,
    backoff: float = 0.05,
    progress: ProgressHook | None = None,
    batch_execute: Callable[[Sequence[Any]], Sequence[RunResult]] | None = None,
    block_of: Sequence[int] | None = None,
) -> list[RunResult]:
    """Execute ``tasks`` through the store, returning results in order.

    Parameters
    ----------
    execute:
        Picklable per-task worker (the runner's ``_execute``).
    tasks, keys:
        Parallel sequences: ``keys[i]`` is the content-addressed key of
        ``tasks[i]``.
    batch_execute, block_of:
        Optional replication-block dispatch: ``block_of[i]`` assigns
        task ``i`` to a block, and the first execution round hands each
        block of cache misses to ``batch_execute`` as one pool task
        (blocks re-form over the misses, so a warm store shrinks blocks
        instead of recomputing hits).  Keys, persistence, the journal,
        and progress all stay per *task* — batching is an execution
        strategy, never part of a task's identity.  Retry rounds fall
        back to ``execute`` per task, isolating any member that fails.
    store:
        The result store — classic :class:`~repro.store.backend.DiskStore`
        or :class:`~repro.store.backend.ShardedBackend`; ``None``
        degrades to plain :func:`~repro.utils.parallel.parallel_map`
        semantics (still with per-task capture and retry).
    resume:
        Reuse this sweep's existing journal, appending to it, instead
        of starting a fresh one.  Correctness never depends on the
        flag — hits come from the store either way; a journaled task
        whose entry was evicted or corrupted is simply recomputed.
    workers:
        As in :func:`~repro.utils.parallel.parallel_map`.
    retries:
        Extra execution rounds for failed tasks before giving up.
    backoff:
        Base delay (seconds) before retry round ``k``, growing as
        ``backoff * 2**(k-1)`` — a deterministic, jitter-free schedule
        (same sweep, same delays), so transient contention (a busy
        shard lock, an exhausted pool) gets room to clear without
        hammering.  ``0`` restores immediate re-execution.
    progress:
        ``progress(done, total, recent_results)`` hook; ``done`` counts
        hits and completions together.

    Raises
    ------
    SchedulerError
        If any task still fails after ``retries`` extra rounds.  All
        successful tasks are already persisted and journaled.
    """
    if len(tasks) != len(keys):
        raise ValueError(f"{len(tasks)} tasks but {len(keys)} keys")
    n = len(tasks)
    results: list[RunResult | None] = [None] * n

    prof = obs_spans.profiler()
    begin = prof.begin if prof.enabled else None

    journal: SweepJournal | None = None
    if store is not None:
        h_journal = begin("store.journal", "store") if begin is not None else None
        journal = SweepJournal(
            store.journals_dir / f"{sweep_key(keys)}.jsonl",
            sweep_key(keys),
            n,
            resume=resume,
        )
        if h_journal is not None:
            h_journal.end(tasks=n)

    reg = obs_metrics.registry()
    tracer = obs_trace.get_tracer()
    emit = tracer.emit if tracer.enabled else None

    # ------------------------------------------------------------------
    # phase 1: serve cache hits
    # ------------------------------------------------------------------
    missing: list[tuple[int, Any]] = []
    hits = 0
    corrupt = 0
    if store is not None:
        h_lookup = begin("store.lookup", "store") if begin is not None else None
        for i, key in enumerate(keys):
            try:
                batch = store.get(key)
            except StoreCorruptionError:
                # Detected, dropped, recomputed — never served.
                store.delete(key)
                corrupt += 1
                if reg.enabled:
                    reg.counter("store.corrupt").inc()
                if emit is not None:
                    emit(StoreAccess("corrupt", key, 0, 0))
                batch = None
            if batch:
                results[i] = batch[0]
                hits += 1
                if journal is not None:
                    journal.append(i, key)
                if reg.enabled:
                    reg.counter("store.hits").inc()
                if emit is not None:
                    emit(StoreAccess("hit", key, len(batch), 0))
            else:
                missing.append((i, tasks[i]))
        if reg.enabled:
            reg.counter("store.misses").inc(len(missing))
        if emit is not None:
            for i, _ in missing:
                emit(StoreAccess("miss", keys[i], 0, 0))
        if h_lookup is not None:
            h_lookup.end(hits=hits, misses=len(missing), corrupt=corrupt)
    else:
        missing = list(enumerate(tasks))

    if progress is not None and hits:
        progress(hits, n, [r for r in results if r is not None][-1:])

    # ------------------------------------------------------------------
    # phase 2: execute misses, persisting as chunks complete
    # ------------------------------------------------------------------
    if batch_execute is not None and block_of is not None and len(block_of) != n:
        raise ValueError(f"{n} tasks but {len(block_of)} block assignments")
    recorder = _Recorder(store, journal, keys, n, hits, progress)
    pending = missing
    failures: list[TaskFailure] = []
    rounds = 0
    for attempt in range(retries + 1):
        if not pending:
            break
        rounds = attempt + 1
        if attempt:
            if reg.enabled:
                reg.counter("store.retries").inc(len(pending))
            if backoff > 0:
                # Deterministic exponential schedule — no jitter, so a
                # re-run of the same failing sweep waits identically.
                time.sleep(backoff * 2 ** (attempt - 1))
        h_exec = begin("store.execute", "store") if begin is not None else None
        n_round = len(pending)
        if batch_execute is not None and block_of is not None and attempt == 0:
            # Re-form blocks over the misses only: pending tasks with
            # the same block id stay together as one pool task.
            blocks: list[list[tuple[int, Any]]] = []
            prev_bid: int | None = None
            for item in pending:
                bid = block_of[item[0]]
                if not blocks or bid != prev_bid:
                    blocks.append([])
                    prev_bid = bid
                blocks[-1].append(item)
            outcome = parallel_map(
                partial(_run_indexed_block, batch_execute),
                blocks,
                workers=workers,
                progress=recorder,
                return_exceptions=True,
            )
            failures = []
            retry_items: list[tuple[int, Any]] = []
            for position, item in enumerate(outcome):
                if isinstance(item, TaskFailure):
                    # The whole block failed together; every member is
                    # retried individually in the next round.
                    for task_index, task in blocks[position]:
                        failures.append(
                            TaskFailure(task_index, item.error, item.traceback_str)
                        )
                        retry_items.append((task_index, task))
                else:
                    for index, result in item:
                        results[index] = result
            pending = retry_items
            if h_exec is not None:
                h_exec.end(attempt=attempt, tasks=n_round, failures=len(failures))
            continue
        outcome = parallel_map(
            partial(_run_indexed, execute),
            pending,
            workers=workers,
            progress=recorder,
            return_exceptions=True,
        )
        failures = []
        retry_items = []
        for position, item in enumerate(outcome):
            if isinstance(item, TaskFailure):
                task_index = pending[position][0]
                failures.append(
                    TaskFailure(task_index, item.error, item.traceback_str)
                )
                retry_items.append(pending[position])
            else:
                index, result = item
                results[index] = result
        pending = retry_items
        if h_exec is not None:
            h_exec.end(attempt=attempt, tasks=n_round, failures=len(failures))

    if journal is not None:
        journal.close()
    if store is not None:
        store.flush_index()
    if reg.enabled and store is not None:
        reg.counter("store.tasks_executed").inc(n - hits - len(failures))

    if failures:
        shown = ", ".join(str(f.index) for f in failures[:10])
        more = "" if len(failures) <= 10 else f" (+{len(failures) - 10} more)"
        raise SchedulerError(
            f"{len(failures)}/{n} task(s) failed after {rounds} attempt"
            f"{'' if rounds == 1 else 's'} ({retries} retr"
            f"{'y' if retries == 1 else 'ies'}, backoff={backoff:g}s) "
            f"at indices [{shown}]{more}; "
            f"first: {type(failures[0].error).__name__}: {failures[0].error}. "
            "Completed tasks are persisted; re-run with resume=True to "
            "retry only the failures.",
            tuple((f.index, keys[f.index], f.error) for f in failures),
            attempts=rounds,
        ) from failures[0].error

    return [r for r in results if r is not None]
