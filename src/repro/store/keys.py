"""Content-addressed keys for simulation results.

PR 2's provenance manifests established that a :class:`RunResult` is a
pure function of ``(config, policy, seed, engine, alignment,
deployment-reuse flag)`` plus the result schema the code writes.  A
store key is the SHA-256 of exactly that tuple in a canonical JSON
form, so two invocations that would compute the same result — whether
they come from :func:`~repro.sim.runner.replicate`, a pooled
:func:`~repro.sim.runner.sweep_grid`, or the figure pipeline — address
the same cache entry.

Purity contract (enforced by the whole-program ``flow-det-taint`` and
``flow-effects`` analyses): key derivation reads nothing but its
arguments — no wall clock, no RNG, no environment — otherwise a warm
cache would silently stop matching.

Invalidation is by construction: anything that can change the bytes of
a result is *in* the key.  Bump :data:`RESULT_SCHEMA_VERSION` when the
packed result layout changes; code-version changes that alter results
should bump it too (the alternative — keying on the git SHA — would
invalidate on every commit, including doc-only ones).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from typing import Any, Iterable, Sequence

import numpy as np

from repro.errors import StoreError
from repro.sim.config import SimulationConfig
from repro.utils.rng import SeedLike, as_seed_sequence

__all__ = [
    "RESULT_SCHEMA_VERSION",
    "canonical_json",
    "seed_fingerprint",
    "task_key",
    "sweep_key",
]

#: Version of the packed-result layout (see :mod:`repro.store.backend`).
#: Part of every key: bumping it invalidates the whole store at once.
RESULT_SCHEMA_VERSION = 1


def _canonical(value: Any) -> Any:
    """Reduce a value to JSON primitives with a stable representation.

    Mirrors the provenance serializer
    (:func:`repro.obs.provenance._jsonable`) but is *strict*: a value
    with no canonical form raises :class:`~repro.errors.StoreError`
    instead of falling back to ``repr`` — an unstable repr in a key
    would split identical work across entries.
    """
    if isinstance(value, bool) or value is None or isinstance(value, (str, int)):
        return value
    if isinstance(value, float):
        # NaN has no JSON form; tag it so it stays distinct from null.
        return "__nan__" if math.isnan(value) else value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _canonical(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, np.generic):
        return _canonical(value.item())
    if isinstance(value, np.ndarray):
        return _canonical(value.tolist())
    raise StoreError(
        f"value of type {type(value).__name__} has no canonical key form: {value!r}"
    )


def canonical_json(value: Any) -> str:
    """Deterministic JSON text: sorted keys, no whitespace drift."""
    return json.dumps(
        _canonical(value), sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def seed_fingerprint(seed: SeedLike) -> dict:
    """The identity of a seed: its entropy plus spawn key.

    Two :class:`numpy.random.SeedSequence` objects generate identical
    streams iff both match, so together they pin every random draw of a
    task (the deployment, slot jitter, and relay decisions all descend
    from this sequence).
    """
    seq = as_seed_sequence(seed)
    entropy = seq.entropy
    if isinstance(entropy, (list, tuple)):
        entropy_c: Any = [int(e) for e in entropy]
    elif entropy is None:
        entropy_c = None
    else:
        entropy_c = int(entropy)
    return {"entropy": entropy_c, "spawn_key": [int(k) for k in seq.spawn_key]}


def task_key(
    policy: Any,
    config: SimulationConfig,
    seed: SeedLike,
    engine: str,
    alignment: str,
    *,
    reuse_deployment: bool = False,
) -> str:
    """SHA-256 key of one ``(policy, config, seed, engine)`` task.

    Parameters mirror one entry of the runner's task list.  ``policy``
    contributes through its ``repr`` — policy reprs are part of the
    public API and carry every parameter (e.g.
    ``ProbabilisticRelay(p=0.3)``).  ``reuse_deployment`` marks
    common-random-numbers tasks, whose deployment comes from a sibling
    seed stream rather than the run seed itself.
    """
    doc = {
        "schema_version": RESULT_SCHEMA_VERSION,
        "config_class": type(config).__name__,
        "config": config,
        "policy": repr(policy),
        "seed": seed_fingerprint(seed),
        "engine": engine,
        "alignment": alignment,
        "reuse_deployment": bool(reuse_deployment),
    }
    return hashlib.sha256(canonical_json(doc).encode("utf-8")).hexdigest()


def sweep_key(task_keys: Iterable[str] | Sequence[str]) -> str:
    """Fingerprint of a whole sweep: the hash of its ordered task keys.

    Names the sweep's journal file, so re-invoking the same sweep (same
    grids, seed, engine, ...) finds its own crash record and nothing
    else's.
    """
    h = hashlib.sha256()
    for key in task_keys:
        h.update(key.encode("ascii"))
        h.update(b"\n")
    return h.hexdigest()
