"""Garbage collection: bound the store by size and age, LRU first.

The store grows monotonically as sweeps run; :func:`collect_garbage`
brings it back under a byte cap and/or drops entries unused for longer
than a maximum age.  "Used" is the entry file's mtime: writes set it
and cache hits touch it (:meth:`DiskStore.get`), so sorting by mtime
ascending is least-recently-used order without any extra bookkeeping.

Garbage collection never affects results — an evicted entry is simply
recomputed on the next sweep that needs it (and its journal line, if
any, stops being backed by the store, which the scheduler treats as a
miss).  Stale ``*.tmp`` files from interrupted atomic writes are always
removed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.store.backend import StoreBackend

__all__ = ["GcReport", "collect_garbage"]


@dataclass(frozen=True)
class GcReport:
    """What one :func:`collect_garbage` pass did (or would do)."""

    examined: int
    removed: int
    bytes_before: int
    bytes_after: int
    dry_run: bool
    removed_keys: tuple[str, ...] = field(repr=False, default=())

    def __str__(self) -> str:
        verb = "would remove" if self.dry_run else "removed"
        return (
            f"gc: {verb} {self.removed}/{self.examined} entries, "
            f"{self.bytes_before} -> {self.bytes_after} bytes"
        )


def collect_garbage(
    store: StoreBackend,
    *,
    max_bytes: int | None = None,
    max_age_s: float | None = None,
    now: float | None = None,
    dry_run: bool = False,
) -> GcReport:
    """Evict least-recently-used entries past the size/age caps.

    Parameters
    ----------
    store:
        The store to collect.
    max_bytes:
        Keep total entry bytes at or under this cap, evicting oldest
        (by mtime) first.  ``None`` = no size cap.
    max_age_s:
        Evict entries whose mtime is older than this many seconds
        before ``now``.  ``None`` = no age cap.
    now:
        Reference time (``time.time()`` epoch seconds); defaults to the
        current time.  Injectable so tests and replayed gc decisions
        are deterministic.
    dry_run:
        Report what would be evicted without touching the store.
    """
    if now is None:
        # repro: allow(det-wallclock) — gc eviction is maintenance, not a result; evicted entries are recomputed bit-identically
        now = time.time()

    entries = []  # (mtime, nbytes, key)
    for key in store.keys():
        st = store.path_for(key).stat()
        entries.append((st.st_mtime, st.st_size, key))
    entries.sort()  # oldest first == least recently used first

    bytes_before = sum(nbytes for _, nbytes, _ in entries)
    total = bytes_before
    doomed: list[str] = []
    kept_bytes: dict[str, int] = {}
    for mtime, nbytes, key in entries:
        if max_age_s is not None and (now - mtime) > max_age_s:
            doomed.append(key)
            total -= nbytes
        else:
            kept_bytes[key] = nbytes
    if max_bytes is not None:
        # Evict in LRU order among the survivors until under the cap.
        for _, nbytes, key in entries:
            if total <= max_bytes:
                break
            if key in kept_bytes:
                doomed.append(key)
                del kept_bytes[key]
                total -= nbytes

    if not dry_run:
        for key in doomed:
            store.delete(key)
        for objects_dir in store.objects_dirs:
            for tmp in objects_dir.rglob("*.tmp"):
                tmp.unlink(missing_ok=True)
        store.flush_index()

    return GcReport(
        examined=len(entries),
        removed=len(doomed),
        bytes_before=bytes_before,
        bytes_after=total,
        dry_run=dry_run,
        removed_keys=tuple(doomed),
    )
