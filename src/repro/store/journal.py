"""Append-only journals: per-sweep completion records, per-shard write logs.

The store is the source of truth for result *bytes*; journals are the
source of truth for *history*.  Two kinds live here:

* :class:`SweepJournal` — one file per sweep (identified by
  :func:`repro.store.keys.sweep_key` over its ordered task keys) under
  ``<store>/journals/``: a header line naming the sweep, then one line
  per completed task.  Lines are flushed as they are written, so a
  sweep killed at task 7,000 of 10,000 leaves a journal with exactly
  the 7,000 completions that also made it into the store — re-running
  with ``resume=True`` appends to that record and only the missing
  3,000 tasks execute.
* :class:`ShardJournal` — the write log of one
  :class:`~repro.store.backend.ShardedBackend` shard: a directory of
  size-bounded JSONL segments recording every put/delete.  Appends
  happen under the shard's :class:`FileLock` (the caller holds it), so
  two concurrent schedulers never interleave partial lines; segment
  rotation is an atomic compare-and-swap — ``O_CREAT | O_EXCL`` on the
  next segment number — so exactly one racing writer creates each new
  segment and the loser simply appends to the winner's.

Loading tolerates a torn final line (the one way an append-only file
can be damaged by a crash) by discarding it; anything else malformed
raises :class:`~repro.errors.StoreCorruptionError`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO, Iterator

from repro.errors import StoreCorruptionError, StoreError

try:  # advisory flock is POSIX-only; elsewhere locking degrades to no-op
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

__all__ = [
    "JOURNAL_SCHEMA",
    "SHARD_JOURNAL_SCHEMA",
    "SweepJournal",
    "FileLock",
    "ShardJournal",
]

JOURNAL_SCHEMA = "repro.journal/1"
SHARD_JOURNAL_SCHEMA = "repro.shard-journal/1"


class FileLock:
    """Advisory exclusive lock on a file, via ``fcntl.flock``.

    Guards a shard's journal-append + index-mutation critical section
    across *processes* (two schedulers writing the same shard).  The
    lock file itself carries no data; holding the open descriptor
    locked is the whole protocol.  Reentrant use within one process is
    not supported — hold the lock for the duration of one put/delete.
    On platforms without ``fcntl`` the lock degrades to a no-op (entry
    writes are individually atomic either way; only journal-line
    interleaving protection is lost).
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fd: int | None = None

    def acquire(self) -> None:
        if self._fd is not None:
            raise StoreError(f"lock at {self.path} is already held")
        self._fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
        if fcntl is not None:
            fcntl.flock(self._fd, fcntl.LOCK_EX)

    def release(self) -> None:
        if self._fd is None:
            return
        try:
            if fcntl is not None:
                fcntl.flock(self._fd, fcntl.LOCK_UN)
        finally:
            os.close(self._fd)
            self._fd = None

    @property
    def held(self) -> bool:
        return self._fd is not None

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "held" if self.held else "free"
        return f"FileLock({str(self.path)!r}, {state})"


def _segment_name(index: int) -> str:
    return f"seg-{index:08d}.jsonl"


def _segment_index(path: Path) -> int | None:
    name = path.name
    if not (name.startswith("seg-") and name.endswith(".jsonl")):
        return None
    digits = name[4:-6]
    return int(digits) if digits.isdigit() else None


class ShardJournal:
    """One shard's append-only write log, in size-bounded segments.

    Layout: ``<dir>/seg-00000001.jsonl``, ``seg-00000002.jsonl``, … —
    each segment opens with a header line (schema + segment number)
    followed by one record per store mutation.  The *active* segment is
    the highest-numbered one; when an append finds it at or past
    ``max_segment_bytes`` it rotates first.

    Rotation is a filesystem compare-and-swap: the writer computes the
    next segment number and tries ``os.open(..., O_CREAT | O_EXCL)``.
    Exactly one of N racing writers wins the create (and writes the
    header); losers observe ``FileExistsError`` — meaning the swap
    already happened — and append to the winner's segment.  A crash
    between create and header write leaves an empty segment, which
    loading treats as torn-and-empty rather than corrupt.

    Appends themselves are not internally locked: the caller (the
    sharded backend) holds the shard :class:`FileLock` around append +
    index mutation, which is what keeps concurrently written lines
    whole.
    """

    def __init__(
        self, directory: str | Path, *, max_segment_bytes: int = 1 << 20
    ) -> None:
        if max_segment_bytes <= 0:
            raise StoreError(
                f"max_segment_bytes must be > 0, got {max_segment_bytes}"
            )
        self.directory = Path(directory)
        self.max_segment_bytes = max_segment_bytes
        self.directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def segments(self) -> list[Path]:
        """Segment files in rotation order."""
        found = []
        for path in self.directory.iterdir():
            index = _segment_index(path)
            if index is not None:
                found.append((index, path))
        return [path for _, path in sorted(found)]

    def _create_segment(self, index: int) -> Path | None:
        """CAS-create segment ``index``; ``None`` if another writer won."""
        path = self.directory / _segment_name(index)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            return None
        try:
            header = json.dumps(
                {"schema": SHARD_JOURNAL_SCHEMA, "segment": index},
                sort_keys=True,
            )
            os.write(fd, (header + "\n").encode("utf-8"))
        finally:
            os.close(fd)
        return path

    def active_segment(self) -> Path:
        """The segment appends go to, rotating/creating as needed."""
        segs = self.segments()
        if not segs:
            created = self._create_segment(1)
            if created is not None:
                return created
            segs = self.segments()  # another writer created it first
        active = segs[-1]
        try:
            size = active.stat().st_size
        except FileNotFoundError:  # pragma: no cover - raced with cleanup
            size = 0
        if size >= self.max_segment_bytes:
            index = _segment_index(active)
            assert index is not None
            created = self._create_segment(index + 1)
            if created is not None:
                return created
            return self.segments()[-1]  # lost the CAS; use the winner's
        return active

    def append(self, op: str, key: str, nbytes: int = 0) -> None:
        """Record one mutation (caller holds the shard lock)."""
        line = json.dumps(
            {"op": op, "key": key, "nbytes": int(nbytes)}, sort_keys=True
        )
        path = self.active_segment()
        with path.open("a") as fh:
            if fh.tell() == 0:
                # Heal a headerless segment left by a crash between the
                # CAS create and the winner's header write.
                index = _segment_index(path)
                fh.write(
                    json.dumps(
                        {"schema": SHARD_JOURNAL_SCHEMA, "segment": index},
                        sort_keys=True,
                    )
                    + "\n"
                )
            fh.write(line + "\n")
            fh.flush()

    def entries(self) -> Iterator[dict]:
        """Every recorded mutation across segments, in write order.

        A torn final line of any segment (crash mid-append) and a
        missing header of the newest segment (crash mid-rotation) are
        tolerated; malformed interior lines raise
        :class:`~repro.errors.StoreCorruptionError`.
        """
        for path in self.segments():
            lines = path.read_text().splitlines()
            if not lines:
                continue  # empty segment from a crashed rotation
            try:
                header = json.loads(lines[0])
                schema = header.get("schema")
            except ValueError:
                schema = None
            if schema != SHARD_JOURNAL_SCHEMA:
                if path == self.segments()[-1]:
                    continue  # torn header of the active segment
                raise StoreCorruptionError(
                    f"not a shard journal segment (bad header) at {path}"
                )
            for lineno, line in enumerate(lines[1:], start=2):
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    yield {
                        "op": str(entry["op"]),
                        "key": str(entry["key"]),
                        "nbytes": int(entry["nbytes"]),
                    }
                except (ValueError, KeyError, TypeError) as exc:
                    if lineno == len(lines):
                        break  # torn final line from a crash mid-append
                    raise StoreCorruptionError(
                        f"malformed shard journal line {lineno} at {path}"
                    ) from exc

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ShardJournal({str(self.directory)!r})"


class SweepJournal:
    """One sweep's append-only completion record.

    Parameters
    ----------
    path:
        The journal file (conventionally
        ``<store>/journals/<sweep_key>.jsonl``).
    sweep:
        The sweep fingerprint recorded in the header line.
    n_tasks:
        Total tasks of the sweep, recorded for progress reporting.
    resume:
        If true and the file already exists (with a matching header),
        keep its entries and append; if false, start fresh.
    """

    def __init__(
        self,
        path: str | Path,
        sweep: str,
        n_tasks: int,
        *,
        resume: bool = False,
    ) -> None:
        self.path = Path(path)
        self.sweep = sweep
        self.n_tasks = n_tasks
        self._fh: IO[str] | None = None
        self.completed: dict[int, str] = {}
        if resume and self.path.exists():
            self.completed = self._load_existing()
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("w") as fh:
                fh.write(
                    json.dumps(
                        {
                            "schema": JOURNAL_SCHEMA,
                            "sweep": sweep,
                            "n_tasks": n_tasks,
                        },
                        sort_keys=True,
                    )
                    + "\n"
                )

    # ------------------------------------------------------------------
    def _load_existing(self) -> dict[int, str]:
        completed: dict[int, str] = {}
        lines = self.path.read_text().splitlines()
        if not lines:
            return completed
        try:
            header = json.loads(lines[0])
        except ValueError as exc:
            raise StoreCorruptionError(
                f"unreadable journal header at {self.path}"
            ) from exc
        if header.get("schema") != JOURNAL_SCHEMA:
            raise StoreCorruptionError(
                f"not a sweep journal (schema={header.get('schema')!r}) at {self.path}"
            )
        if header.get("sweep") != self.sweep:
            raise StoreCorruptionError(
                f"journal at {self.path} records sweep {header.get('sweep')!r}, "
                f"not {self.sweep!r}"
            )
        for lineno, line in enumerate(lines[1:], start=2):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                completed[int(entry["task"])] = str(entry["key"])
            except (ValueError, KeyError, TypeError) as exc:
                if lineno == len(lines):
                    break  # torn final line from a crash mid-append
                raise StoreCorruptionError(
                    f"malformed journal line {lineno} at {self.path}"
                ) from exc
        return completed

    # ------------------------------------------------------------------
    def append(self, task_index: int, key: str) -> None:
        """Record one completed task (flushed immediately)."""
        if task_index in self.completed:
            return
        if self._fh is None:
            self._fh = self.path.open("a")
        self._fh.write(json.dumps({"task": task_index, "key": key}) + "\n")
        self._fh.flush()
        self.completed[task_index] = key

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.completed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SweepJournal({str(self.path)!r}, {len(self.completed)}/"
            f"{self.n_tasks} tasks)"
        )
