"""Append-only per-sweep completion journals.

The store is the source of truth for result *bytes*; the journal is the
source of truth for sweep *progress*.  Each sweep (identified by
:func:`repro.store.keys.sweep_key` over its ordered task keys) owns one
JSON-lines file under ``<store>/journals/``: a header line naming the
sweep, then one line per completed task.  Lines are flushed as they are
written, so a sweep killed at task 7,000 of 10,000 leaves a journal
with exactly the 7,000 completions that also made it into the store —
re-running with ``resume=True`` appends to that record and only the
missing 3,000 tasks execute.

Loading tolerates a torn final line (the one way an append-only file
can be damaged by a crash) by discarding it; anything else malformed
raises :class:`~repro.errors.StoreCorruptionError`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO

from repro.errors import StoreCorruptionError

__all__ = ["JOURNAL_SCHEMA", "SweepJournal"]

JOURNAL_SCHEMA = "repro.journal/1"


class SweepJournal:
    """One sweep's append-only completion record.

    Parameters
    ----------
    path:
        The journal file (conventionally
        ``<store>/journals/<sweep_key>.jsonl``).
    sweep:
        The sweep fingerprint recorded in the header line.
    n_tasks:
        Total tasks of the sweep, recorded for progress reporting.
    resume:
        If true and the file already exists (with a matching header),
        keep its entries and append; if false, start fresh.
    """

    def __init__(
        self,
        path: str | Path,
        sweep: str,
        n_tasks: int,
        *,
        resume: bool = False,
    ) -> None:
        self.path = Path(path)
        self.sweep = sweep
        self.n_tasks = n_tasks
        self._fh: IO[str] | None = None
        self.completed: dict[int, str] = {}
        if resume and self.path.exists():
            self.completed = self._load_existing()
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("w") as fh:
                fh.write(
                    json.dumps(
                        {
                            "schema": JOURNAL_SCHEMA,
                            "sweep": sweep,
                            "n_tasks": n_tasks,
                        },
                        sort_keys=True,
                    )
                    + "\n"
                )

    # ------------------------------------------------------------------
    def _load_existing(self) -> dict[int, str]:
        completed: dict[int, str] = {}
        lines = self.path.read_text().splitlines()
        if not lines:
            return completed
        try:
            header = json.loads(lines[0])
        except ValueError as exc:
            raise StoreCorruptionError(
                f"unreadable journal header at {self.path}"
            ) from exc
        if header.get("schema") != JOURNAL_SCHEMA:
            raise StoreCorruptionError(
                f"not a sweep journal (schema={header.get('schema')!r}) at {self.path}"
            )
        if header.get("sweep") != self.sweep:
            raise StoreCorruptionError(
                f"journal at {self.path} records sweep {header.get('sweep')!r}, "
                f"not {self.sweep!r}"
            )
        for lineno, line in enumerate(lines[1:], start=2):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                completed[int(entry["task"])] = str(entry["key"])
            except (ValueError, KeyError, TypeError) as exc:
                if lineno == len(lines):
                    break  # torn final line from a crash mid-append
                raise StoreCorruptionError(
                    f"malformed journal line {lineno} at {self.path}"
                ) from exc
        return completed

    # ------------------------------------------------------------------
    def append(self, task_index: int, key: str) -> None:
        """Record one completed task (flushed immediately)."""
        if task_index in self.completed:
            return
        if self._fh is None:
            self._fh = self.path.open("a")
        self._fh.write(json.dumps({"task": task_index, "key": key}) + "\n")
        self._fh.flush()
        self.completed[task_index] = key

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.completed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SweepJournal({str(self.path)!r}, {len(self.completed)}/"
            f"{self.n_tasks} tasks)"
        )
