"""Disk backend: packed :class:`RunResult` batches behind atomic writes.

Layout of a store directory::

    <root>/
      store.json             # {"schema": "repro.store/1"} — layout marker
      index.json             # advisory key -> {nbytes} map (rebuildable)
      objects/<k[:2]>/<k>.json   # one entry per task key
      journals/<sweep>.jsonl     # per-sweep completion journals

Every entry is a single JSON document carrying its own SHA-256 checksum
over the canonical payload text, so bit rot and torn writes are
*detected* (:class:`~repro.errors.StoreCorruptionError`) rather than
served.  Writes go to a temp file in the same directory followed by
``os.replace`` — readers never observe a half-written entry, and a
crash leaves at worst an orphaned ``*.tmp`` the next ``gc`` sweeps up.

The index is advisory: ``put``/``delete`` maintain it, but the objects
directory is the source of truth and :meth:`DiskStore.rebuild_index`
reconstructs it by scanning.  Entry files' mtimes double as the LRU
clock for :mod:`repro.store.gc` — a cache hit touches the file.

Packing preserves dtypes and shapes exactly; unpacked results satisfy
bit-identity with the originals (the acceptance bar for warm-cache
sweeps).  The one deliberate exception: :attr:`RunResult.metrics` is a
telemetry snapshot (``compare=False``, never part of result identity)
and is not persisted — cached results come back with ``metrics=None``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Any, Iterator, Sequence

import numpy as np

from repro.analysis.config import AnalysisConfig
from repro.analysis.trace import BroadcastTrace
from repro.errors import StoreCorruptionError, StoreError
from repro.obs import spans as obs_spans
from repro.sim.results import RunResult
from repro.store.keys import RESULT_SCHEMA_VERSION, canonical_json

__all__ = [
    "STORE_SCHEMA",
    "pack_result",
    "unpack_result",
    "DiskStore",
]

STORE_SCHEMA = "repro.store/1"
_KEY_CHARS = frozenset("0123456789abcdef")


# ----------------------------------------------------------------------
# RunResult <-> JSON-safe dict
# ----------------------------------------------------------------------
def _pack_array(a: np.ndarray) -> dict:
    return {
        "dtype": str(a.dtype),
        "shape": [int(s) for s in a.shape],
        "data": a.ravel().tolist(),
    }


def _unpack_array(d: dict) -> np.ndarray:
    return np.array(d["data"], dtype=d["dtype"]).reshape(d["shape"])


def _pack_entropy(entropy: Any) -> Any:
    if entropy is None or isinstance(entropy, int):
        return entropy
    if isinstance(entropy, (list, tuple)):
        return [int(e) for e in entropy]
    if isinstance(entropy, np.integer):
        return int(entropy)
    raise StoreError(f"unpackable seed entropy of type {type(entropy).__name__}")


def pack_result(result: RunResult) -> dict:
    """One :class:`RunResult` as a JSON-safe dict (dtypes preserved)."""
    trace = result.trace
    return {
        "trace": {
            "config": dataclasses.asdict(trace.config),
            "p": None if np.isnan(trace.p) else float(trace.p),
            "new_by_phase_ring": _pack_array(trace.new_by_phase_ring),
            "broadcasts_by_phase": _pack_array(trace.broadcasts_by_phase),
        },
        "new_informed_by_slot": _pack_array(result.new_informed_by_slot),
        "broadcasts_by_slot": _pack_array(result.broadcasts_by_slot),
        "n_field_nodes": int(result.n_field_nodes),
        "collisions": int(result.collisions),
        "total_tx": int(result.total_tx),
        "total_rx": int(result.total_rx),
        "seed_entropy": _pack_entropy(result.seed_entropy),
        "informed_mask": (
            None if result.informed_mask is None else _pack_array(result.informed_mask)
        ),
    }


def unpack_result(doc: dict) -> RunResult:
    """Inverse of :func:`pack_result` (``metrics`` comes back ``None``)."""
    t = doc["trace"]
    trace = BroadcastTrace(
        config=AnalysisConfig(**t["config"]),
        p=float("nan") if t["p"] is None else float(t["p"]),
        new_by_phase_ring=_unpack_array(t["new_by_phase_ring"]),
        broadcasts_by_phase=_unpack_array(t["broadcasts_by_phase"]),
    )
    mask = doc["informed_mask"]
    entropy = doc["seed_entropy"]
    return RunResult(
        trace=trace,
        new_informed_by_slot=_unpack_array(doc["new_informed_by_slot"]),
        broadcasts_by_slot=_unpack_array(doc["broadcasts_by_slot"]),
        n_field_nodes=int(doc["n_field_nodes"]),
        collisions=int(doc["collisions"]),
        total_tx=int(doc["total_tx"]),
        total_rx=int(doc["total_rx"]),
        seed_entropy=entropy if entropy is None else (
            [int(e) for e in entropy] if isinstance(entropy, list) else int(entropy)
        ),
        informed_mask=None if mask is None else _unpack_array(mask),
    )


# ----------------------------------------------------------------------
# the disk store
# ----------------------------------------------------------------------
def _atomic_write_text(path: Path, text: str) -> None:
    """Write via a same-directory temp file + ``os.replace``."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


def _check_key(key: str) -> str:
    if len(key) != 64 or not set(key) <= _KEY_CHARS:
        raise StoreError(f"not a store key (expected 64 hex chars): {key!r}")
    return key


class DiskStore:
    """A content-addressed store of packed :class:`RunResult` batches.

    Parameters
    ----------
    root:
        Store directory; created (with its layout marker) if missing.

    Notes
    -----
    Safe for concurrent *processes* doing independent puts/gets — entry
    writes are atomic and keys are content-addressed, so the worst case
    of a racing double-put is writing identical bytes twice.  The
    advisory ``index.json`` may lag under races; it is rebuilt on
    demand and never consulted for correctness.
    """

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.journals_dir = self.root / "journals"
        self._index_path = self.root / "index.json"
        self._index: dict[str, dict] | None = None
        self._index_dirty = False
        marker = self.root / "store.json"
        if marker.exists():
            try:
                meta = json.loads(marker.read_text())
            except ValueError as exc:
                raise StoreError(f"unreadable store marker at {marker}") from exc
            if meta.get("schema") != STORE_SCHEMA:
                raise StoreError(
                    f"unsupported store schema {meta.get('schema')!r} at {self.root}"
                )
        else:
            self.root.mkdir(parents=True, exist_ok=True)
            self.objects_dir.mkdir(exist_ok=True)
            self.journals_dir.mkdir(exist_ok=True)
            _atomic_write_text(
                marker,
                json.dumps(
                    {"schema": STORE_SCHEMA, "result_schema": RESULT_SCHEMA_VERSION}
                )
                + "\n",
            )
        self.objects_dir.mkdir(exist_ok=True)
        self.journals_dir.mkdir(exist_ok=True)

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        """Entry path for a key (two-char fan-out keeps dirs small)."""
        _check_key(key)
        return self.objects_dir / key[:2] / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def put(self, key: str, results: Sequence[RunResult]) -> int:
        """Store a batch of results under ``key``; returns bytes written.

        Idempotent: re-putting an existing key rewrites identical
        content (the entry is a pure function of the key).
        """
        prof = obs_spans.profiler()
        begin = prof.begin if prof.enabled else None
        h = begin("store.put", "store") if begin is not None else None
        payload = {"results": [pack_result(r) for r in results]}
        payload_text = canonical_json(payload)
        doc = {
            "schema": STORE_SCHEMA,
            "result_schema": RESULT_SCHEMA_VERSION,
            "key": _check_key(key),
            "checksum": hashlib.sha256(payload_text.encode("utf-8")).hexdigest(),
            "payload_json": payload_text,
        }
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(doc, sort_keys=True) + "\n"
        _atomic_write_text(path, text)
        self._index_update(key, len(text))
        if h is not None:
            h.end(nbytes=len(text), results=len(results))
        return len(text)

    def get(self, key: str, *, touch: bool = True) -> list[RunResult] | None:
        """The batch stored under ``key``, or ``None`` on a miss.

        Raises
        ------
        StoreCorruptionError
            If the entry exists but fails checksum/decoding.  Callers
            that prefer recomputation over failure (the scheduler, via
            ``verify``'s ``--delete``) drop the entry and treat the key
            as a miss.
        """
        prof = obs_spans.profiler()
        begin = prof.begin if prof.enabled else None
        h = begin("store.get", "store") if begin is not None else None
        path = self.path_for(key)
        try:
            text = path.read_text()
        except FileNotFoundError:
            if h is not None:
                h.end(hit=0)
            return None
        try:
            doc = json.loads(text)
            payload_text = doc["payload_json"]
            recorded = doc["checksum"]
        except (ValueError, KeyError, TypeError) as exc:
            raise StoreCorruptionError(f"undecodable store entry {key} at {path}") from exc
        actual = hashlib.sha256(payload_text.encode("utf-8")).hexdigest()
        if actual != recorded:
            raise StoreCorruptionError(
                f"checksum mismatch for store entry {key} at {path} "
                f"(recorded {recorded[:12]}…, actual {actual[:12]}…)"
            )
        try:
            payload = json.loads(payload_text)
            results = [unpack_result(d) for d in payload["results"]]
        except (ValueError, KeyError, TypeError) as exc:
            raise StoreCorruptionError(f"unpackable store entry {key} at {path}") from exc
        if touch:
            # Bump the LRU clock (mtime) without reading the wall clock.
            os.utime(path)
        if h is not None:
            h.end(hit=1, nbytes=len(text))
        return results

    def delete(self, key: str) -> bool:
        """Remove an entry; returns whether it existed."""
        path = self.path_for(key)
        try:
            path.unlink()
        except FileNotFoundError:
            return False
        self._index_update(key, None)
        return True

    def keys(self) -> Iterator[str]:
        """Every stored key, lexicographically sorted."""
        if not self.objects_dir.exists():
            return
        for sub in sorted(self.objects_dir.iterdir()):
            if not sub.is_dir():
                continue
            for f in sorted(sub.glob("*.json")):
                yield f.stem

    def nbytes(self) -> int:
        """Total bytes across entry files (objects only, not journals)."""
        return sum(self.path_for(k).stat().st_size for k in self.keys())

    def stats(self) -> dict:
        """Counts and sizes for the CLI and manifests."""
        entries = 0
        nbytes = 0
        for key in self.keys():
            entries += 1
            nbytes += self.path_for(key).stat().st_size
        journals = (
            len(list(self.journals_dir.glob("*.jsonl")))
            if self.journals_dir.exists()
            else 0
        )
        return {
            "root": str(self.root),
            "schema": STORE_SCHEMA,
            "result_schema": RESULT_SCHEMA_VERSION,
            "entries": entries,
            "nbytes": nbytes,
            "journals": journals,
        }

    def verify(self) -> list[tuple[str, str]]:
        """Checksum every entry; returns ``(key, problem)`` pairs."""
        bad: list[tuple[str, str]] = []
        for key in self.keys():
            try:
                self.get(key, touch=False)
            except StoreCorruptionError as exc:
                bad.append((key, str(exc)))
        return bad

    # ------------------------------------------------------------------
    # advisory index
    # ------------------------------------------------------------------
    # In-memory while a store object is live; persisted by
    # :meth:`flush_index` (the scheduler flushes once per sweep, the CLI
    # after gc/invalidate) rather than per put — a 10k-task sweep must
    # not rewrite a growing index 10k times.
    def load_index(self) -> dict[str, dict]:
        """The advisory index; rebuilt by scan when missing/unreadable."""
        if self._index is not None:
            return self._index
        try:
            doc = json.loads(self._index_path.read_text())
            if isinstance(doc, dict) and isinstance(doc.get("entries"), dict):
                self._index = doc["entries"]
                return self._index
        except (OSError, ValueError):
            pass
        return self.rebuild_index()

    def rebuild_index(self) -> dict[str, dict]:
        """Reconstruct the index from the objects directory and persist it."""
        self._index = {
            key: {"nbytes": self.path_for(key).stat().st_size} for key in self.keys()
        }
        self._index_dirty = True
        self.flush_index()
        return self._index

    def flush_index(self) -> None:
        """Persist pending index updates to ``index.json``."""
        if self._index is None or not self._index_dirty:
            return
        _atomic_write_text(
            self._index_path,
            json.dumps(
                {"schema": STORE_SCHEMA, "entries": self._index}, sort_keys=True
            )
            + "\n",
        )
        self._index_dirty = False

    def _index_update(self, key: str, nbytes: int | None) -> None:
        entries = self.load_index()
        if nbytes is None:
            entries.pop(key, None)
        else:
            entries[key] = {"nbytes": nbytes}
        self._index_dirty = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DiskStore({str(self.root)!r})"
