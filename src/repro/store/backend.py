"""Disk backends: packed :class:`RunResult` batches behind atomic writes.

Layout of a classic (unsharded) store directory::

    <root>/
      store.json             # {"schema": "repro.store/1"} — layout marker
      index.json             # advisory key -> {nbytes} map (rebuildable)
      objects/<k[:2]>/<k>.json   # one entry per task key
      journals/<sweep>.jsonl     # per-sweep completion journals

A sharded store (:class:`ShardedBackend`) fans the same entry format
out across 16 hex-prefix shards, each a self-contained
:class:`DiskStore` plus a write log and an advisory lock::

    <root>/
      store.json             # {"schema": "repro.store/sharded-1", ...}
      journals/<sweep>.jsonl # sweep journals stay store-wide
      shards/<x>/            # x = first hex char of the key
        store.json, index.json, objects/...   # a DiskStore
        journal/seg-*.jsonl  # ShardJournal write log
        .lock                # FileLock serializing writers

Every entry is a single JSON document carrying its own SHA-256 checksum
over the canonical payload text, so bit rot and torn writes are
*detected* (:class:`~repro.errors.StoreCorruptionError`) rather than
served.  Writes go to a temp file in the same directory followed by
``os.replace`` — readers never observe a half-written entry, and a
crash leaves at worst an orphaned ``*.tmp`` the next ``gc`` sweeps up.
Because the sharded layout reuses the entry format byte-for-byte,
:func:`migrate_store` copies entry files verbatim — checksums and
bit-identity carry over by construction.

The index is advisory: ``put``/``delete`` maintain it, but the objects
directory is the source of truth and :meth:`DiskStore.rebuild_index`
reconstructs it by scanning.  Entry files' mtimes double as the LRU
clock for :mod:`repro.store.gc` — a cache hit touches the file.

Packing preserves dtypes and shapes exactly; unpacked results satisfy
bit-identity with the originals (the acceptance bar for warm-cache
sweeps).  The one deliberate exception: :attr:`RunResult.metrics` is a
telemetry snapshot (``compare=False``, never part of result identity)
and is not persisted — cached results come back with ``metrics=None``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import shutil
from pathlib import Path
from typing import Any, Iterator, Protocol, Sequence

import numpy as np

from repro.analysis.config import AnalysisConfig
from repro.analysis.trace import BroadcastTrace
from repro.errors import StoreCorruptionError, StoreError
from repro.obs import spans as obs_spans
from repro.sim.results import RunResult
from repro.store.journal import FileLock, ShardJournal
from repro.store.keys import RESULT_SCHEMA_VERSION, canonical_json

__all__ = [
    "STORE_SCHEMA",
    "SHARDED_SCHEMA",
    "N_SHARDS",
    "pack_result",
    "unpack_result",
    "DiskStore",
    "ShardedBackend",
    "StoreBackend",
    "open_store",
    "migrate_store",
]

STORE_SCHEMA = "repro.store/1"
SHARDED_SCHEMA = "repro.store/sharded-1"
#: Shards of a :class:`ShardedBackend` — one per first hex char of a key.
N_SHARDS = 16
_SHARD_NAMES = "0123456789abcdef"
_KEY_CHARS = frozenset(_SHARD_NAMES)


# ----------------------------------------------------------------------
# RunResult <-> JSON-safe dict
# ----------------------------------------------------------------------
def _pack_array(a: np.ndarray) -> dict:
    return {
        "dtype": str(a.dtype),
        "shape": [int(s) for s in a.shape],
        "data": a.ravel().tolist(),
    }


def _unpack_array(d: dict) -> np.ndarray:
    return np.array(d["data"], dtype=d["dtype"]).reshape(d["shape"])


def _pack_entropy(entropy: Any) -> Any:
    if entropy is None or isinstance(entropy, int):
        return entropy
    if isinstance(entropy, (list, tuple)):
        return [int(e) for e in entropy]
    if isinstance(entropy, np.integer):
        return int(entropy)
    raise StoreError(f"unpackable seed entropy of type {type(entropy).__name__}")


def pack_result(result: RunResult) -> dict:
    """One :class:`RunResult` as a JSON-safe dict (dtypes preserved)."""
    trace = result.trace
    return {
        "trace": {
            "config": dataclasses.asdict(trace.config),
            "p": None if np.isnan(trace.p) else float(trace.p),
            "new_by_phase_ring": _pack_array(trace.new_by_phase_ring),
            "broadcasts_by_phase": _pack_array(trace.broadcasts_by_phase),
        },
        "new_informed_by_slot": _pack_array(result.new_informed_by_slot),
        "broadcasts_by_slot": _pack_array(result.broadcasts_by_slot),
        "n_field_nodes": int(result.n_field_nodes),
        "collisions": int(result.collisions),
        "total_tx": int(result.total_tx),
        "total_rx": int(result.total_rx),
        "seed_entropy": _pack_entropy(result.seed_entropy),
        "informed_mask": (
            None if result.informed_mask is None else _pack_array(result.informed_mask)
        ),
    }


def unpack_result(doc: dict) -> RunResult:
    """Inverse of :func:`pack_result` (``metrics`` comes back ``None``)."""
    t = doc["trace"]
    trace = BroadcastTrace(
        config=AnalysisConfig(**t["config"]),
        p=float("nan") if t["p"] is None else float(t["p"]),
        new_by_phase_ring=_unpack_array(t["new_by_phase_ring"]),
        broadcasts_by_phase=_unpack_array(t["broadcasts_by_phase"]),
    )
    mask = doc["informed_mask"]
    entropy = doc["seed_entropy"]
    return RunResult(
        trace=trace,
        new_informed_by_slot=_unpack_array(doc["new_informed_by_slot"]),
        broadcasts_by_slot=_unpack_array(doc["broadcasts_by_slot"]),
        n_field_nodes=int(doc["n_field_nodes"]),
        collisions=int(doc["collisions"]),
        total_tx=int(doc["total_tx"]),
        total_rx=int(doc["total_rx"]),
        seed_entropy=entropy if entropy is None else (
            [int(e) for e in entropy] if isinstance(entropy, list) else int(entropy)
        ),
        informed_mask=None if mask is None else _unpack_array(mask),
    )


# ----------------------------------------------------------------------
# the disk store
# ----------------------------------------------------------------------
def _atomic_write_text(path: Path, text: str) -> None:
    """Write via a same-directory temp file + ``os.replace``."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


def _check_key(key: str) -> str:
    if len(key) != 64 or not set(key) <= _KEY_CHARS:
        raise StoreError(f"not a store key (expected 64 hex chars): {key!r}")
    return key


class DiskStore:
    """A content-addressed store of packed :class:`RunResult` batches.

    Parameters
    ----------
    root:
        Store directory; created (with its layout marker) if missing.

    Notes
    -----
    Safe for concurrent *processes* doing independent puts/gets — entry
    writes are atomic and keys are content-addressed, so the worst case
    of a racing double-put is writing identical bytes twice.  The
    advisory ``index.json`` may lag under races; it is rebuilt on
    demand and never consulted for correctness.
    """

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.journals_dir = self.root / "journals"
        self._index_path = self.root / "index.json"
        self._index: dict[str, dict] | None = None
        self._index_dirty = False
        marker = self.root / "store.json"
        if marker.exists():
            try:
                meta = json.loads(marker.read_text())
            except ValueError as exc:
                raise StoreError(f"unreadable store marker at {marker}") from exc
            if meta.get("schema") != STORE_SCHEMA:
                raise StoreError(
                    f"unsupported store schema {meta.get('schema')!r} at {self.root}"
                )
        else:
            self.root.mkdir(parents=True, exist_ok=True)
            self.objects_dir.mkdir(exist_ok=True)
            self.journals_dir.mkdir(exist_ok=True)
            _atomic_write_text(
                marker,
                json.dumps(
                    {"schema": STORE_SCHEMA, "result_schema": RESULT_SCHEMA_VERSION}
                )
                + "\n",
            )
        self.objects_dir.mkdir(exist_ok=True)
        self.journals_dir.mkdir(exist_ok=True)

    # ------------------------------------------------------------------
    @property
    def objects_dirs(self) -> list[Path]:
        """Objects directories to scan (one here; one per shard when sharded)."""
        return [self.objects_dir]

    def path_for(self, key: str) -> Path:
        """Entry path for a key (two-char fan-out keeps dirs small)."""
        _check_key(key)
        return self.objects_dir / key[:2] / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def put(self, key: str, results: Sequence[RunResult]) -> int:
        """Store a batch of results under ``key``; returns bytes written.

        Idempotent: re-putting an existing key rewrites identical
        content (the entry is a pure function of the key).
        """
        prof = obs_spans.profiler()
        begin = prof.begin if prof.enabled else None
        h = begin("store.put", "store") if begin is not None else None
        payload = {"results": [pack_result(r) for r in results]}
        payload_text = canonical_json(payload)
        doc = {
            "schema": STORE_SCHEMA,
            "result_schema": RESULT_SCHEMA_VERSION,
            "key": _check_key(key),
            "checksum": hashlib.sha256(payload_text.encode("utf-8")).hexdigest(),
            "payload_json": payload_text,
        }
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(doc, sort_keys=True) + "\n"
        _atomic_write_text(path, text)
        self._index_update(key, len(text))
        if h is not None:
            h.end(nbytes=len(text), results=len(results))
        return len(text)

    def get(self, key: str, *, touch: bool = True) -> list[RunResult] | None:
        """The batch stored under ``key``, or ``None`` on a miss.

        Raises
        ------
        StoreCorruptionError
            If the entry exists but fails checksum/decoding.  Callers
            that prefer recomputation over failure (the scheduler, via
            ``verify``'s ``--delete``) drop the entry and treat the key
            as a miss.
        """
        prof = obs_spans.profiler()
        begin = prof.begin if prof.enabled else None
        h = begin("store.get", "store") if begin is not None else None
        path = self.path_for(key)
        try:
            text = path.read_text()
        except FileNotFoundError:
            if h is not None:
                h.end(hit=0)
            return None
        try:
            doc = json.loads(text)
            payload_text = doc["payload_json"]
            recorded = doc["checksum"]
        except (ValueError, KeyError, TypeError) as exc:
            raise StoreCorruptionError(f"undecodable store entry {key} at {path}") from exc
        actual = hashlib.sha256(payload_text.encode("utf-8")).hexdigest()
        if actual != recorded:
            raise StoreCorruptionError(
                f"checksum mismatch for store entry {key} at {path} "
                f"(recorded {recorded[:12]}…, actual {actual[:12]}…)"
            )
        try:
            payload = json.loads(payload_text)
            results = [unpack_result(d) for d in payload["results"]]
        except (ValueError, KeyError, TypeError) as exc:
            raise StoreCorruptionError(f"unpackable store entry {key} at {path}") from exc
        if touch:
            # Bump the LRU clock (mtime) without reading the wall clock.
            os.utime(path)
        if h is not None:
            h.end(hit=1, nbytes=len(text))
        return results

    def delete(self, key: str) -> bool:
        """Remove an entry; returns whether it existed."""
        path = self.path_for(key)
        try:
            path.unlink()
        except FileNotFoundError:
            return False
        self._index_update(key, None)
        return True

    def keys(self) -> Iterator[str]:
        """Every stored key, lexicographically sorted."""
        if not self.objects_dir.exists():
            return
        for sub in sorted(self.objects_dir.iterdir()):
            if not sub.is_dir():
                continue
            for f in sorted(sub.glob("*.json")):
                yield f.stem

    def nbytes(self) -> int:
        """Total bytes across entry files (objects only, not journals)."""
        return sum(self.path_for(k).stat().st_size for k in self.keys())

    def stats(self) -> dict:
        """Counts and sizes for the CLI and manifests."""
        entries = 0
        nbytes = 0
        for key in self.keys():
            entries += 1
            nbytes += self.path_for(key).stat().st_size
        journals = (
            len(list(self.journals_dir.glob("*.jsonl")))
            if self.journals_dir.exists()
            else 0
        )
        return {
            "root": str(self.root),
            "schema": STORE_SCHEMA,
            "result_schema": RESULT_SCHEMA_VERSION,
            "entries": entries,
            "nbytes": nbytes,
            "journals": journals,
        }

    def verify(self) -> list[tuple[str, str]]:
        """Checksum every entry; returns ``(key, problem)`` pairs."""
        bad: list[tuple[str, str]] = []
        for key in self.keys():
            try:
                self.get(key, touch=False)
            except StoreCorruptionError as exc:
                bad.append((key, str(exc)))
        return bad

    # ------------------------------------------------------------------
    # advisory index
    # ------------------------------------------------------------------
    # In-memory while a store object is live; persisted by
    # :meth:`flush_index` (the scheduler flushes once per sweep, the CLI
    # after gc/invalidate) rather than per put — a 10k-task sweep must
    # not rewrite a growing index 10k times.
    def load_index(self) -> dict[str, dict]:
        """The advisory index; rebuilt by scan when missing/unreadable."""
        if self._index is not None:
            return self._index
        try:
            doc = json.loads(self._index_path.read_text())
            if isinstance(doc, dict) and isinstance(doc.get("entries"), dict):
                self._index = doc["entries"]
                return self._index
        except (OSError, ValueError):
            pass
        return self.rebuild_index()

    def rebuild_index(self) -> dict[str, dict]:
        """Reconstruct the index from the objects directory and persist it."""
        self._index = {
            key: {"nbytes": self.path_for(key).stat().st_size} for key in self.keys()
        }
        self._index_dirty = True
        self.flush_index()
        return self._index

    def flush_index(self) -> None:
        """Persist pending index updates to ``index.json``."""
        if self._index is None or not self._index_dirty:
            return
        _atomic_write_text(
            self._index_path,
            json.dumps(
                {"schema": STORE_SCHEMA, "entries": self._index}, sort_keys=True
            )
            + "\n",
        )
        self._index_dirty = False

    def _index_update(self, key: str, nbytes: int | None) -> None:
        entries = self.load_index()
        if nbytes is None:
            entries.pop(key, None)
        else:
            entries[key] = {"nbytes": nbytes}
        self._index_dirty = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DiskStore({str(self.root)!r})"


# ----------------------------------------------------------------------
# the sharded store
# ----------------------------------------------------------------------
class ShardedBackend:
    """Sixteen hex-prefix :class:`DiskStore` shards behind one interface.

    A key ``k`` lives in shard ``k[0]`` — keys are SHA-256 hex, so load
    spreads uniformly and the shard of a key never changes.  Each shard
    is a complete :class:`DiskStore` (same entry format, own advisory
    index) plus a :class:`~repro.store.journal.ShardJournal` write log
    and a :class:`~repro.store.journal.FileLock`.  Mutations take the
    shard's lock around entry write + journal append + index touch, so
    two concurrent schedulers hammering the same shard serialize those
    few milliseconds and nothing else — reads never lock (entry writes
    are atomic), and writers on *different* shards never contend.

    Sweep journals remain store-wide under ``<root>/journals`` — a
    sweep spans shards, and its completion record is about the sweep,
    not about placement.

    The interface deliberately mirrors :class:`DiskStore` (``put`` /
    ``get`` / ``delete`` / ``keys`` / ``stats`` / ``verify`` /
    ``flush_index`` / ``path_for`` / ``objects_dirs``), so the
    scheduler, gc, and CLI accept either via :data:`StoreBackend`.
    """

    def __init__(
        self,
        root: str | os.PathLike[str],
        *,
        max_segment_bytes: int = 1 << 20,
    ) -> None:
        self.root = Path(root)
        self.journals_dir = self.root / "journals"
        marker = self.root / "store.json"
        if marker.exists():
            try:
                meta = json.loads(marker.read_text())
            except ValueError as exc:
                raise StoreError(f"unreadable store marker at {marker}") from exc
            if meta.get("schema") != SHARDED_SCHEMA:
                raise StoreError(
                    f"not a sharded store (schema={meta.get('schema')!r}) "
                    f"at {self.root} — run `repro-store migrate` to convert"
                )
            if meta.get("shards") not in (None, N_SHARDS):
                raise StoreError(
                    f"unsupported shard count {meta.get('shards')!r} at {self.root}"
                )
        else:
            self.root.mkdir(parents=True, exist_ok=True)
            _atomic_write_text(
                marker,
                json.dumps(
                    {
                        "schema": SHARDED_SCHEMA,
                        "result_schema": RESULT_SCHEMA_VERSION,
                        "shards": N_SHARDS,
                    }
                )
                + "\n",
            )
        self.journals_dir.mkdir(exist_ok=True)
        shards_dir = self.root / "shards"
        shards_dir.mkdir(exist_ok=True)
        self.shards: dict[str, DiskStore] = {
            name: DiskStore(shards_dir / name) for name in _SHARD_NAMES
        }
        self._journals: dict[str, ShardJournal] = {
            name: ShardJournal(
                shards_dir / name / "journal", max_segment_bytes=max_segment_bytes
            )
            for name in _SHARD_NAMES
        }
        self._locks: dict[str, FileLock] = {
            name: FileLock(shards_dir / name / ".lock") for name in _SHARD_NAMES
        }

    # ------------------------------------------------------------------
    def shard_for(self, key: str) -> DiskStore:
        """The shard holding ``key`` (its first hex char)."""
        _check_key(key)
        return self.shards[key[0]]

    def shard_lock(self, key: str) -> FileLock:
        """The advisory writer lock of ``key``'s shard."""
        _check_key(key)
        return self._locks[key[0]]

    def shard_journal(self, key: str) -> ShardJournal:
        """The write log of ``key``'s shard."""
        _check_key(key)
        return self._journals[key[0]]

    @property
    def objects_dirs(self) -> list[Path]:
        """Every shard's objects directory, in shard order."""
        return [self.shards[name].objects_dir for name in _SHARD_NAMES]

    def path_for(self, key: str) -> Path:
        return self.shard_for(key).path_for(key)

    def __contains__(self, key: str) -> bool:
        return key in self.shard_for(key)

    def put(self, key: str, results: Sequence[RunResult]) -> int:
        """Store a batch under ``key``, serialized per shard.

        The shard lock covers the entry write, the journal append, and
        the index touch as one critical section — a concurrent writer
        on the same shard waits; one on a different shard does not.
        """
        _check_key(key)
        with self._locks[key[0]]:
            nbytes = self.shards[key[0]].put(key, results)
            self._journals[key[0]].append("put", key, nbytes)
        return nbytes

    def get(self, key: str, *, touch: bool = True) -> list[RunResult] | None:
        return self.shard_for(key).get(key, touch=touch)

    def delete(self, key: str) -> bool:
        _check_key(key)
        with self._locks[key[0]]:
            existed = self.shards[key[0]].delete(key)
            if existed:
                self._journals[key[0]].append("delete", key)
        return existed

    def keys(self) -> Iterator[str]:
        """Every stored key; shard order is lexicographic, so global too."""
        for name in _SHARD_NAMES:
            yield from self.shards[name].keys()

    def nbytes(self) -> int:
        return sum(self.shards[name].nbytes() for name in _SHARD_NAMES)

    def stats(self) -> dict:
        """Store-wide totals plus a per-shard breakdown."""
        shards: dict[str, dict] = {}
        entries = 0
        nbytes = 0
        for name in _SHARD_NAMES:
            s = self.shards[name].stats()
            shards[name] = {
                "entries": s["entries"],
                "nbytes": s["nbytes"],
                "journal_segments": len(self._journals[name].segments()),
            }
            entries += s["entries"]
            nbytes += s["nbytes"]
        journals = len(list(self.journals_dir.glob("*.jsonl")))
        return {
            "root": str(self.root),
            "schema": SHARDED_SCHEMA,
            "result_schema": RESULT_SCHEMA_VERSION,
            "entries": entries,
            "nbytes": nbytes,
            "journals": journals,
            "shards": shards,
        }

    def verify(self) -> list[tuple[str, str]]:
        bad: list[tuple[str, str]] = []
        for name in _SHARD_NAMES:
            bad.extend(self.shards[name].verify())
        return bad

    # ------------------------------------------------------------------
    def load_index(self) -> dict[str, dict]:
        """Union of the shard indexes (keys are globally unique)."""
        merged: dict[str, dict] = {}
        for name in _SHARD_NAMES:
            merged.update(self.shards[name].load_index())
        return merged

    def rebuild_index(self) -> dict[str, dict]:
        merged: dict[str, dict] = {}
        for name in _SHARD_NAMES:
            with self._locks[name]:
                merged.update(self.shards[name].rebuild_index())
        return merged

    def flush_index(self) -> None:
        """Flush every shard's pending index updates, under its lock."""
        for name in _SHARD_NAMES:
            shard = self.shards[name]
            if shard._index is None or not shard._index_dirty:
                continue
            with self._locks[name]:
                shard.flush_index()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ShardedBackend({str(self.root)!r})"


class StoreBackend(Protocol):
    """The backend seam: what the scheduler, gc, and CLI require.

    :class:`DiskStore`, :class:`ShardedBackend`, and
    :class:`repro.serve.memory.ReadThroughStore` all satisfy it
    structurally; a future remote/object-store backend plugs in by
    implementing the same surface.
    """

    @property
    def root(self) -> Path: ...

    @property
    def journals_dir(self) -> Path: ...

    @property
    def objects_dirs(self) -> list[Path]: ...

    def path_for(self, key: str) -> Path: ...

    def __contains__(self, key: str) -> bool: ...

    def put(self, key: str, results: Sequence[RunResult]) -> int: ...

    def get(self, key: str, *, touch: bool = True) -> list[RunResult] | None: ...

    def delete(self, key: str) -> bool: ...

    def keys(self) -> Iterator[str]: ...

    def nbytes(self) -> int: ...

    def stats(self) -> dict: ...

    def verify(self) -> list[tuple[str, str]]: ...

    def load_index(self) -> dict[str, dict]: ...

    def rebuild_index(self) -> dict[str, dict]: ...

    def flush_index(self) -> None: ...


def open_store(root: str | os.PathLike[str]) -> StoreBackend:
    """Open a store directory as whichever backend its marker declares.

    A missing marker (new directory) creates a classic
    :class:`DiskStore` — sharding is opt-in via
    :class:`ShardedBackend` or ``repro-store migrate``.
    """
    marker = Path(root) / "store.json"
    if marker.exists():
        try:
            meta = json.loads(marker.read_text())
        except ValueError as exc:
            raise StoreError(f"unreadable store marker at {marker}") from exc
        if meta.get("schema") == SHARDED_SCHEMA:
            return ShardedBackend(root)
    return DiskStore(root)


def migrate_store(
    src: str | os.PathLike[str], dst: str | os.PathLike[str]
) -> dict:
    """Copy a classic store into a fresh sharded one, bit-identically.

    Entry files are copied verbatim — each embeds its own checksum over
    the canonical payload, and both layouts share the entry format, so
    migrated entries are byte-identical to their sources (``verify``
    passes on both sides unchanged).  Sweep journals move to the
    sharded store's store-wide ``journals/``; per-shard write logs
    start from the migrated population.
    """
    source = open_store(src)
    if isinstance(source, ShardedBackend):
        raise StoreError(f"store at {src} is already sharded")
    dst_path = Path(dst)
    if dst_path.exists() and any(dst_path.iterdir()):
        raise StoreError(f"migration target {dst} exists and is not empty")
    target = ShardedBackend(dst_path)
    entries = 0
    nbytes = 0
    for key in source.keys():
        src_file = source.path_for(key)
        dst_file = target.path_for(key)
        dst_file.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy2(src_file, dst_file)
        size = dst_file.stat().st_size
        shard = target.shard_for(key)
        shard._index_update(key, size)
        target.shard_journal(key).append("put", key, size)
        entries += 1
        nbytes += size
    target.flush_index()
    journals = 0
    if source.journals_dir.exists():
        for jf in sorted(source.journals_dir.glob("*.jsonl")):
            shutil.copy2(jf, target.journals_dir / jf.name)
            journals += 1
    return {
        "src": str(source.root),
        "dst": str(target.root),
        "entries": entries,
        "nbytes": nbytes,
        "journals": journals,
    }
