"""``python -m repro.store`` — operate on a result store from the shell.

Subcommands::

    python -m repro.store stats DIR [--json]
    python -m repro.store verify DIR [--delete]
    python -m repro.store gc DIR [--max-bytes N] [--max-age-days D] [--dry-run]
    python -m repro.store invalidate DIR (--all | PREFIX [PREFIX ...])
    python -m repro.store migrate SRC DST

Every subcommand opens the directory as whichever backend its marker
declares (classic or sharded); ``stats`` adds a per-shard breakdown on
sharded stores and degrades to the flat report on legacy ones.
``migrate`` copies a classic store into a fresh sharded one
bit-identically (entries are copied verbatim, checksums included).

Exit codes: 0 success, 1 problems found (corrupt entries, nothing
matched), 2 usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import StoreError
from repro.store.backend import StoreBackend, migrate_store, open_store
from repro.store.gc import collect_garbage

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store",
        description="Inspect and maintain a content-addressed result store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="entry/byte/journal counts")
    p_stats.add_argument("store", help="store directory")
    p_stats.add_argument("--json", action="store_true", help="emit JSON")

    p_verify = sub.add_parser("verify", help="checksum every entry")
    p_verify.add_argument("store", help="store directory")
    p_verify.add_argument(
        "--delete", action="store_true", help="remove corrupt entries"
    )

    p_gc = sub.add_parser("gc", help="evict LRU entries past size/age caps")
    p_gc.add_argument("store", help="store directory")
    p_gc.add_argument("--max-bytes", type=int, default=None, help="size cap")
    p_gc.add_argument(
        "--max-age-days", type=float, default=None, help="evict entries older than this"
    )
    p_gc.add_argument(
        "--dry-run", action="store_true", help="report without deleting"
    )

    p_inv = sub.add_parser("invalidate", help="drop entries by key prefix")
    p_inv.add_argument("store", help="store directory")
    p_inv.add_argument("prefixes", nargs="*", help="hex key prefixes to drop")
    p_inv.add_argument("--all", action="store_true", help="drop every entry")

    p_mig = sub.add_parser(
        "migrate", help="copy a classic store into a fresh sharded one"
    )
    p_mig.add_argument("store", help="source store directory (classic layout)")
    p_mig.add_argument("dst", help="destination directory (must not exist)")
    return parser


def _cmd_stats(store: StoreBackend, args: argparse.Namespace) -> int:
    stats = store.stats()
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
    else:
        for k in ("root", "schema", "entries", "nbytes", "journals"):
            print(f"{k}: {stats[k]}")
        # Sharded stores break totals down; legacy stores have no row.
        for name, shard in sorted(stats.get("shards", {}).items()):
            print(
                f"shard {name}: {shard['entries']} entries, "
                f"{shard['nbytes']} bytes, "
                f"{shard['journal_segments']} journal segments"
            )
    return 0


def _cmd_verify(store: StoreBackend, args: argparse.Namespace) -> int:
    bad = store.verify()
    total = sum(1 for _ in store.keys())
    if not bad:
        print(f"ok: {total} entries verified")
        return 0
    for key, problem in bad:
        print(f"corrupt: {key}: {problem}", file=sys.stderr)
        if args.delete:
            store.delete(key)
    if args.delete:
        store.flush_index()
        print(f"deleted {len(bad)} corrupt entries", file=sys.stderr)
    print(f"{len(bad)}/{total} entries corrupt", file=sys.stderr)
    return 1


def _cmd_gc(store: StoreBackend, args: argparse.Namespace) -> int:
    max_age_s = None if args.max_age_days is None else args.max_age_days * 86400.0
    report = collect_garbage(
        store,
        max_bytes=args.max_bytes,
        max_age_s=max_age_s,
        dry_run=args.dry_run,
    )
    print(report)
    return 0


def _cmd_invalidate(store: StoreBackend, args: argparse.Namespace) -> int:
    if args.all == bool(args.prefixes):
        print("invalidate: pass either --all or at least one prefix", file=sys.stderr)
        return 2
    doomed = [
        key
        for key in store.keys()
        if args.all or any(key.startswith(p) for p in args.prefixes)
    ]
    for key in doomed:
        store.delete(key)
    store.flush_index()
    print(f"invalidated {len(doomed)} entries")
    return 0 if doomed or args.all else 1


def _cmd_migrate(args: argparse.Namespace) -> int:
    try:
        report = migrate_store(args.store, args.dst)
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"migrated {report['entries']} entries ({report['nbytes']} bytes), "
        f"{report['journals']} sweep journals -> {report['dst']}"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "migrate":
        return _cmd_migrate(args)
    try:
        store = open_store(args.store)
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    handler = {
        "stats": _cmd_stats,
        "verify": _cmd_verify,
        "gc": _cmd_gc,
        "invalidate": _cmd_invalidate,
    }[args.command]
    return handler(store, args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
