"""Module entry point: ``python -m repro.store``."""

from repro.store.cli import main

raise SystemExit(main())
