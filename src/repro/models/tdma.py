"""TDMA slot assignment — the multi-packet-reception CFM implementation.

Sec. 3.2.1 lists TDMA among the ways to realize CFM on real radios:
"assigning to each sensor node a specific time slot that is ideally
unique in its neighborhood".  For the slot to be collision-free at
every potential receiver, uniqueness must hold over *two* hops — two
transmitters sharing a neighbor must differ — i.e. the schedule is a
distance-2 coloring of the communication graph.

This module provides

* :func:`distance2_coloring` — greedy largest-degree-first coloring of
  the square of the graph (the classic ``O(rho^2)``-colors heuristic);
* :class:`TdmaSchedule` — the schedule plus its validity checker; and
* :func:`run_tdma_flooding` — flooding where each node transmits once
  in its own slot of the repeating frame, executed over the *CAM*
  channel so the collision-freedom is verified rather than assumed.

The price of the reliability is latency: the frame is ``n_slots`` long,
so the paper's trade-off (CFM's easy semantics vs density-dependent
hidden costs) shows up as frame length growing roughly with ``rho``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.models.cam import CollisionAwareChannel
from repro.network.deployment import DiskDeployment
from repro.network.topology import Topology

__all__ = ["distance2_coloring", "TdmaSchedule", "TdmaFloodingResult", "run_tdma_flooding"]


def _two_hop_neighbors(topology: Topology, node: int) -> np.ndarray:
    """Distinct nodes within two hops of ``node`` (itself excluded)."""
    one = topology.neighbors(node)
    if len(one) == 0:
        return one
    parts = [one]
    for v in one:
        parts.append(topology.neighbors(int(v)))
    out = np.unique(np.concatenate(parts))
    return out[out != node]


def distance2_coloring(topology: Topology) -> np.ndarray:
    """Greedy distance-2 coloring, largest degree first.

    Returns an array of slot indices (colors), one per node; any two
    nodes within two hops receive different colors, which makes the
    induced TDMA schedule collision-free under assumption 6.
    """
    n = topology.n_nodes
    colors = np.full(n, -1, dtype=np.int64)
    order = np.argsort(-topology.degrees, kind="stable")
    for node in order:
        node = int(node)
        taken = {int(colors[v]) for v in _two_hop_neighbors(topology, node)}
        c = 0
        while c in taken:
            c += 1
        colors[node] = c
    return colors


@dataclass(frozen=True)
class TdmaSchedule:
    """A TDMA frame: per-node slot assignments.

    Attributes
    ----------
    slots:
        ``slots[v]`` is node ``v``'s transmission slot within the frame.
    n_slots:
        Frame length (number of distinct slots).
    """

    slots: np.ndarray = field(repr=False)
    n_slots: int

    @classmethod
    def build(cls, topology: Topology) -> "TdmaSchedule":
        """Color the topology and wrap the result."""
        colors = distance2_coloring(topology)
        return cls(slots=colors, n_slots=int(colors.max()) + 1 if len(colors) else 0)

    def is_valid(self, topology: Topology) -> bool:
        """True iff no two nodes within two hops share a slot."""
        for node in range(topology.n_nodes):
            two_hop = _two_hop_neighbors(topology, node)
            if np.any(self.slots[two_hop] == self.slots[node]):
                return False
        return True


@dataclass(frozen=True)
class TdmaFloodingResult:
    """Outcome of flooding over a TDMA schedule.

    Attributes
    ----------
    reachability:
        Fraction of field nodes informed (1.0 on connected graphs —
        the CFM contract).
    latency_slots:
        Absolute slots until the last reception.
    latency_frames:
        The same in frames (``latency_slots / frame_length``).
    frame_length:
        Slots per frame (the schedule's color count).
    broadcasts:
        Transmissions performed (each informed node exactly once).
    collisions:
        Collision events observed by the CAM channel — must be 0; kept
        as the verified invariant rather than an assumption.
    """

    reachability: float
    latency_slots: int
    latency_frames: float
    frame_length: int
    broadcasts: int
    collisions: int


# TDMA flooding is deterministic: the schedule is a greedy coloring and
# every informed node transmits exactly once, so there is no randomness
# to seed (the deployment is the caller's).
def run_tdma_flooding(
    deployment: DiskDeployment,
    *,
    schedule: TdmaSchedule | None = None,
    max_frames: int = 10_000,
) -> TdmaFloodingResult:
    """Flood over TDMA: each informed node transmits once, in its own slot.

    The execution runs on the CAM channel, so if the schedule were
    invalid the collisions would be observed (and the returned count
    non-zero); with a valid distance-2 coloring the run realizes CFM's
    reliable broadcast exactly.
    """
    topology = deployment.topology()
    sched = schedule or TdmaSchedule.build(topology)
    if sched.n_slots == 0:
        raise SimulationError("empty schedule")
    channel = CollisionAwareChannel(topology)

    informed = np.zeros(topology.n_nodes, dtype=bool)
    informed[deployment.source] = True
    pending = {deployment.source}  # informed but not yet transmitted
    broadcasts = 0
    collisions = 0
    last_rx_slot = 0
    slot_abs = -1

    for _frame in range(max_frames):
        if not pending:
            break
        for slot in range(sched.n_slots):
            slot_abs += 1
            tx = np.array(
                [v for v in sorted(pending) if sched.slots[v] == slot], dtype=np.intp
            )
            if len(tx) == 0:
                continue
            pending.difference_update(int(v) for v in tx)
            broadcasts += len(tx)
            delivery = channel.resolve_slot(tx)
            collisions += len(delivery.collided)
            fresh = delivery.receivers[~informed[delivery.receivers]]
            if len(fresh):
                informed[fresh] = True
                last_rx_slot = slot_abs
                pending.update(int(v) for v in fresh)
    else:  # pragma: no cover - bounded by frame budget
        raise SimulationError(f"TDMA flooding did not finish in {max_frames} frames")

    n_field = deployment.n_field_nodes
    return TdmaFloodingResult(
        reachability=float(informed.sum() - 1) / n_field,
        latency_slots=last_rx_slot + 1,
        latency_frames=(last_rx_slot + 1) / sched.n_slots,
        frame_length=sched.n_slots,
        broadcasts=broadcasts,
        collisions=collisions,
    )
