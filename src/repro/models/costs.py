"""Time/energy cost functions and per-node energy accounting.

The abstract network model attaches cost functions to its primitives
(Fig. 1): ``t_f / e_f`` for a (reliable) CFM transmission and
``t_a / e_a`` for a (best-effort) CAM transmission, with
``t_a <= t_f`` and ``e_a <= e_f`` (Sec. 3.2.2).  Assumption 1 makes the
send and receive costs of a unit packet equal, and assumption 4 makes
idle time free, so a node's energy is fully determined by how many
packets it sent and received.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import ArrayLike

from repro.utils.validation import check_positive, check_positive_int

__all__ = ["CostModel", "EnergyLedger"]


@dataclass(frozen=True)
class CostModel:
    """Per-packet time and energy costs of one transmission primitive.

    Attributes
    ----------
    time:
        Time to send (equivalently, receive) one unit packet.  In the
        slotted protocols one slot is exactly one packet time.
    energy:
        Energy to send one unit packet; by assumption 1 the same energy
        is spent by each receiver.
    """

    time: float = 1.0
    energy: float = 1.0

    def __post_init__(self) -> None:
        check_positive("time", self.time)
        check_positive("energy", self.energy)

    @classmethod
    def cfm(cls, time: float = 1.0, energy: float = 1.0) -> "CostModel":
        """The CFM cost pair ``(t_f, e_f)``."""
        return cls(time=time, energy=energy)

    @classmethod
    def cam(cls, time: float = 1.0, energy: float = 1.0) -> "CostModel":
        """The CAM cost pair ``(t_a, e_a)``."""
        return cls(time=time, energy=energy)


class EnergyLedger:
    """Vectorized per-node energy/traffic accounting (assumption 4).

    Only sending and receiving cost energy; idle radios are off.  The
    ledger tracks packet counts and converts to energy through a
    :class:`CostModel` on demand, so one simulation can be re-costed
    under different hardware parameters without re-running.
    """

    def __init__(self, n_nodes: int, cost_model: CostModel | None = None) -> None:
        self.n_nodes = check_positive_int("n_nodes", n_nodes)
        self.cost_model = cost_model or CostModel.cam()
        self._tx = np.zeros(n_nodes, dtype=np.int64)
        self._rx = np.zeros(n_nodes, dtype=np.int64)

    def record_tx(self, nodes: ArrayLike) -> None:
        """Record one transmission by each node in ``nodes``."""
        np.add.at(self._tx, np.asarray(nodes, dtype=np.intp), 1)

    def record_rx(self, nodes: ArrayLike) -> None:
        """Record one successful reception by each node in ``nodes``."""
        np.add.at(self._rx, np.asarray(nodes, dtype=np.intp), 1)

    @property
    def tx_counts(self) -> np.ndarray:
        """Transmissions per node (read-only view)."""
        v = self._tx.view()
        v.setflags(write=False)
        return v

    @property
    def rx_counts(self) -> np.ndarray:
        """Successful receptions per node (read-only view)."""
        v = self._rx.view()
        v.setflags(write=False)
        return v

    @property
    def total_tx(self) -> int:
        """Network-wide transmission count (the paper's energy metric ``M``)."""
        return int(self._tx.sum())

    @property
    def total_rx(self) -> int:
        """Network-wide successful reception count."""
        return int(self._rx.sum())

    def node_energy(self, cost_model: CostModel | None = None) -> np.ndarray:
        """Per-node energy under ``cost_model`` (defaults to the ledger's)."""
        cm = cost_model or self.cost_model
        return cm.energy * (self._tx + self._rx).astype(float)

    def total_energy(self, cost_model: CostModel | None = None) -> float:
        """Network-wide energy under ``cost_model``."""
        return float(self.node_energy(cost_model).sum())

    def merge(self, other: "EnergyLedger") -> "EnergyLedger":
        """Sum of two ledgers over the same node population."""
        if other.n_nodes != self.n_nodes:
            raise ValueError("cannot merge ledgers of different sizes")
        out = EnergyLedger(self.n_nodes, self.cost_model)
        out._tx = self._tx + other._tx
        out._rx = self._rx + other._rx
        return out
