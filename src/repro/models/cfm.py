"""The Collision Free Model channel (paper Sec. 3.2.1).

Under CFM every packet transmission is an atomic, guaranteed-successful
operation: all neighbors of every transmitter receive, regardless of
concurrency.  The model deliberately hides contention resolution; its
cost is carried entirely by the ``(t_f, e_f)`` pair of the
:class:`~repro.models.costs.CostModel` rather than by lost packets.
"""

from __future__ import annotations

import numpy as np

from repro.models.channel import Channel, Delivery, gather_neighbors
from repro.network.topology import StackedTopology
from repro.obs import trace as obs_trace
from repro.obs.events import ChannelDelivery

__all__ = ["CollisionFreeChannel", "BatchCollisionFreeChannel"]


class CollisionFreeChannel(Channel):
    """Every transmission reaches every neighbor, always.

    When several transmitters share a receiver in one slot, the receiver
    gets *a* packet from each of them in the model's semantics; since
    the broadcast protocols only care about the information (identical
    across senders), the delivery reports the lowest-id sender for
    determinism.
    """

    def resolve_slot(self, transmitters: np.ndarray) -> Delivery:
        tx = np.unique(np.asarray(transmitters, dtype=np.intp))
        if tx.size == 0:
            empty = np.zeros(0, dtype=np.int64)
            return Delivery(receivers=empty, senders=empty.copy(), collided=empty.copy())
        indptr, indices = self.topology.indptr, self.topology.indices
        n = self.topology.n_nodes
        # Lowest transmitter id wins ties: scan transmitters in descending
        # order so earlier (smaller) ids overwrite later ones.
        sender_of = np.full(n, -1, dtype=np.int64)
        for t in tx[::-1]:
            sender_of[indices[indptr[t] : indptr[t + 1]]] = t
        receivers = np.flatnonzero(sender_of >= 0).astype(np.int64)
        tracer = obs_trace.get_tracer()
        emit = tracer.emit if tracer.enabled else None
        if emit is not None:
            emit(
                ChannelDelivery(
                    model="cfm",
                    n_tx=int(tx.size),
                    n_rx=int(receivers.size),
                    n_collided=0,
                )
            )
        return Delivery(
            receivers=receivers,
            senders=sender_of[receivers],
            collided=np.zeros(0, dtype=np.int64),
        )


class BatchCollisionFreeChannel:
    """CFM over a :class:`~repro.network.topology.StackedTopology`.

    The per-run channel's lowest-id-wins tie-break is an elementwise
    minimum over each receiver's transmitting neighbors, so one
    ``np.minimum.at`` scatter over the stacked neighbor gather resolves
    every replication's slot at once.  Node ids are globally disjoint
    across replications, making the result bit-identical to ``R``
    per-run :class:`CollisionFreeChannel` resolutions (all ids global).

    Like the batched CAM channel, this emits no trace events — traced
    work goes through the per-run engine.
    """

    def __init__(self, topology: StackedTopology) -> None:
        self.topology = topology

    def resolve_slot(self, transmitters: np.ndarray) -> Delivery:
        """Resolve one slot for all replications (global node ids)."""
        tx = np.unique(np.asarray(transmitters, dtype=np.intp))
        empty = np.zeros(0, dtype=np.int64)
        if tx.size == 0:
            return Delivery(receivers=empty, senders=empty.copy(), collided=empty.copy())
        n = self.topology.n_nodes
        receivers_flat, senders_flat = gather_neighbors(
            tx, self.topology.indptr, self.topology.indices
        )
        # n is one past any valid id, so min(n, senders) is the lowest
        # transmitting neighbor where one exists and n elsewhere.
        sender_of = np.full(n, n, dtype=np.int64)
        np.minimum.at(sender_of, receivers_flat, senders_flat)
        receivers = np.flatnonzero(sender_of < n).astype(np.int64)
        return Delivery(
            receivers=receivers,
            senders=sender_of[receivers],
            collided=np.zeros(0, dtype=np.int64),
        )
