"""The slotted channel abstraction shared by CFM and CAM.

A channel answers one question per slot: *given who transmitted, who
received what?*  Both engines (the vectorized slot-stepper and the
object-level DES) delegate that question here, so the collision
semantics of Sec. 3.2 live in exactly one place per model.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.network.topology import Topology

__all__ = ["Delivery", "Channel", "gather_neighbors"]


def gather_neighbors(
    tx: np.ndarray, indptr: np.ndarray, indices: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Flat ``(receivers, senders)`` pairs of all transmitters' CSR slices.

    One fancy index gathers every transmitter's neighbor slice;
    ``receivers[k]`` hears ``senders[k]``.  This is the shared front end
    of both collision kernels — per-run and replication-batched alike —
    because a stacked CSR with disjoint per-replication id ranges makes
    the gather over ``R`` topologies the same operation as over one.

    The flat positions are built as a cumsum of unit steps with a jump
    to the next slice start at each boundary (cheaper than
    ``repeat`` + ``arange``); back-to-back slices (e.g. flooding where
    every node transmits) collapse to a single contiguous view.
    """
    starts = indptr[tx]
    ends = indptr[tx + 1]
    lengths = ends - starts
    total = int(lengths.sum())
    if total == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy()
    nz = lengths > 0
    s_nz = starts[nz]
    e_nz = ends[nz]
    if np.array_equal(s_nz[1:], e_nz[:-1]):
        receivers = indices[s_nz[0] : e_nz[-1]]
    else:
        bounds = np.cumsum(lengths[nz])
        steps = np.ones(total, dtype=np.int64)
        steps[0] = s_nz[0]
        steps[bounds[:-1]] = s_nz[1:] - e_nz[:-1] + 1
        receivers = indices[np.cumsum(steps)]
    senders = np.repeat(tx, lengths)
    return receivers, senders


@dataclass(frozen=True)
class Delivery:
    """The outcome of one slot on one channel.

    Attributes
    ----------
    receivers:
        Node ids that successfully received a packet this slot, sorted.
    senders:
        ``senders[i]`` is the node whose packet ``receivers[i]`` got.
        Under CAM this is the unique non-colliding transmitter in range;
        under CFM, ties are resolved in favor of the lowest transmitter
        id (CFM applications treat concurrent deliveries as equivalent).
    collided:
        Node ids that heard two or more concurrent transmissions and
        therefore received nothing (empty under CFM).
    """

    receivers: np.ndarray
    senders: np.ndarray
    collided: np.ndarray

    def __post_init__(self) -> None:
        if self.receivers.shape != self.senders.shape:
            raise ValueError("receivers and senders must align")


class Channel(ABC):
    """Resolves concurrent transmissions into per-receiver deliveries."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology

    @abstractmethod
    def resolve_slot(self, transmitters: np.ndarray) -> Delivery:
        """Deliveries resulting from ``transmitters`` all sending in one slot.

        Parameters
        ----------
        transmitters:
            Unique node ids transmitting in this slot.

        Notes
        -----
        Transmitting nodes can appear among the receivers: the paper's
        link model does not impose half-duplex radios, and the
        analytical framework likewise lets a broadcasting node be
        counted in its neighbors' contention.  Engines that want
        half-duplex semantics filter the delivery themselves.
        """
