"""The slotted channel abstraction shared by CFM and CAM.

A channel answers one question per slot: *given who transmitted, who
received what?*  Both engines (the vectorized slot-stepper and the
object-level DES) delegate that question here, so the collision
semantics of Sec. 3.2 live in exactly one place per model.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.network.topology import Topology

__all__ = ["Delivery", "Channel"]


@dataclass(frozen=True)
class Delivery:
    """The outcome of one slot on one channel.

    Attributes
    ----------
    receivers:
        Node ids that successfully received a packet this slot, sorted.
    senders:
        ``senders[i]`` is the node whose packet ``receivers[i]`` got.
        Under CAM this is the unique non-colliding transmitter in range;
        under CFM, ties are resolved in favor of the lowest transmitter
        id (CFM applications treat concurrent deliveries as equivalent).
    collided:
        Node ids that heard two or more concurrent transmissions and
        therefore received nothing (empty under CFM).
    """

    receivers: np.ndarray
    senders: np.ndarray
    collided: np.ndarray

    def __post_init__(self) -> None:
        if self.receivers.shape != self.senders.shape:
            raise ValueError("receivers and senders must align")


class Channel(ABC):
    """Resolves concurrent transmissions into per-receiver deliveries."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology

    @abstractmethod
    def resolve_slot(self, transmitters: np.ndarray) -> Delivery:
        """Deliveries resulting from ``transmitters`` all sending in one slot.

        Parameters
        ----------
        transmitters:
            Unique node ids transmitting in this slot.

        Notes
        -----
        Transmitting nodes can appear among the receivers: the paper's
        link model does not impose half-duplex radios, and the
        analytical framework likewise lets a broadcasting node be
        counted in its neighbors' contention.  Engines that want
        half-duplex semantics filter the delivery themselves.
        """
