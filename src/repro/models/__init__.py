"""Link-level communication models: packets, costs, CFM and CAM channels.

This package implements Sec. 3 of the paper: the formal objects of the
abstract network model.  A :class:`~repro.models.channel.Channel`
resolves a set of concurrent transmissions into per-receiver deliveries;
:class:`~repro.models.cfm.CollisionFreeChannel` implements CFM (every
transmission reaches every neighbor) and
:class:`~repro.models.cam.CollisionAwareChannel` implements CAM
(concurrent transmissions to a common receiver all collide, assumption
6), optionally with a carrier-sense radius (Appendix A).
"""

from repro.models.packet import Packet
from repro.models.costs import CostModel, EnergyLedger
from repro.models.channel import Channel, Delivery
from repro.models.cfm import CollisionFreeChannel
from repro.models.cam import CollisionAwareChannel
from repro.models.tdma import TdmaSchedule, distance2_coloring, run_tdma_flooding

__all__ = [
    "Packet",
    "CostModel",
    "EnergyLedger",
    "Channel",
    "Delivery",
    "CollisionFreeChannel",
    "CollisionAwareChannel",
    "TdmaSchedule",
    "distance2_coloring",
    "run_tdma_flooding",
]
