"""The Collision Aware Model channel (paper Sec. 3.2.2, assumption 6).

A transmission in a slot succeeds at a given receiver iff it is the
*only* transmission arriving at that receiver for the whole slot.  With
the optional carrier-sense extension (Appendix A), any transmitter
within carrier-sense radius of the receiver also destroys the slot.

The resolution is fully vectorized: per-receiver transmitter counts are
accumulated with ``np.add.at`` over the CSR neighbor lists of the
transmitters, and the unique sender of each count==1 receiver is
recovered from a parallel id-sum accumulator (the sum of one sender id
is the sender id).
"""

from __future__ import annotations

import numpy as np

from repro.models.channel import Channel, Delivery
from repro.network.topology import Topology

__all__ = ["CollisionAwareChannel"]


class CollisionAwareChannel(Channel):
    """Concurrent in-range transmissions collide at their common receivers.

    Parameters
    ----------
    topology:
        The deployment graph.
    carrier_sense:
        If true, a slot additionally fails at a receiver when any node
        in the carrier-sense annulus (within ``topology.carrier_radius``
        but beyond the transmission radius) transmits in it.
    """

    def __init__(self, topology: Topology, *, carrier_sense: bool = False):
        super().__init__(topology)
        self.carrier_sense = carrier_sense
        if carrier_sense:
            # Force construction now so the first slot isn't oddly slow.
            topology.carrier_csr()

    def _counts_and_senders(
        self, tx: np.ndarray, indptr: np.ndarray, indices: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        n = self.topology.n_nodes
        counts = np.zeros(n, dtype=np.int64)
        id_sum = np.zeros(n, dtype=np.int64)
        for t in tx:
            nbrs = indices[indptr[t] : indptr[t + 1]]
            counts[nbrs] += 1
            id_sum[nbrs] += t
        return counts, id_sum

    def resolve_slot(self, transmitters: np.ndarray) -> Delivery:
        tx = np.unique(np.asarray(transmitters, dtype=np.intp))
        empty = np.zeros(0, dtype=np.int64)
        if tx.size == 0:
            return Delivery(receivers=empty, senders=empty.copy(), collided=empty.copy())

        counts, id_sum = self._counts_and_senders(
            tx, self.topology.indptr, self.topology.indices
        )
        ok = counts == 1
        if self.carrier_sense:
            c_indptr, c_indices = self.topology.carrier_csr()
            c_counts, _ = self._counts_and_senders(tx, c_indptr, c_indices)
            # The carrier graph contains the transmission graph, so a
            # clean slot must show exactly the one in-range transmitter.
            ok &= c_counts == 1

        receivers = np.flatnonzero(ok).astype(np.int64)
        collided = np.flatnonzero(counts >= 2).astype(np.int64)
        return Delivery(
            receivers=receivers,
            senders=id_sum[receivers],
            collided=collided,
        )
