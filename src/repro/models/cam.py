"""The Collision Aware Model channel (paper Sec. 3.2.2, assumption 6).

A transmission in a slot succeeds at a given receiver iff it is the
*only* transmission arriving at that receiver for the whole slot.  With
the optional carrier-sense extension (Appendix A), any transmitter
within carrier-sense radius of the receiver also destroys the slot.

The resolution is fully vectorized: the CSR neighbor slices of all
transmitters are gathered with a single fancy index, per-receiver
transmitter counts are accumulated with one ``np.bincount``, and the
unique sender of each count==1 receiver is recovered from a parallel
id-sum ``np.bincount`` (the sum of one sender id is the sender id).  A
loop-based reference implementation is kept for the equivalence tests.
"""

from __future__ import annotations

import time

import numpy as np

from repro.models.channel import Channel, Delivery, gather_neighbors
from repro.network.topology import StackedTopology, Topology
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.events import ChannelDelivery

__all__ = ["CollisionAwareChannel", "BatchCollisionAwareChannel", "counts_and_senders"]


def counts_and_senders(
    tx: np.ndarray, indptr: np.ndarray, indices: np.ndarray, n_nodes: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-receiver transmitter counts and sender-id sums, loop-free.

    The neighbor gather (:func:`~repro.models.channel.gather_neighbors`)
    feeds two ``np.bincount`` passes: receiver counts, and sums of
    transmitting-neighbor ids.  The id sums stay exact in the float64
    accumulator for any realistic network (bounded by
    ``n_tx * n_nodes`` ≪ 2**53 — and still so under replication
    stacking, where ids are global but per-receiver sender sets stay
    within one replication).
    """
    receivers, senders = gather_neighbors(tx, indptr, indices)
    if receivers.size == 0:
        zeros = np.zeros(n_nodes, dtype=np.int64)
        return zeros, zeros.copy()
    counts = np.asarray(np.bincount(receivers, minlength=n_nodes), dtype=np.int64)
    id_sum = np.bincount(receivers, weights=senders, minlength=n_nodes).astype(np.int64)
    return counts, id_sum


class CollisionAwareChannel(Channel):
    """Concurrent in-range transmissions collide at their common receivers.

    Parameters
    ----------
    topology:
        The deployment graph.
    carrier_sense:
        If true, a slot additionally fails at a receiver when any node
        in the carrier-sense annulus (within ``topology.carrier_radius``
        but beyond the transmission radius) transmits in it.
    """

    def __init__(self, topology: Topology, *, carrier_sense: bool = False) -> None:
        super().__init__(topology)
        self.carrier_sense = carrier_sense
        if carrier_sense:
            # Force construction now so the first slot isn't oddly slow.
            topology.carrier_csr()

    def _counts_and_senders(
        self, tx: np.ndarray, indptr: np.ndarray, indices: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-receiver counts/id-sums (see :func:`counts_and_senders`)."""
        return counts_and_senders(tx, indptr, indices, self.topology.n_nodes)

    def _counts_and_senders_reference(
        self, tx: np.ndarray, indptr: np.ndarray, indices: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Loop-based reference of :meth:`_counts_and_senders`.

        Kept (and tested for exact equivalence against the vectorized
        kernel) as executable documentation of the slot semantics.
        """
        n = self.topology.n_nodes
        counts = np.zeros(n, dtype=np.int64)
        id_sum = np.zeros(n, dtype=np.int64)
        for t in tx:
            nbrs = indices[indptr[t] : indptr[t + 1]]
            counts[nbrs] += 1
            id_sum[nbrs] += t
        return counts, id_sum

    def resolve_slot(self, transmitters: np.ndarray) -> Delivery:
        tx = np.unique(np.asarray(transmitters, dtype=np.intp))
        empty = np.zeros(0, dtype=np.int64)
        if tx.size == 0:
            return Delivery(receivers=empty, senders=empty.copy(), collided=empty.copy())

        reg = obs_metrics.registry()
        t0 = time.perf_counter() if reg.enabled else 0.0
        counts, id_sum = self._counts_and_senders(
            tx, self.topology.indptr, self.topology.indices
        )
        ok = counts == 1
        if self.carrier_sense:
            c_indptr, c_indices = self.topology.carrier_csr()
            c_counts, _ = self._counts_and_senders(tx, c_indptr, c_indices)
            # The carrier graph contains the transmission graph, so a
            # clean slot must show exactly the one in-range transmitter.
            ok &= c_counts == 1
        if reg.enabled:
            reg.timer("cam.gather").add(time.perf_counter() - t0)
            reg.counter("cam.slots").inc()

        receivers = np.flatnonzero(ok).astype(np.int64)
        collided = np.flatnonzero(counts >= 2).astype(np.int64)
        tracer = obs_trace.get_tracer()
        emit = tracer.emit if tracer.enabled else None
        if emit is not None:
            emit(
                ChannelDelivery(
                    model="cam",
                    n_tx=int(tx.size),
                    n_rx=int(receivers.size),
                    n_collided=int(collided.size),
                )
            )
        return Delivery(
            receivers=receivers,
            senders=id_sum[receivers],
            collided=collided,
        )


class BatchCollisionAwareChannel:
    """CAM over a :class:`~repro.network.topology.StackedTopology`.

    One :func:`counts_and_senders` pass over the stacked sender list
    resolves every replication's slot at once: node ids are globally
    disjoint across replications, so the global bincount decomposes
    exactly into ``R`` independent per-replication resolutions — the
    delivery is bit-identical to concatenating ``R`` per-run
    :class:`CollisionAwareChannel` deliveries (all ids global).

    No trace events are emitted here: the runner routes traced work to
    the per-run engine, and a direct batched call under an enabled
    tracer would otherwise interleave ``R`` replications in one stream.
    """

    def __init__(self, topology: StackedTopology, *, carrier_sense: bool = False) -> None:
        self.topology = topology
        self.carrier_sense = carrier_sense
        if carrier_sense:
            # Force construction now so the first slot isn't oddly slow.
            topology.carrier_csr()

    def resolve_slot(self, transmitters: np.ndarray) -> Delivery:
        """Resolve one slot for all replications (global node ids)."""
        tx = np.unique(np.asarray(transmitters, dtype=np.intp))
        empty = np.zeros(0, dtype=np.int64)
        if tx.size == 0:
            return Delivery(receivers=empty, senders=empty.copy(), collided=empty.copy())

        reg = obs_metrics.registry()
        t0 = time.perf_counter() if reg.enabled else 0.0
        n = self.topology.n_nodes
        counts, id_sum = counts_and_senders(
            tx, self.topology.indptr, self.topology.indices, n
        )
        ok = counts == 1
        if self.carrier_sense:
            c_indptr, c_indices = self.topology.carrier_csr()
            c_counts, _ = counts_and_senders(tx, c_indptr, c_indices, n)
            ok &= c_counts == 1
        if reg.enabled:
            reg.timer("cam.gather").add(time.perf_counter() - t0)
            reg.counter("cam.slots").inc()

        receivers = np.flatnonzero(ok).astype(np.int64)
        collided = np.flatnonzero(counts >= 2).astype(np.int64)
        return Delivery(
            receivers=receivers,
            senders=id_sum[receivers],
            collided=collided,
        )
