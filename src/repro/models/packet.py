"""Packet records exchanged by the simulated protocols."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Hashable

__all__ = ["Packet"]

_packet_ids = itertools.count()


@dataclass(frozen=True)
class Packet:
    """An immutable unit-size packet (assumption 1: unit packet sizes).

    Attributes
    ----------
    origin:
        Node id of the packet's original source (the broadcast root).
    sender:
        Node id of the current transmitter (changes as the packet is
        relayed; relays carry fresh :class:`Packet` instances).
    kind:
        Application tag, e.g. ``"broadcast"``; lets multiple protocols
        share a channel.
    payload:
        Opaque application payload (must be hashable for dedup keys).
    hops:
        Relay count from the origin (0 for the origin's own broadcast).
    uid:
        Globally unique packet instance id (auto-assigned).
    """

    origin: int
    sender: int
    kind: str = "broadcast"
    payload: Hashable = None
    hops: int = 0
    uid: int = field(default_factory=lambda: next(_packet_ids))

    def relayed_by(self, node: int) -> "Packet":
        """A copy representing this packet re-broadcast by ``node``."""
        return Packet(
            origin=self.origin,
            sender=node,
            kind=self.kind,
            payload=self.payload,
            hops=self.hops + 1,
        )

    @property
    def key(self) -> tuple[Any, ...]:
        """Identity of the *information* carried (stable across relays)."""
        return (self.origin, self.kind, self.payload)
