"""Counter-based broadcast suppression (extension protocol).

A node schedules its relay like probability-based broadcast, but if it
overhears the same information ``threshold`` or more times before its
slot arrives, it concludes its neighborhood is already covered and
cancels.  This is the classic counter-based scheme from the broadcast
storm literature; the paper's taxonomy (via Williams et al.) groups it
with the area-based schemes left to future analytical work.
"""

from __future__ import annotations

import numpy as np

from repro.protocols.base import EngineContext
from repro.protocols.pbcast import ProbabilisticRelay
from repro.utils.validation import check_positive_int

__all__ = ["CounterBasedRelay"]


class CounterBasedRelay(ProbabilisticRelay):
    """Schedule with probability ``p``; cancel after ``threshold`` overhears.

    Parameters
    ----------
    threshold:
        Cancel the pending relay once this many *duplicate* collision-
        free receptions have been overheard before the scheduled slot.
    p:
        Scheduling probability (1.0 gives the pure counter-based scheme).
    """

    name = "counter"

    def __init__(self, threshold: int = 2, p: float = 1.0):
        super().__init__(p)
        self.threshold = check_positive_int("threshold", threshold)

    def confirm(
        self,
        node_ids: np.ndarray,
        duplicate_receptions: np.ndarray,
        rng: np.random.Generator,
        ctx: EngineContext,
        overheard=None,
    ) -> np.ndarray:
        return np.asarray(duplicate_receptions) < self.threshold

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CounterBasedRelay(threshold={self.threshold}, p={self.p})"
