"""Distance-based (area-based) broadcast suppression (extension protocol).

A node relays only if it lies far enough from the transmitter that
informed it: the additional area its own broadcast would cover grows
with that distance, so nearby receivers contribute little and stay
silent.  This is the distance-threshold member of Williams et al.'s
"area based" family, which the paper lists as future analytical work.
"""

from __future__ import annotations

import numpy as np

from repro.protocols.base import EngineContext, RelayPolicy
from repro.utils.validation import check_probability

__all__ = ["DistanceBasedRelay"]


class DistanceBasedRelay(RelayPolicy):
    """Relay iff the informing sender is at least ``threshold * r`` away.

    Parameters
    ----------
    threshold:
        Minimum sender distance as a fraction of the transmission
        radius (0 relays always, values near 1 relay only from the
        rim of the sender's coverage).
    p:
        Additional thinning probability applied on top of the distance
        rule (1.0 gives the pure scheme).

    Notes
    -----
    Nodes whose first reception has an unknown sender (``-1``; possible
    under CFM tie-breaking) conservatively relay: the scheme fails
    open rather than silently partitioning the broadcast.
    """

    name = "distance"

    def __init__(self, threshold: float = 0.5, p: float = 1.0):
        self.threshold = check_probability("threshold", threshold)
        self.p = check_probability("p", p)

    def schedule(
        self,
        new_nodes: np.ndarray,
        first_senders: np.ndarray,
        rng: np.random.Generator,
        ctx: EngineContext,
    ) -> tuple[np.ndarray, np.ndarray]:
        n = len(new_nodes)
        pos = ctx.positions
        senders = np.asarray(first_senders)
        known = senders >= 0
        dist = np.full(n, np.inf)
        if np.any(known):
            delta = pos[np.asarray(new_nodes)[known]] - pos[senders[known]]
            dist[known] = np.hypot(delta[:, 0], delta[:, 1])
        will = dist >= self.threshold * ctx.radius
        if self.p < 1.0:
            will &= rng.random(n) < self.p
        slots = self.random_slots(n, rng, ctx)
        return will, slots

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DistanceBasedRelay(threshold={self.threshold}, p={self.p})"
