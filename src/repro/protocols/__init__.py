"""Broadcast relay protocols.

The paper studies two schemes (Sec. 4): *simple flooding* and
*probability-based broadcast* with the phase/slot backoff of Sec. 4.2
(PB_CAM when run over a CAM channel).  Following the Williams et al.
taxonomy the paper cites — and names as future analytical work — this
package also implements the other two scheme families as extensions:
an *area-based* (distance threshold) scheme and a *neighbor-knowledge*
scheme, plus the counter-based variant commonly grouped with them.

All protocols are expressed as :class:`~repro.protocols.base.RelayPolicy`
strategies consumed by both simulation engines.
"""

from repro.protocols.base import EngineContext, RelayPolicy
from repro.protocols.pbcast import ProbabilisticRelay, SimpleFlooding
from repro.protocols.counter import CounterBasedRelay
from repro.protocols.area import DistanceBasedRelay
from repro.protocols.neighbor import NeighborKnowledgeRelay
from repro.protocols.convergecast import ConvergecastResult, run_convergecast

__all__ = [
    "EngineContext",
    "RelayPolicy",
    "ProbabilisticRelay",
    "SimpleFlooding",
    "CounterBasedRelay",
    "DistanceBasedRelay",
    "NeighborKnowledgeRelay",
    "ConvergecastResult",
    "run_convergecast",
]
