"""Probability-based broadcasting and simple flooding (paper Sec. 4).

``ProbabilisticRelay(p)`` is the paper's scheme: after its first
reception, a node relays exactly once with probability ``p``, in a
uniformly random slot of the next time phase.  ``SimpleFlooding`` is
the ``p = 1`` special case the paper treats as the baseline.
"""

from __future__ import annotations

import numpy as np

from repro.protocols.base import EngineContext, RelayPolicy
from repro.utils.validation import check_probability

__all__ = ["ProbabilisticRelay", "SimpleFlooding"]


class ProbabilisticRelay(RelayPolicy):
    """Relay once with probability ``p`` in a random next-phase slot."""

    name = "pb"

    def __init__(self, p: float):
        self.p = check_probability("p", p)

    def schedule(
        self,
        new_nodes: np.ndarray,
        first_senders: np.ndarray,
        rng: np.random.Generator,
        ctx: EngineContext,
    ) -> tuple[np.ndarray, np.ndarray]:
        n = len(new_nodes)
        will = rng.random(n) < self.p
        slots = self.random_slots(n, rng, ctx)
        return will, slots

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProbabilisticRelay(p={self.p})"


class SimpleFlooding(ProbabilisticRelay):
    """Every informed node relays exactly once (``p = 1``)."""

    name = "flooding"

    def __init__(self) -> None:
        super().__init__(1.0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SimpleFlooding()"
