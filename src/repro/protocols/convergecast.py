"""Convergecast (data gathering) over the broadcast tree — unicast under CAM.

The paper's related work motivates CFM with in-network processing and
data gathering; its models explicitly cover "both broadcast and
unicast" primitives (Sec. 3.2).  This module exercises the *unicast*
half with the canonical NSS workload: after a broadcast establishes a
routing tree (each node's parent = the node whose packet first informed
it), every node sends one data report to the source, hop by hop up the
tree.

Under CAM, an upward unicast is received by the parent iff no other
transmission is audible at the parent in that slot — the same
assumption-6 collision law; the intended destination merely selects
*which* reception matters.  Senders retransmit in later phases until
their parent has taken custody of the report (idealized out-of-band
ACK, as in :mod:`repro.sim.reliable`, with the same cost accounting).

This is an extension workload, not a paper figure; it shows the link
models carrying an application beyond broadcasting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.models.cam import CollisionAwareChannel
from repro.network.deployment import DiskDeployment
from repro.sim.config import SimulationConfig
from repro.utils.rng import SeedLike, as_seed_sequence
from repro.utils.validation import check_positive_int

__all__ = ["ConvergecastResult", "run_convergecast"]


@dataclass(frozen=True)
class ConvergecastResult:
    """Outcome of one data-gathering execution.

    Attributes
    ----------
    delivered:
        Reports that reached the source.
    generated:
        Reports generated (= nodes in the routing tree, source excluded).
    transmissions:
        Total upward unicast transmissions (including retries).
    phases:
        Slotted phases the gathering took.
    tree_depth:
        Maximum hop distance in the routing tree.
    delivery_ratio:
        ``delivered / generated``.
    """

    delivered: int
    generated: int
    transmissions: int
    phases: int
    tree_depth: int
    parents: np.ndarray = field(repr=False)

    @property
    def delivery_ratio(self) -> float:
        return self.delivered / self.generated if self.generated else 1.0


def _build_tree(deployment: DiskDeployment) -> np.ndarray:
    """Parent pointers of the idealized first-reception (BFS) tree.

    The tree only needs *a* spanning structure; real systems build it
    with reliable primitives during deployment, so we use the CFM-style
    idealization and let CAM apply to the data traffic.
    """
    topo = deployment.topology()
    n = topo.n_nodes
    parents = np.full(n, -1, dtype=np.int64)
    # BFS from the source gives the idealized first-reception tree.
    order = [deployment.source]
    seen = np.zeros(n, dtype=bool)
    seen[deployment.source] = True
    while order:
        u = order.pop(0)
        for v in topo.neighbors(u):
            v = int(v)
            if not seen[v]:
                seen[v] = True
                parents[v] = u
                order.append(v)
    return parents


def run_convergecast(
    config: SimulationConfig,
    seed: SeedLike,
    *,
    deployment: DiskDeployment | None = None,
    max_phases: int = 5000,
    max_attempts_per_hop: int = 500,
    tx_probability: float | None = None,
) -> ConvergecastResult:
    """Gather one report from every tree node to the source under CAM.

    Each phase, every node holding undelivered reports decides with
    probability ``tx_probability`` to contend, picks a random slot, and
    unicasts its oldest report to its parent; the parent receives iff
    the slot is collision-free at it (assumption 6).  Delivered custody
    moves up one hop; reports reaching the source leave the system.
    Nodes outside the source's component generate no reports.

    ``tx_probability=None`` auto-tunes to ``min(1, s / mean_degree)`` —
    roughly one contender per slot per neighborhood — which is exactly
    the PB_CAM lesson (optimal transmission probability ~ ``s / rho``)
    carried over to the gathering workload.  With ``tx_probability=1``
    (everyone contends every phase) dense networks livelock on
    collisions, the unicast analogue of the broadcast storm.
    """
    check_positive_int("max_phases", max_phases)
    seed_seq = as_seed_sequence(seed)
    rng = np.random.default_rng(seed_seq)
    if deployment is None:
        deployment = DiskDeployment.sample(
            rho=config.rho,
            n_rings=config.n_rings,
            radius=config.radius,
            rng=rng,
            population=config.population,
        )
    topo = deployment.topology()
    channel = CollisionAwareChannel(topo, carrier_sense=config.carrier_sense)
    parents = _build_tree(deployment)
    source = deployment.source

    in_tree = parents >= 0
    generated = int(in_tree.sum())
    depth = np.zeros(topo.n_nodes, dtype=np.int64)
    for v in np.flatnonzero(in_tree):
        d, u = 0, int(v)
        while parents[u] >= 0:
            u = int(parents[u])
            d += 1
            if d > topo.n_nodes:  # pragma: no cover - tree is acyclic
                raise SimulationError("cycle in routing tree")
        depth[v] = d

    # queue[v] = number of reports currently held by v (not yet passed up).
    queue = np.zeros(topo.n_nodes, dtype=np.int64)
    queue[in_tree] = 1
    attempts_left = np.full(topo.n_nodes, max_attempts_per_hop, dtype=np.int64)
    delivered = 0
    transmissions = 0
    slots = config.slots
    if tx_probability is None:
        q = min(1.0, slots / max(topo.mean_degree, 1.0))
    else:
        from repro.utils.validation import check_probability

        q = check_probability("tx_probability", tx_probability, allow_zero=False)

    phase = 0
    while phase < max_phases:
        ready = np.flatnonzero((queue > 0) & (attempts_left > 0))
        ready = ready[ready != source]
        if len(ready) == 0:
            break
        phase += 1
        holders = ready[rng.random(len(ready)) < q]
        if len(holders) == 0:
            continue
        slot_choice = rng.integers(0, slots, size=len(holders))
        for t in range(slots):
            tx = holders[slot_choice == t]
            if len(tx) == 0:
                continue
            transmissions += len(tx)
            attempts_left[tx] -= 1
            delivery = channel.resolve_slot(tx)
            # A sender succeeds iff its own parent heard *its* packet
            # cleanly this slot.
            got = np.zeros(len(tx), dtype=bool)
            receiver_sender = dict(
                zip(delivery.receivers.tolist(), delivery.senders.tolist(), strict=True)
            )
            for i, s in enumerate(tx.tolist()):
                p = int(parents[s])
                got[i] = receiver_sender.get(p) == s
            winners = tx[got]
            if len(winners):
                queue[winners] -= 1
                attempts_left[winners] = max_attempts_per_hop
                for w in winners.tolist():
                    p = int(parents[w])
                    if p == source:
                        delivered += 1
                    else:
                        queue[p] += 1

    return ConvergecastResult(
        delivered=delivered,
        generated=generated,
        transmissions=transmissions,
        phases=phase,
        tree_depth=int(depth.max()) if topo.n_nodes else 0,
        parents=parents,
    )
