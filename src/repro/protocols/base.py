"""The relay-policy contract shared by both simulation engines.

Per the paper's protocol skeleton (Sec. 4.2), every node takes exactly
one relay decision, upon its *first* successful reception: whether to
re-broadcast, and in which slot of the next time phase.  A policy
expresses that decision vectorized over a batch of newly informed nodes
(:meth:`RelayPolicy.schedule`), plus an optional last-moment veto
evaluated when the chosen slot arrives (:meth:`RelayPolicy.confirm`) —
the hook the counter-based scheme uses to suppress redundant relays.

Policies must draw randomness only from the generator handed to them,
so simulations stay reproducible under a seed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.network.topology import Topology

__all__ = ["EngineContext", "RelayPolicy"]


@dataclass(frozen=True)
class EngineContext:
    """Read-only simulation state policies may consult.

    Attributes
    ----------
    topology:
        The deployment graph (positions, CSR adjacency).
    slots_per_phase:
        The paper's ``s``.
    radius:
        Transmission radius ``r``.
    """

    topology: Topology
    slots_per_phase: int
    radius: float

    @property
    def positions(self) -> np.ndarray:
        """Node coordinates, ``(n, 2)``."""
        return self.topology.positions


class RelayPolicy(ABC):
    """Strategy deciding whether/when newly informed nodes relay."""

    #: short human-readable protocol name used in reports
    name: str = "base"

    #: set True to receive per-node overheard-sender lists in
    #: :meth:`confirm` (the engines only pay the bookkeeping when asked)
    needs_overheard: bool = False

    @abstractmethod
    def schedule(
        self,
        new_nodes: np.ndarray,
        first_senders: np.ndarray,
        rng: np.random.Generator,
        ctx: EngineContext,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Relay decision for a batch of newly informed nodes.

        Parameters
        ----------
        new_nodes:
            Node ids informed for the first time this phase.
        first_senders:
            ``first_senders[i]`` is the node whose packet informed
            ``new_nodes[i]`` (-1 when unknown, e.g. under CFM ties).
        rng:
            The engine's random stream.
        ctx:
            Engine context.

        Returns
        -------
        (will_relay, slot):
            Boolean mask over ``new_nodes``, and for each a slot index
            in ``[0, slots_per_phase)`` within the next phase (slot
            values for non-relaying nodes are ignored).
        """

    def confirm(
        self,
        node_ids: np.ndarray,
        duplicate_receptions: np.ndarray,
        rng: np.random.Generator,
        ctx: EngineContext,
        overheard: list[np.ndarray] | None = None,
    ) -> np.ndarray:
        """Last-moment veto, evaluated when each node's slot arrives.

        ``duplicate_receptions[i]`` counts collision-free receptions of
        the packet by ``node_ids[i]`` *after* it was first informed.
        When the policy sets :attr:`needs_overheard`, ``overheard[i]``
        is the array of sender ids whose packets ``node_ids[i]`` has
        received collision-free so far (first reception included).
        The default keeps every scheduled relay.
        """
        return np.ones(len(node_ids), dtype=bool)

    def random_slots(self, n: int, rng: np.random.Generator, ctx: EngineContext) -> np.ndarray:
        """Uniform slot choices for ``n`` nodes (the paper's jitter)."""
        return rng.integers(0, ctx.slots_per_phase, size=n)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
