"""Neighbor-knowledge broadcast suppression (extension protocol).

Assumption 3 gives every node the ID list of its neighbors.  If nodes
additionally exchange those lists one hop (standard in the
neighbor-knowledge family, e.g. the Scalable Broadcast Algorithm), a
receiver can reason about coverage:

* at scheduling time it relays only if its own broadcast would reach
  someone the informing sender's broadcast did not, and
* while waiting for its slot it keeps listening — every additional
  overheard broadcast extends the known-covered set — and cancels at
  the slot if its whole neighborhood is already covered.

The second rule is what makes the scheme effective in dense fields; it
uses the engines' overheard-sender tracking
(:attr:`~repro.protocols.base.RelayPolicy.needs_overheard`).
"""

from __future__ import annotations

import numpy as np

from repro.protocols.base import EngineContext, RelayPolicy
from repro.utils.validation import check_probability

__all__ = ["NeighborKnowledgeRelay"]


class NeighborKnowledgeRelay(RelayPolicy):
    """Relay iff some own neighbor is not covered by overheard broadcasts.

    Parameters
    ----------
    p:
        Additional thinning probability on top of the coverage rule.

    Notes
    -----
    Receivers whose informing sender is unknown relay (fail open).  The
    coverage computation is exact two-hop set arithmetic, not an
    approximation.
    """

    name = "neighbor"
    needs_overheard = True

    def __init__(self, p: float = 1.0):
        self.p = check_probability("p", p)

    def _uncovered_remains(self, node: int, senders, topo) -> bool:
        mine = topo.neighbors(int(node))
        covered: np.ndarray | None = None
        for s in senders:
            s = int(s)
            if s < 0:
                continue
            block = np.concatenate([topo.neighbors(s), [s]])
            covered = block if covered is None else np.union1d(covered, block)
        if covered is None:
            return True  # nothing known: fail open
        return np.setdiff1d(mine, covered, assume_unique=False).size > 0

    def schedule(
        self,
        new_nodes: np.ndarray,
        first_senders: np.ndarray,
        rng: np.random.Generator,
        ctx: EngineContext,
    ) -> tuple[np.ndarray, np.ndarray]:
        topo = ctx.topology
        n = len(new_nodes)
        will = np.ones(n, dtype=bool)
        for i, (node, sender) in enumerate(
            zip(np.asarray(new_nodes), np.asarray(first_senders), strict=True)
        ):
            will[i] = self._uncovered_remains(node, [sender], topo)
        if self.p < 1.0:
            will &= rng.random(n) < self.p
        slots = self.random_slots(n, rng, ctx)
        return will, slots

    def confirm(
        self,
        node_ids: np.ndarray,
        duplicate_receptions: np.ndarray,
        rng: np.random.Generator,
        ctx: EngineContext,
        overheard=None,
    ) -> np.ndarray:
        keep = np.ones(len(node_ids), dtype=bool)
        if overheard is None:
            return keep
        topo = ctx.topology
        for i, node in enumerate(np.asarray(node_ids)):
            senders = overheard[i] if overheard[i] is not None else []
            keep[i] = self._uncovered_remains(node, senders, topo)
        return keep

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NeighborKnowledgeRelay(p={self.p})"
