"""Configuration of one simulated broadcast scenario."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.analysis.config import AnalysisConfig
from repro.utils.validation import check_in, check_positive_int

__all__ = ["SimulationConfig"]


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of a simulated broadcast execution.

    Wraps the shared :class:`~repro.analysis.config.AnalysisConfig`
    (geometry, density, slots) with simulation-only choices.

    Parameters
    ----------
    analysis:
        Field geometry and density (``P``, ``rho``, ``s``, ``r``).
    channel:
        ``"cam"`` (the paper's Sec. 5 setting) or ``"cfm"``.
    carrier_sense:
        Collide on the carrier-sense radius too (Appendix A).
    half_duplex:
        If true, a node transmitting in a slot cannot receive in it.
        The analysis ignores half-duplex, so the default is off; the
        ablation benchmark measures its effect.
    population:
        ``"fixed"`` (exactly ``round(rho P^2)`` nodes, the paper's
        setting) or ``"poisson"``.
    max_phases:
        Hard stop for the execution (the protocols terminate on their
        own long before this at sane parameters).
    """

    analysis: AnalysisConfig = field(default_factory=AnalysisConfig)
    channel: str = "cam"
    carrier_sense: bool = False
    half_duplex: bool = False
    population: str = "fixed"
    max_phases: int = 200

    def __post_init__(self) -> None:
        check_in("channel", self.channel, ("cam", "cfm"))
        check_in("population", self.population, ("fixed", "poisson"))
        check_positive_int("max_phases", self.max_phases)
        if self.channel == "cfm" and self.carrier_sense:
            raise ValueError("carrier_sense is meaningless under CFM")

    # convenience passthroughs -----------------------------------------
    @property
    def rho(self) -> float:
        """Target neighbor density."""
        return self.analysis.rho

    @property
    def n_rings(self) -> int:
        """Field rings ``P``."""
        return self.analysis.n_rings

    @property
    def slots(self) -> int:
        """Slots per phase ``s``."""
        return self.analysis.slots

    @property
    def radius(self) -> float:
        """Transmission radius ``r``."""
        return self.analysis.radius

    def with_rho(self, rho: float) -> "SimulationConfig":
        """A copy at a different density."""
        return replace(self, analysis=self.analysis.with_rho(rho))

    def with_(self, **changes) -> "SimulationConfig":
        """A copy with simulation-level fields replaced."""
        return replace(self, **changes)
