"""Monte-Carlo replication of broadcast simulations.

The paper's simulation figures average 30 independent runs per grid
point (Sec. 5).  :func:`replicate` spawns independent seed-sequence
children for each run — reproducible, order-independent — and executes
them serially or across a process pool via
:func:`repro.utils.parallel.parallel_map`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.protocols.base import RelayPolicy
from repro.protocols.pbcast import ProbabilisticRelay
from repro.sim.config import SimulationConfig
from repro.sim.results import RunResult
from repro.utils.parallel import parallel_map
from repro.utils.rng import SeedLike, as_seed_sequence
from repro.utils.validation import check_in, check_positive_int

__all__ = ["replicate", "simulate_pb"]


def _execute(task: tuple) -> RunResult:
    """Worker entry point (top-level so it pickles)."""
    policy, config, child_seed, engine, alignment = task
    if engine == "vector":
        from repro.sim.engine import run_broadcast

        return run_broadcast(policy, config, child_seed)
    from repro.sim.desimpl import DesBroadcastSimulation

    return DesBroadcastSimulation(
        policy, config, child_seed, alignment=alignment
    ).run()


def replicate(
    policy: RelayPolicy,
    config: SimulationConfig,
    replications: int,
    seed: SeedLike,
    *,
    engine: str = "vector",
    alignment: str = "phase",
    workers: int | None = 1,
) -> list[RunResult]:
    """Run ``replications`` independent simulations of one scenario.

    Parameters
    ----------
    policy, config:
        What to simulate.
    replications:
        Number of independent runs (paper uses 30).
    seed:
        Root seed; each run gets an independent spawned child.
    engine:
        ``"vector"`` (fast slot-stepper) or ``"des"`` (object engine).
    alignment:
        Slot alignment mode, DES engine only (``"phase"``/``"jitter"``).
    workers:
        Process count for :func:`repro.utils.parallel.parallel_map`;
        ``1`` (default) runs serially, ``None`` uses all cores but one.

    Returns
    -------
    list[RunResult] in replication order.
    """
    check_positive_int("replications", replications)
    check_in("engine", engine, ("vector", "des"))
    root = as_seed_sequence(seed)
    children = root.spawn(replications)
    tasks = [(policy, config, child, engine, alignment) for child in children]
    return parallel_map(_execute, tasks, workers=workers)


def simulate_pb(
    config: SimulationConfig,
    p: float,
    replications: int = 30,
    seed: SeedLike = 0,
    *,
    engine: str = "vector",
    workers: int | None = 1,
) -> list[RunResult]:
    """Replicated probability-based broadcast — the paper's Sec. 5 unit.

    Equivalent to ``replicate(ProbabilisticRelay(p), config, ...)``.
    """
    return replicate(
        ProbabilisticRelay(p),
        config,
        replications,
        seed,
        engine=engine,
        workers=workers,
    )
