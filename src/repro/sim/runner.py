"""Monte-Carlo replication of broadcast simulations.

The paper's simulation figures average 30 independent runs per grid
point (Sec. 5).  :func:`replicate` spawns independent seed-sequence
children for each run — reproducible, order-independent — and executes
them serially or across a process pool via
:func:`repro.utils.parallel.parallel_map`.  :func:`sweep_grid` is the
grid-scale entry point: it flattens an entire ``(rho, p)`` sweep into
one task list so a single process pool serves every grid point (instead
of paying pool startup per point), and can optionally reuse one sampled
deployment per ``(rho, replication)`` cell across all probabilities
(common random numbers).
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.network.deployment import DiskDeployment
from repro.obs import metrics as obs_metrics
from repro.obs import progress as obs_progress
from repro.obs import provenance as obs_provenance
from repro.protocols.base import RelayPolicy
from repro.protocols.pbcast import ProbabilisticRelay
from repro.sim.config import SimulationConfig
from repro.sim.results import RunResult
from repro.utils.parallel import parallel_map
from repro.utils.rng import SeedLike, as_seed_sequence
from repro.utils.validation import check_in, check_positive_int

__all__ = ["replicate", "simulate_pb", "sweep_grid"]


def _execute(task: tuple) -> RunResult:
    """Worker entry point (top-level so it pickles)."""
    policy, config, child_seed, engine, alignment, deployment = task
    reg = obs_metrics.registry()
    t0 = time.perf_counter() if reg.enabled else 0.0
    if engine == "vector":
        from repro.sim.engine import run_broadcast

        result = run_broadcast(policy, config, child_seed, deployment=deployment)
    else:
        from repro.sim.desimpl import DesBroadcastSimulation

        result = DesBroadcastSimulation(
            policy, config, child_seed, alignment=alignment, deployment=deployment
        ).run()
    if reg.enabled:
        reg.timer("runner.task").add(time.perf_counter() - t0)
    return result


def replicate(
    policy: RelayPolicy,
    config: SimulationConfig,
    replications: int,
    seed: SeedLike,
    *,
    engine: str = "vector",
    alignment: str = "phase",
    workers: int | None = 1,
    progress: bool = False,
    manifest_dir=None,
) -> list[RunResult]:
    """Run ``replications`` independent simulations of one scenario.

    Parameters
    ----------
    policy, config:
        What to simulate.
    replications:
        Number of independent runs (paper uses 30).
    seed:
        Root seed; each run gets an independent spawned child.
    engine:
        ``"vector"`` (fast slot-stepper) or ``"des"`` (object engine).
    alignment:
        Slot alignment mode, DES engine only (``"phase"``/``"jitter"``).
    workers:
        Process count for :func:`repro.utils.parallel.parallel_map`;
        ``1`` (default) runs serially, ``None`` uses all cores but one.
    progress:
        If true, print throttled progress/ETA lines to stderr via
        :class:`repro.obs.progress.SweepProgress`.
    manifest_dir:
        If given (a path), write a provenance manifest (seed entropy,
        config, git SHA, environment, timings) to
        ``manifest_dir/manifest.json`` after the runs complete.

    Returns
    -------
    list[RunResult] in replication order.
    """
    check_positive_int("replications", replications)
    check_in("engine", engine, ("vector", "des"))
    root = as_seed_sequence(seed)
    started = obs_provenance.start_clock() if manifest_dir is not None else None
    children = root.spawn(replications)
    tasks = [(policy, config, child, engine, alignment, None) for child in children]
    hook = obs_progress.SweepProgress(len(tasks), "replicate").update if progress else None
    results = parallel_map(_execute, tasks, workers=workers, progress=hook)
    if manifest_dir is not None:
        obs_provenance.write_manifest(
            manifest_dir,
            "replicate",
            config=config,
            seed=root,
            params={
                "replications": replications,
                "engine": engine,
                "alignment": alignment,
                "policy": repr(policy),
            },
            metrics=obs_metrics.registry().snapshot() or None,
            started=started,
        )
    return results


def simulate_pb(
    config: SimulationConfig,
    p: float,
    replications: int = 30,
    seed: SeedLike = None,
    *,
    engine: str = "vector",
    workers: int | None = 1,
) -> list[RunResult]:
    """Replicated probability-based broadcast — the paper's Sec. 5 unit.

    Equivalent to ``replicate(ProbabilisticRelay(p), config, ...)``.
    """
    return replicate(
        ProbabilisticRelay(p),
        config,
        replications,
        seed,
        engine=engine,
        workers=workers,
    )


def sweep_grid(
    config: SimulationConfig | Callable[[float], SimulationConfig],
    rho_grid: Sequence[float],
    p_grid: Sequence[float],
    replications: int,
    seed: SeedLike,
    *,
    policy_factory: Callable[[float], RelayPolicy] = ProbabilisticRelay,
    engine: str = "vector",
    alignment: str = "phase",
    workers: int | None = 1,
    reuse_deployments: bool = False,
    point_seed: Callable[[float, int], SeedLike] | None = None,
    progress: bool = False,
    manifest_dir=None,
) -> dict[tuple[float, float], list[RunResult]]:
    """Replicated simulations over a full ``(rho, p)`` grid, one pool.

    Every ``(rho, p, replication)`` task of the grid goes through a
    single :func:`repro.utils.parallel.parallel_map` call, so one
    process pool serves the whole sweep instead of paying executor
    startup once per grid point.

    Parameters
    ----------
    config:
        Either a :class:`SimulationConfig` (re-densified per ``rho``
        via :meth:`SimulationConfig.with_rho`) or a callable
        ``rho -> SimulationConfig``.
    rho_grid, p_grid:
        Densities and relay probabilities to cross.
    replications:
        Independent runs per grid point.
    seed:
        Root seed for the sweep.
    policy_factory:
        Builds the relay policy for each ``p`` (default
        :class:`~repro.protocols.pbcast.ProbabilisticRelay`).
    engine, alignment, workers:
        As in :func:`replicate`.
    reuse_deployments:
        Common-random-numbers mode: sample one deployment per
        ``(rho, replication)`` cell and reuse it — together with the
        cell's protocol seed — across every ``p``.  Differences between
        probabilities are then measured on identical topologies, which
        sharpens comparisons at the cost of independence across ``p``.
        Incompatible with ``point_seed``.
    point_seed:
        Optional ``(rho, p_index) -> seed`` hook giving each grid point
        the root seed :func:`replicate` would have received, so a
        pooled sweep reproduces per-point ``replicate``/``simulate_pb``
        calls run-for-run.  Default: children spawned from ``seed`` in
        grid order.
    progress:
        If true, print throttled progress/ETA lines (rate, collisions
        per run, mean reachability) to stderr while the sweep runs.
    manifest_dir:
        If given (a path), write a provenance manifest for the sweep to
        ``manifest_dir/manifest.json`` (see :func:`replicate`).

    Returns
    -------
    dict mapping ``(float(rho), float(p))`` to the point's
    ``list[RunResult]`` in replication order.
    """
    check_positive_int("replications", replications)
    check_in("engine", engine, ("vector", "des"))
    rhos = [float(r) for r in rho_grid]
    ps = [float(p) for p in p_grid]
    if not rhos or not ps:
        raise ConfigurationError("rho_grid and p_grid must be non-empty")
    if reuse_deployments and point_seed is not None:
        raise ConfigurationError("point_seed is incompatible with reuse_deployments")
    started = obs_provenance.start_clock() if manifest_dir is not None else None

    def _config_at(rho: float) -> SimulationConfig:
        return config(rho) if callable(config) else config.with_rho(rho)

    configs = [_config_at(rho) for rho in rhos]
    policies = [policy_factory(p) for p in ps]
    root = as_seed_sequence(seed)
    tasks = []

    if reuse_deployments:
        rho_roots = root.spawn(len(rhos))
        for cfg, rho_root in zip(configs, rho_roots, strict=True):
            cells = []
            for cell in rho_root.spawn(replications):
                # Separate streams for the deployment draw and the
                # protocol decisions, so reusing the run seed across p
                # does not correlate positions with relay choices.
                dep_seed, run_seed = cell.spawn(2)
                deployment = DiskDeployment.sample(
                    rho=cfg.rho,
                    n_rings=cfg.n_rings,
                    radius=cfg.radius,
                    rng=np.random.default_rng(dep_seed),
                    population=cfg.population,
                )
                cells.append((run_seed, deployment))
            for policy in policies:
                for run_seed, deployment in cells:
                    tasks.append(
                        (policy, cfg, run_seed, engine, alignment, deployment)
                    )
    else:
        point_roots = None if point_seed is not None else root.spawn(len(rhos) * len(ps))
        for ri, cfg in enumerate(configs):
            for pi, policy in enumerate(policies):
                if point_seed is not None:
                    point_root = as_seed_sequence(point_seed(rhos[ri], pi))
                else:
                    point_root = point_roots[ri * len(ps) + pi]
                for child in point_root.spawn(replications):
                    tasks.append((policy, cfg, child, engine, alignment, None))

    hook = obs_progress.SweepProgress(len(tasks), "sweep").update if progress else None
    results = parallel_map(_execute, tasks, workers=workers, progress=hook)

    grid: dict[tuple[float, float], list[RunResult]] = {}
    it = iter(results)
    for rho in rhos:
        for p in ps:
            grid[(rho, p)] = [next(it) for _ in range(replications)]
    if manifest_dir is not None:
        obs_provenance.write_manifest(
            manifest_dir,
            "sweep_grid",
            config=None if callable(config) else config,
            seed=root,
            params={
                "rho_grid": rhos,
                "p_grid": ps,
                "replications": replications,
                "engine": engine,
                "alignment": alignment,
                "reuse_deployments": reuse_deployments,
                "n_runs": len(tasks),
            },
            metrics=obs_metrics.registry().snapshot() or None,
            started=started,
        )
    return grid
