"""Monte-Carlo replication of broadcast simulations.

The paper's simulation figures average 30 independent runs per grid
point (Sec. 5).  :func:`replicate` spawns independent seed-sequence
children for each run — reproducible, order-independent — and executes
them serially or across a process pool via
:func:`repro.utils.parallel.parallel_map`.  :func:`sweep_grid` is the
grid-scale entry point: it flattens an entire ``(rho, p)`` sweep into
one task list so a single process pool serves every grid point (instead
of paying pool startup per point), and can optionally reuse one sampled
deployment per ``(rho, replication)`` cell across all probabilities
(common random numbers).

Both entry points accept ``store=`` — a :class:`repro.store.DiskStore`
or a path — to run through the content-addressed result store: cached
tasks are served without computing, fresh completions are persisted and
journaled as they land (so a killed sweep resumes where it died via
``resume=True``), and results are bit-identical to a storeless run.
"""

from __future__ import annotations

import os
import time
from typing import TYPE_CHECKING, Callable, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.network.deployment import DiskDeployment
from repro.obs import metrics as obs_metrics
from repro.obs import progress as obs_progress
from repro.obs import provenance as obs_provenance
from repro.obs import spans as obs_spans
from repro.obs import trace as obs_trace
from repro.protocols.base import RelayPolicy
from repro.protocols.pbcast import ProbabilisticRelay
from repro.sim.config import SimulationConfig
from repro.sim.results import RunResult
from repro.utils.parallel import parallel_map
from repro.utils.rng import SeedLike, as_seed_sequence
from repro.utils.validation import check_in, check_positive_int

if TYPE_CHECKING:
    from repro.store.backend import StoreBackend

__all__ = ["replicate", "simulate_pb", "sweep_grid"]

#: Accepted forms of the ``store=`` argument: an opened backend
#: (classic or sharded), a directory path, or ``None`` (no caching).
StoreLike = Union["StoreBackend", str, "os.PathLike[str]", None]

#: Accepted forms of the ``manifest_dir=`` argument.
PathLike = Union[str, "os.PathLike[str]", None]

#: Replications dispatched per pool task when the batched engine is
#: eligible (``engine="vector"``, no tracer attached) and the caller
#: left ``block_size=None``.  Matches the paper's ~30 runs per grid
#: point, so a whole point usually advances as one stacked update.
DEFAULT_BLOCK_SIZE = 32


def _execute(task: tuple) -> RunResult:
    """Worker entry point (top-level so it pickles)."""
    policy, config, child_seed, engine, alignment, deployment = task
    reg = obs_metrics.registry()
    prof = obs_spans.profiler()
    begin = prof.begin if prof.enabled else None
    h = begin("runner.task", "runner") if begin is not None else None
    t0 = time.perf_counter() if reg.enabled else 0.0
    if engine == "vector":
        from repro.sim.engine import run_broadcast

        result = run_broadcast(policy, config, child_seed, deployment=deployment)
    else:
        from repro.sim.desimpl import DesBroadcastSimulation

        result = DesBroadcastSimulation(
            policy, config, child_seed, alignment=alignment, deployment=deployment
        ).run()
    if reg.enabled:
        reg.timer("runner.task").add(time.perf_counter() - t0)
    if h is not None:
        h.end()
    return result


def _execute_block(tasks: Sequence[tuple]) -> list[RunResult]:
    """Worker entry point for one replication block (top-level, pickles).

    Every task in a block shares ``(policy, config, engine, alignment)``
    by construction (see :func:`_block_assignment`); only seeds and
    optional pre-built deployments vary, which is exactly the shape
    :func:`~repro.sim.engine.run_broadcast_batch` consumes.
    """
    from repro.sim.engine import run_broadcast_batch

    policy, config, _, _, _, _ = tasks[0]
    seeds = [t[2] for t in tasks]
    deployments = [t[5] for t in tasks]
    deps = deployments if deployments[0] is not None else None
    reg = obs_metrics.registry()
    prof = obs_spans.profiler()
    begin = prof.begin if prof.enabled else None
    h = begin("runner.block", "runner") if begin is not None else None
    t0 = time.perf_counter() if reg.enabled else 0.0
    results = run_broadcast_batch(policy, config, seeds, deployments=deps)
    if reg.enabled:
        reg.timer("runner.block").add(time.perf_counter() - t0)
    if h is not None:
        h.end(reps=len(tasks))
    return results


def _resolve_block_size(block_size: int | None, engine: str) -> int:
    """Effective replication-block size; ``0`` selects the per-run path.

    The batched engine only stands in for ``engine="vector"`` and only
    when no tracer is attached: traced runs go through
    :func:`~repro.sim.engine.run_broadcast` so each replication reports
    its own per-slot event stream (results are bit-identical either
    way; see the telemetry-neutrality tests).
    """
    if engine != "vector" or obs_trace.get_tracer().enabled:
        return 0
    if block_size is None:
        return DEFAULT_BLOCK_SIZE
    if block_size < 0:
        raise ConfigurationError(f"block_size must be >= 0, got {block_size}")
    return 0 if block_size <= 1 else block_size


def _block_assignment(groups: Sequence[int], block_size: int) -> list[int]:
    """Block id per task: consecutive same-group tasks, ``block_size`` max.

    ``groups[i]`` identifies the ``(policy, config)`` family of task
    ``i`` (e.g. the grid-point index); only consecutive tasks of one
    family may share a block, which is what lets the block worker pull
    ``policy``/``config`` from its first member.
    """
    block_of: list[int] = []
    bid = -1
    count = block_size
    prev: int | None = None
    for g in groups:
        if g != prev or count >= block_size:
            bid += 1
            count = 0
            prev = g
        block_of.append(bid)
        count += 1
    return block_of


def _open_store(store: StoreLike) -> "StoreBackend | None":
    """Normalize the ``store=`` argument (lazy import keeps cold start lean)."""
    if store is None:
        return None
    from repro.store.backend import DiskStore, ShardedBackend, open_store

    if isinstance(store, (DiskStore, ShardedBackend)):
        return store
    # A path opens as whatever layout its marker declares.
    return open_store(store)


def _run_task_list(
    tasks: list[tuple],
    keys: list[str] | None,
    store: "StoreBackend | None",
    resume: bool,
    workers: int | None,
    retries: int,
    prog: "obs_progress.SweepProgress | None",
    block_of: list[int] | None = None,
) -> list[RunResult]:
    """Dispatch a task list through the scheduler or plain parallel_map.

    ``block_of`` (from :func:`_block_assignment`) switches on
    replication-block dispatch: each block becomes one pool task running
    :func:`~repro.sim.engine.run_broadcast_batch`.  Results, store
    entries, and progress lines stay per run either way.
    """
    if store is not None:
        from repro.store.scheduler import run_tasks

        assert keys is not None
        return run_tasks(
            _execute,
            tasks,
            keys,
            store=store,
            resume=resume,
            workers=workers,
            retries=retries,
            progress=prog.update if prog is not None else None,
            batch_execute=_execute_block if block_of is not None else None,
            block_of=block_of,
        )
    if block_of is not None:
        blocks: list[list[int]] = []
        prev_bid: int | None = None
        for i, bid in enumerate(block_of):
            if not blocks or bid != prev_bid:
                blocks.append([])
                prev_bid = bid
            blocks[-1].append(i)
        block_results = parallel_map(
            _execute_block,
            [[tasks[i] for i in blk] for blk in blocks],
            workers=workers,
            progress=prog.update_blocks if prog is not None else None,
        )
        out: list[RunResult | None] = [None] * len(tasks)
        for blk, res in zip(blocks, block_results, strict=True):
            for i, r in zip(blk, res, strict=True):
                out[i] = r
        return [r for r in out if r is not None]
    return parallel_map(
        _execute,
        tasks,
        workers=workers,
        progress=prog.update if prog is not None else None,
    )


def replicate(
    policy: RelayPolicy,
    config: SimulationConfig,
    replications: int,
    seed: SeedLike,
    *,
    engine: str = "vector",
    alignment: str = "phase",
    workers: int | None = 1,
    progress: bool = False,
    manifest_dir: PathLike = None,
    store: StoreLike = None,
    resume: bool = False,
    retries: int = 1,
    block_size: int | None = None,
) -> list[RunResult]:
    """Run ``replications`` independent simulations of one scenario.

    Parameters
    ----------
    policy, config:
        What to simulate.
    replications:
        Number of independent runs (paper uses 30).
    seed:
        Root seed; each run gets an independent spawned child.
    engine:
        ``"vector"`` (fast slot-stepper) or ``"des"`` (object engine).
    alignment:
        Slot alignment mode, DES engine only (``"phase"``/``"jitter"``).
    workers:
        Process count for :func:`repro.utils.parallel.parallel_map`;
        ``1`` (default) runs serially, ``None`` uses all cores but one.
        With batching, a pool task is one replication *block*.
    block_size:
        Replications advanced per
        :func:`~repro.sim.engine.run_broadcast_batch` block.  ``None``
        (default) picks :data:`DEFAULT_BLOCK_SIZE` when the batched
        engine is eligible; ``0`` (or ``1``) forces the per-run path.
        The batched path only stands in for ``engine="vector"`` with no
        tracer attached — traced runs always use
        :func:`~repro.sim.engine.run_broadcast` so each replication
        reports its own event stream.  Results are bit-identical for
        every setting; only wall-clock changes.
    progress:
        If true, print throttled progress/ETA lines to stderr via
        :class:`repro.obs.progress.SweepProgress`.
    manifest_dir:
        If given (a path), write a provenance manifest (seed entropy,
        config, git SHA, environment, timings) to
        ``manifest_dir/manifest.json`` after the runs complete.
    store:
        A :class:`repro.store.DiskStore` (or store directory path):
        serve cached replications, persist fresh ones.  Results are
        bit-identical with the store on, off, or warm; cached results
        carry ``metrics=None`` (telemetry is never persisted).
    resume:
        With ``store``: append to this call's existing completion
        journal instead of starting a fresh one.
    retries:
        With ``store``: extra execution rounds for tasks that raised
        before a structured
        :class:`~repro.errors.SchedulerError` surfaces them.

    Returns
    -------
    list[RunResult] in replication order.
    """
    check_positive_int("replications", replications)
    check_in("engine", engine, ("vector", "des"))
    prof = obs_spans.profiler()
    begin = prof.begin if prof.enabled else None
    h = begin("runner.replicate", "runner") if begin is not None else None
    root = as_seed_sequence(seed)
    started = obs_provenance.start_clock() if manifest_dir is not None else None
    children = root.spawn(replications)
    tasks = [(policy, config, child, engine, alignment, None) for child in children]
    disk_store = _open_store(store)
    task_keys: list[str] | None = None
    if disk_store is not None:
        from repro.store.keys import task_key

        h_keys = begin("store.keys", "store") if begin is not None else None
        task_keys = [
            task_key(policy, config, child, engine, alignment) for child in children
        ]
        if h_keys is not None:
            h_keys.end(keys=len(task_keys))
    resolved_block = _resolve_block_size(block_size, engine)
    block_of = (
        _block_assignment([0] * len(tasks), resolved_block)
        if resolved_block > 1
        else None
    )
    prog = obs_progress.SweepProgress(len(tasks), "replicate") if progress else None
    results = _run_task_list(
        tasks, task_keys, disk_store, resume, workers, retries, prog, block_of
    )
    if manifest_dir is not None:
        obs_provenance.write_manifest(
            manifest_dir,
            "replicate",
            config=config,
            seed=root,
            params={
                "replications": replications,
                "engine": engine,
                "alignment": alignment,
                "policy": repr(policy),
                "store": None if disk_store is None else str(disk_store.root),
            },
            metrics=obs_metrics.registry().snapshot() or None,
            started=started,
        )
    if h is not None:
        h.end(replications=replications)
    return results


def simulate_pb(
    config: SimulationConfig,
    p: float,
    replications: int = 30,
    seed: SeedLike = None,
    *,
    engine: str = "vector",
    alignment: str = "phase",
    workers: int | None = 1,
    progress: bool = False,
    manifest_dir: PathLike = None,
    store: StoreLike = None,
    resume: bool = False,
    block_size: int | None = None,
) -> list[RunResult]:
    """Replicated probability-based broadcast — the paper's Sec. 5 unit.

    Equivalent to ``replicate(ProbabilisticRelay(p), config, ...)``;
    every keyword is forwarded verbatim.
    """
    return replicate(
        ProbabilisticRelay(p),
        config,
        replications,
        seed,
        engine=engine,
        alignment=alignment,
        workers=workers,
        progress=progress,
        manifest_dir=manifest_dir,
        store=store,
        resume=resume,
        block_size=block_size,
    )


def sweep_grid(
    config: SimulationConfig | Callable[[float], SimulationConfig],
    rho_grid: Sequence[float],
    p_grid: Sequence[float],
    replications: int,
    seed: SeedLike,
    *,
    policy_factory: Callable[[float], RelayPolicy] = ProbabilisticRelay,
    engine: str = "vector",
    alignment: str = "phase",
    workers: int | None = 1,
    reuse_deployments: bool = False,
    point_seed: Callable[[float, int], SeedLike] | None = None,
    progress: bool = False,
    manifest_dir: PathLike = None,
    store: StoreLike = None,
    resume: bool = False,
    retries: int = 1,
    block_size: int | None = None,
) -> dict[tuple[float, float], list[RunResult]]:
    """Replicated simulations over a full ``(rho, p)`` grid, one pool.

    Every ``(rho, p, replication)`` task of the grid goes through a
    single :func:`repro.utils.parallel.parallel_map` call, so one
    process pool serves the whole sweep instead of paying executor
    startup once per grid point.

    Parameters
    ----------
    config:
        Either a :class:`SimulationConfig` (re-densified per ``rho``
        via :meth:`SimulationConfig.with_rho`) or a callable
        ``rho -> SimulationConfig``.
    rho_grid, p_grid:
        Densities and relay probabilities to cross.
    replications:
        Independent runs per grid point.
    seed:
        Root seed for the sweep.
    policy_factory:
        Builds the relay policy for each ``p`` (default
        :class:`~repro.protocols.pbcast.ProbabilisticRelay`).
    engine, alignment, workers:
        As in :func:`replicate`.
    reuse_deployments:
        Common-random-numbers mode: sample one deployment per
        ``(rho, replication)`` cell and reuse it — together with the
        cell's protocol seed — across every ``p``.  Differences between
        probabilities are then measured on identical topologies, which
        sharpens comparisons at the cost of independence across ``p``.
        Incompatible with ``point_seed``.
    point_seed:
        Optional ``(rho, p_index) -> seed`` hook giving each grid point
        the root seed :func:`replicate` would have received, so a
        pooled sweep reproduces per-point ``replicate``/``simulate_pb``
        calls run-for-run.  Default: children spawned from ``seed`` in
        grid order.
    progress:
        If true, print throttled progress/ETA lines (rate, collisions
        per run, mean reachability) to stderr while the sweep runs.
    manifest_dir:
        If given (a path), write a provenance manifest for the sweep to
        ``manifest_dir/manifest.json`` (see :func:`replicate`).
    store:
        A :class:`repro.store.DiskStore` (or store directory path).
        Cache-hit tasks are served without computing; fresh completions
        are persisted and journaled *as they finish*, which makes the
        sweep crash-safe: killed at task 7,000 of 10,000, the next
        invocation with ``resume=True`` computes only the missing
        3,000.  Because keys are content-addressed, a pooled sweep with
        ``point_seed`` also shares entries with the per-point
        ``replicate``/``simulate_pb`` calls it reproduces.
    resume:
        With ``store``: append to this sweep's existing journal (the
        crash-recovery path) instead of starting a fresh one.
        Correctness never depends on the flag — hits come from the
        store either way, and a journaled task whose entry was evicted
        or corrupted is recomputed.
    retries:
        With ``store``: extra execution rounds for tasks that raised
        before a structured :class:`~repro.errors.SchedulerError`
        surfaces them (completed siblings stay persisted).
    block_size:
        As in :func:`replicate`: replications advanced per batched-
        engine block.  Blocks never span grid points (each point has
        its own policy and config), so a point's ``replications`` runs
        form ``ceil(replications / block_size)`` pool tasks.  Store
        keys and payloads stay per run, bit-identical to the per-run
        path.

    Returns
    -------
    dict mapping ``(float(rho), float(p))`` to the point's
    ``list[RunResult]`` in replication order.
    """
    check_positive_int("replications", replications)
    check_in("engine", engine, ("vector", "des"))
    rhos = [float(r) for r in rho_grid]
    ps = [float(p) for p in p_grid]
    if not rhos or not ps:
        raise ConfigurationError("rho_grid and p_grid must be non-empty")
    if reuse_deployments and point_seed is not None:
        raise ConfigurationError("point_seed is incompatible with reuse_deployments")
    started = obs_provenance.start_clock() if manifest_dir is not None else None
    prof = obs_spans.profiler()
    begin = prof.begin if prof.enabled else None
    h = begin("sweep.grid", "runner") if begin is not None else None

    def _config_at(rho: float) -> SimulationConfig:
        return config(rho) if callable(config) else config.with_rho(rho)

    configs = [_config_at(rho) for rho in rhos]
    policies = [policy_factory(p) for p in ps]
    root = as_seed_sequence(seed)
    disk_store = _open_store(store)
    h_build = begin("sweep.build", "runner") if begin is not None else None
    tasks = []
    # Grid-point index per task: replication blocks may only form
    # within one (rho, p) point, where policy and config are shared.
    groups: list[int] = []

    if reuse_deployments:
        rho_roots = root.spawn(len(rhos))
        for ri, (cfg, rho_root) in enumerate(zip(configs, rho_roots, strict=True)):
            cells = []
            for cell in rho_root.spawn(replications):
                # Separate streams for the deployment draw and the
                # protocol decisions, so reusing the run seed across p
                # does not correlate positions with relay choices.
                dep_seed, run_seed = cell.spawn(2)
                deployment = DiskDeployment.sample(
                    rho=cfg.rho,
                    n_rings=cfg.n_rings,
                    radius=cfg.radius,
                    rng=np.random.default_rng(dep_seed),
                    population=cfg.population,
                )
                cells.append((run_seed, deployment))
            for pi, policy in enumerate(policies):
                for run_seed, deployment in cells:
                    tasks.append(
                        (policy, cfg, run_seed, engine, alignment, deployment)
                    )
                    groups.append(ri * len(ps) + pi)
    else:
        point_roots = None if point_seed is not None else root.spawn(len(rhos) * len(ps))
        for ri, cfg in enumerate(configs):
            for pi, policy in enumerate(policies):
                if point_seed is not None:
                    point_root = as_seed_sequence(point_seed(rhos[ri], pi))
                else:
                    point_root = point_roots[ri * len(ps) + pi]
                for child in point_root.spawn(replications):
                    tasks.append((policy, cfg, child, engine, alignment, None))
                    groups.append(ri * len(ps) + pi)
    if h_build is not None:
        h_build.end(tasks=len(tasks))

    task_keys: list[str] | None = None
    if disk_store is not None:
        from repro.store.keys import task_key

        h_keys = begin("store.keys", "store") if begin is not None else None
        task_keys = [
            task_key(
                t[0], t[1], t[2], engine, alignment, reuse_deployment=t[5] is not None
            )
            for t in tasks
        ]
        if h_keys is not None:
            h_keys.end(keys=len(task_keys))

    resolved_block = _resolve_block_size(block_size, engine)
    block_of = (
        _block_assignment(groups, resolved_block) if resolved_block > 1 else None
    )
    prog = obs_progress.SweepProgress(len(tasks), "sweep") if progress else None
    results = _run_task_list(
        tasks, task_keys, disk_store, resume, workers, retries, prog, block_of
    )

    grid: dict[tuple[float, float], list[RunResult]] = {}
    it = iter(results)
    for rho in rhos:
        for p in ps:
            grid[(rho, p)] = [next(it) for _ in range(replications)]
    if manifest_dir is not None:
        obs_provenance.write_manifest(
            manifest_dir,
            "sweep_grid",
            config=None if callable(config) else config,
            seed=root,
            params={
                "rho_grid": rhos,
                "p_grid": ps,
                "replications": replications,
                "engine": engine,
                "alignment": alignment,
                "reuse_deployments": reuse_deployments,
                "n_runs": len(tasks),
                "store": None if disk_store is None else str(disk_store.root),
                "resume": resume,
            },
            metrics=obs_metrics.registry().snapshot() or None,
            started=started,
        )
    if h is not None:
        h.end(tasks=len(tasks), points=len(rhos) * len(ps))
    return grid
