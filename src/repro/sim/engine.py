"""The vectorized slot-synchronous broadcast engine.

State lives in flat numpy arrays (informed mask, duplicate counters,
first-sender ids); each slot is resolved by one channel call over CSR
adjacency.  This engine implements exactly the semantics the analytical
framework assumes — aligned phases of ``s`` slots, relays scheduled for
the phase after first reception — and is the workhorse behind the
Monte-Carlo reproductions of Figs. 8–11.
"""

from __future__ import annotations

import time

import numpy as np

from typing import Sequence

from repro.analysis.trace import BroadcastTrace
from repro.errors import ProtocolError
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans
from repro.obs import trace as obs_trace
from repro.obs.events import NodeInformed, PhaseComplete, RunComplete, SlotResolved
from repro.models.cam import BatchCollisionAwareChannel, CollisionAwareChannel
from repro.models.cfm import BatchCollisionFreeChannel, CollisionFreeChannel
from repro.models.costs import EnergyLedger
from repro.network.deployment import DeploymentBatch, DiskDeployment
from repro.network.topology import StackedTopology
from repro.protocols.base import EngineContext, RelayPolicy
from repro.sim.config import SimulationConfig
from repro.sim.results import RunResult
from repro.utils.rng import SeedLike, as_seed_sequence

__all__ = ["run_broadcast", "run_broadcast_batch"]


def _build_channel(config: SimulationConfig, topology):
    if config.channel == "cfm":
        return CollisionFreeChannel(topology)
    return CollisionAwareChannel(topology, carrier_sense=config.carrier_sense)


def _build_batch_channel(config: SimulationConfig, topology: StackedTopology):
    if config.channel == "cfm":
        return BatchCollisionFreeChannel(topology)
    return BatchCollisionAwareChannel(topology, carrier_sense=config.carrier_sense)


def run_broadcast(
    policy: RelayPolicy,
    config: SimulationConfig,
    seed: SeedLike,
    *,
    deployment: DiskDeployment | None = None,
) -> RunResult:
    """Simulate one broadcast execution and return its result.

    Parameters
    ----------
    policy:
        Relay strategy (e.g. :class:`~repro.protocols.pbcast.ProbabilisticRelay`).
    config:
        Scenario parameters.
    seed:
        Seed (or :class:`~numpy.random.SeedSequence`) for this run; the
        deployment draw (when not supplied) and every protocol decision
        derive from it.
    deployment:
        Optional pre-built deployment, e.g. to run several protocols on
        the identical topology (common-random-numbers comparisons).
    """
    seed_seq = as_seed_sequence(seed)
    rng = np.random.default_rng(seed_seq)

    # Telemetry is hoisted to one check per run plus one None-test per
    # slot, so a disabled tracer/registry costs nothing on the hot path.
    tracer = obs_trace.get_tracer()
    emit = tracer.emit if tracer.enabled else None
    reg = obs_metrics.registry()
    prof = obs_spans.profiler()
    begin = prof.begin if prof.enabled else None
    h_run = begin("engine.run", "engine") if begin is not None else None
    t_run0 = time.perf_counter() if reg.enabled else 0.0

    h_deploy = begin("engine.deploy", "engine") if begin is not None else None
    if deployment is None:
        deployment = DiskDeployment.sample(
            rho=config.rho,
            n_rings=config.n_rings,
            radius=config.radius,
            rng=rng,
            population=config.population,
        )
    topology = deployment.topology(
        carrier_radius=config.analysis.carrier_radius if config.carrier_sense else None
    )
    channel = _build_channel(config, topology)
    if h_deploy is not None:
        h_deploy.end(nodes=topology.n_nodes)
    ctx = EngineContext(
        topology=topology, slots_per_phase=config.slots, radius=config.radius
    )
    n = topology.n_nodes
    source = deployment.source
    n_field = deployment.n_field_nodes
    if n_field < 1:
        raise ProtocolError("deployment has no field nodes to inform")
    ring_idx = deployment.ring_indices()
    # Non-disk deployments (e.g. GridDeployment) can span more distance
    # bands than the configured P; size the trace to the deployment.
    n_rings = max(config.n_rings, int(ring_idx.max()))
    slots = config.slots

    informed = np.zeros(n, dtype=bool)
    informed[source] = True
    duplicates = np.zeros(n, dtype=np.int64)
    ledger = EnergyLedger(n)
    # Per-node overheard-sender lists, maintained only for policies that
    # ask for them (e.g. neighbor-knowledge coverage accumulation).
    overheard: dict[int, list[int]] | None = {} if policy.needs_overheard else None

    # Pending relays, keyed by phase: parallel (nodes, slots) arrays.
    pending: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {}

    def push(phase: int, nodes: np.ndarray, node_slots: np.ndarray) -> None:
        if len(nodes):
            pending.setdefault(phase, []).append(
                (np.asarray(nodes, dtype=np.int64), np.asarray(node_slots, dtype=np.int64))
            )

    # The source opens the algorithm in a random slot of phase 1.
    push(1, np.array([source]), rng.integers(0, slots, size=1))

    new_by_slot: list[int] = []
    bcasts_by_slot: list[int] = []
    new_by_phase_ring: list[np.ndarray] = []
    bcasts_by_phase: list[float] = []
    collisions = 0

    h_loop = begin("engine.slot_loop", "engine") if begin is not None else None
    phase = 0
    while pending and phase < config.max_phases:
        phase += 1
        chunks = pending.pop(phase, [])
        if chunks:
            ph_nodes = np.concatenate([c[0] for c in chunks])
            ph_slots = np.concatenate([c[1] for c in chunks])
        else:
            ph_nodes = np.zeros(0, dtype=np.int64)
            ph_slots = np.zeros(0, dtype=np.int64)

        phase_new_rings = np.zeros(n_rings, dtype=float)
        phase_bcasts = 0
        for t in range(slots):
            mask = ph_slots == t
            candidates = ph_nodes[mask]
            if len(candidates):
                heard = None
                if overheard is not None:
                    heard = [
                        np.array(overheard.get(int(c), []), dtype=np.int64)
                        for c in candidates
                    ]
                keep = policy.confirm(
                    candidates, duplicates[candidates], rng, ctx, overheard=heard
                )
                keep = np.asarray(keep, dtype=bool)
                if keep.shape != (len(candidates),):
                    raise ProtocolError(
                        f"{policy!r}.confirm returned shape {keep.shape}, "
                        f"expected ({len(candidates)},)"
                    )
                tx = candidates[keep]
            else:
                tx = candidates

            if len(tx) == 0:
                new_by_slot.append(0)
                bcasts_by_slot.append(0)
                continue

            ledger.record_tx(tx)
            delivery = channel.resolve_slot(tx)
            receivers = delivery.receivers
            senders = delivery.senders
            if config.half_duplex and len(receivers):
                listening = ~np.isin(receivers, tx)
                receivers = receivers[listening]
                senders = senders[listening]
            collisions += len(delivery.collided)
            ledger.record_rx(receivers)

            fresh_mask = ~informed[receivers]
            newly = receivers[fresh_mask]
            duplicates[receivers[~fresh_mask]] += 1
            informed[newly] = True
            if overheard is not None:
                for r, s in zip(receivers.tolist(), senders.tolist(), strict=True):
                    overheard.setdefault(r, []).append(s)

            if len(newly):
                will, relay_slots = policy.schedule(
                    newly, senders[fresh_mask], rng, ctx
                )
                will = np.asarray(will, dtype=bool)
                relay_slots = np.asarray(relay_slots, dtype=np.int64)
                if will.shape != (len(newly),) or relay_slots.shape != (len(newly),):
                    raise ProtocolError(
                        f"{policy!r}.schedule returned mismatched shapes for "
                        f"{len(newly)} nodes"
                    )
                if np.any((relay_slots < 0) | (relay_slots >= slots)):
                    raise ProtocolError(
                        f"{policy!r}.schedule produced slots outside [0, {slots})"
                    )
                push(phase + 1, newly[will], relay_slots[will])
                phase_new_rings += np.bincount(
                    ring_idx[newly], minlength=n_rings + 1
                )[1:].astype(float)

            new_by_slot.append(int(len(newly)))
            bcasts_by_slot.append(int(len(tx)))
            phase_bcasts += int(len(tx))

            if emit is not None:
                abs_slot = (phase - 1) * slots + t
                emit(
                    SlotResolved(
                        phase=phase,
                        slot=abs_slot,
                        n_tx=int(len(tx)),
                        n_rx=int(len(receivers)),
                        n_collisions=int(len(delivery.collided)),
                    )
                )
                for node, snd in zip(newly.tolist(), senders[fresh_mask].tolist(), strict=True):
                    emit(
                        NodeInformed(
                            node=int(node), sender=int(snd), phase=phase, slot=abs_slot
                        )
                    )

        new_by_phase_ring.append(phase_new_rings)
        bcasts_by_phase.append(float(phase_bcasts))
        if emit is not None:
            emit(
                PhaseComplete(
                    phase=phase,
                    n_tx=int(phase_bcasts),
                    n_new=int(phase_new_rings.sum()),
                    informed_total=int(informed.sum()),
                )
            )

    if h_loop is not None:
        h_loop.end(phases=phase, slots=len(new_by_slot), collisions=collisions)
    if not new_by_phase_ring:  # pragma: no cover - source always transmits
        new_by_phase_ring.append(np.zeros(n_rings))
        bcasts_by_phase.append(0.0)

    # The trace denominator must be the realized population.
    effective = config.analysis.with_(n_rings=n_rings, rho=n_field / n_rings**2)
    trace = BroadcastTrace(
        config=effective,
        p=getattr(policy, "p", float("nan")),
        new_by_phase_ring=np.array(new_by_phase_ring),
        broadcasts_by_phase=np.array(bcasts_by_phase),
    )
    new_by_slot_arr = np.array(new_by_slot, dtype=np.int64)
    if emit is not None:
        emit(
            RunComplete(
                phases=phase,
                slots=len(new_by_slot),
                collisions=int(collisions),
                reachability=float(new_by_slot_arr.sum()) / n_field,
                n_field_nodes=n_field,
                total_tx=int(ledger.total_tx),
                total_rx=int(ledger.total_rx),
            )
        )
    metrics_snapshot = None
    if reg.enabled:
        reg.counter("engine.runs").inc()
        reg.counter("engine.slots_resolved").inc(len(new_by_slot))
        reg.counter("engine.collisions").inc(int(collisions))
        reg.timer("engine.run").add(time.perf_counter() - t_run0)
        metrics_snapshot = reg.snapshot()
    if h_run is not None:
        h_run.end(slots=len(new_by_slot), collisions=collisions)
    return RunResult(
        trace=trace,
        new_informed_by_slot=new_by_slot_arr,
        broadcasts_by_slot=np.array(bcasts_by_slot, dtype=np.int64),
        n_field_nodes=n_field,
        collisions=int(collisions),
        total_tx=ledger.total_tx,
        total_rx=ledger.total_rx,
        seed_entropy=seed_seq.entropy,
        informed_mask=informed,
        metrics=metrics_snapshot,
    )


def run_broadcast_batch(
    policy: RelayPolicy,
    config: SimulationConfig,
    seeds: Sequence[SeedLike],
    n_reps: int | None = None,
    *,
    deployments: Sequence[DiskDeployment] | None = None,
) -> list[RunResult]:
    """Simulate a whole block of replications as one stacked update.

    The ``R = len(seeds)`` replications advance in lockstep: their
    deployments are concatenated into one stacked CSR adjacency with
    disjoint global node-id blocks
    (:class:`~repro.network.topology.StackedTopology`), global state
    arrays (informed mask, duplicate counters, energy ledger) span all
    replications, and each slot is resolved by a *single* batched
    channel call — one offset-bincount over the stacked sender lists
    serves every replication at once.

    Bit-identity contract: replication ``r`` consumes random values from
    its own generator, seeded from ``seeds[r]``, in exactly the order
    :func:`run_broadcast` would (deployment draw, source slot, then
    ``confirm``/``schedule`` per slot), and policies see the same local
    node ids, topology view, and positions.  ``run_broadcast_batch(policy,
    config, seeds)[r]`` therefore equals
    ``run_broadcast(policy, config, seeds[r])`` bit for bit; only
    RNG-free work (topology construction, channel resolution) is shared
    across the batch.

    Telemetry: no per-slot trace events are emitted here — the runner
    routes traced work to the per-run engine, which reports each
    replication as its own event stream (see
    :func:`repro.sim.runner.replicate`).  The metrics registry, when
    enabled, sees one ``engine.run_batch`` timer sample per block.

    Parameters
    ----------
    policy, config:
        As for :func:`run_broadcast` — one scenario, many draws.
    seeds:
        One seed (or :class:`~numpy.random.SeedSequence`) per
        replication; typically children of one root via ``spawn``.
    n_reps:
        Optional explicit block size ``R``; must equal ``len(seeds)``
        when given (it exists so call sites can assert their block
        bookkeeping).
    deployments:
        Optional pre-built deployment per replication (common-random-
        numbers comparisons); aligned with ``seeds``.

    Returns
    -------
    list[RunResult]
        Per-replication results, aligned with ``seeds``.
    """
    if len(seeds) == 0:
        raise ValueError("run_broadcast_batch needs at least one seed")
    n = len(seeds)
    if n_reps is not None and n_reps != n:
        raise ValueError(f"n_reps={n_reps} does not match len(seeds)={n}")
    if deployments is not None and len(deployments) != n:
        raise ValueError(
            f"got {len(deployments)} deployments for {n} seeds; they must align"
        )
    n_reps = n

    seed_seqs = [as_seed_sequence(s) for s in seeds]
    rngs = [np.random.default_rng(s) for s in seed_seqs]

    reg = obs_metrics.registry()
    prof = obs_spans.profiler()
    begin = prof.begin if prof.enabled else None
    h_run = begin("engine.run_batch", "engine") if begin is not None else None
    t_run0 = time.perf_counter() if reg.enabled else 0.0

    h_deploy = begin("engine.deploy_batch", "engine") if begin is not None else None
    if deployments is None:
        batch = DeploymentBatch.sample(
            rho=config.rho,
            n_rings=config.n_rings,
            radius=config.radius,
            rngs=rngs,
            population=config.population,
        )
    else:
        batch = DeploymentBatch(list(deployments))
    stacked = batch.stacked_topology(
        carrier_radius=config.analysis.carrier_radius if config.carrier_sense else None
    )
    channel = _build_batch_channel(config, stacked)
    if h_deploy is not None:
        h_deploy.end(reps=n_reps, nodes=batch.n_nodes_total)
    offs = batch.node_offsets
    slots = config.slots

    n_field = [dep.n_field_nodes for dep in batch.deployments]
    if min(n_field) < 1:
        raise ProtocolError("deployment has no field nodes to inform")
    ring_idx = [dep.ring_indices() for dep in batch.deployments]
    n_rings = [max(config.n_rings, int(ri.max())) for ri in ring_idx]
    ctxs = [
        EngineContext(
            topology=stacked.rep_topology(r),
            slots_per_phase=slots,
            radius=config.radius,
        )
        for r in range(n_reps)
    ]

    n_total = batch.n_nodes_total
    informed = np.zeros(n_total, dtype=bool)
    informed[offs[:-1]] = True  # every replication's source
    duplicates = np.zeros(n_total, dtype=np.int64)
    ledger = EnergyLedger(n_total)
    overheard: list[dict[int, list[int]]] | None = (
        [{} for _ in range(n_reps)] if policy.needs_overheard else None
    )

    # Pending relays per replication, in LOCAL node ids: policies must
    # see exactly the ids the per-run engine would hand them.
    pending: list[dict[int, list[tuple[np.ndarray, np.ndarray]]]] = [
        {} for _ in range(n_reps)
    ]

    def push(rep: int, phase: int, nodes: np.ndarray, node_slots: np.ndarray) -> None:
        if len(nodes):
            pending[rep].setdefault(phase, []).append(
                (np.asarray(nodes, dtype=np.int64), np.asarray(node_slots, dtype=np.int64))
            )

    # Each source opens its replication in a random slot of phase 1,
    # drawn from that replication's own stream (source id is 0 locally).
    for r in range(n_reps):
        push(r, 1, np.array([0]), rngs[r].integers(0, slots, size=1))

    new_by_slot: list[list[int]] = [[] for _ in range(n_reps)]
    bcasts_by_slot: list[list[int]] = [[] for _ in range(n_reps)]
    new_by_phase_ring: list[list[np.ndarray]] = [[] for _ in range(n_reps)]
    bcasts_by_phase: list[list[float]] = [[] for _ in range(n_reps)]
    collisions = [0] * n_reps
    tx_local: list[np.ndarray] = [np.zeros(0, dtype=np.int64)] * n_reps

    h_loop = begin("engine.slot_loop", "engine") if begin is not None else None
    phase = 0
    while any(pending) and phase < config.max_phases:
        phase += 1
        # A replication is active while it still has scheduled relays;
        # finished replications simply stop accumulating (their slot
        # series end exactly where the per-run loop would have exited).
        active = [r for r in range(n_reps) if pending[r]]
        ph_nodes: dict[int, np.ndarray] = {}
        ph_slots: dict[int, np.ndarray] = {}
        for r in active:
            chunks = pending[r].pop(phase, [])
            if chunks:
                ph_nodes[r] = np.concatenate([c[0] for c in chunks])
                ph_slots[r] = np.concatenate([c[1] for c in chunks])
            else:  # pragma: no cover - pushes only ever target phase + 1
                ph_nodes[r] = np.zeros(0, dtype=np.int64)
                ph_slots[r] = np.zeros(0, dtype=np.int64)

        phase_new_rings = {r: np.zeros(n_rings[r], dtype=float) for r in active}
        phase_bcasts = dict.fromkeys(active, 0)
        for t in range(slots):
            tx_parts = []
            for r in active:
                candidates = ph_nodes[r][ph_slots[r] == t]
                if len(candidates):
                    heard = None
                    if overheard is not None:
                        heard = [
                            np.array(overheard[r].get(int(c), []), dtype=np.int64)
                            for c in candidates
                        ]
                    keep = policy.confirm(
                        candidates,
                        duplicates[candidates + offs[r]],
                        rngs[r],
                        ctxs[r],
                        overheard=heard,
                    )
                    keep = np.asarray(keep, dtype=bool)
                    if keep.shape != (len(candidates),):
                        raise ProtocolError(
                            f"{policy!r}.confirm returned shape {keep.shape}, "
                            f"expected ({len(candidates)},)"
                        )
                    tx = candidates[keep]
                else:
                    tx = candidates
                tx_local[r] = tx
                if len(tx):
                    tx_parts.append(tx + offs[r])

            if not tx_parts:
                for r in active:
                    new_by_slot[r].append(0)
                    bcasts_by_slot[r].append(0)
                continue

            all_tx = np.concatenate(tx_parts)
            ledger.record_tx(all_tx)
            delivery = channel.resolve_slot(all_tx)
            receivers = delivery.receivers
            senders = delivery.senders
            if config.half_duplex and len(receivers):
                # Global membership equals per-replication membership:
                # a receiver can only appear among its own block's tx.
                listening = ~np.isin(receivers, all_tx)
                receivers = receivers[listening]
                senders = senders[listening]
            ledger.record_rx(receivers)

            fresh_mask = ~informed[receivers]
            newly = receivers[fresh_mask]
            duplicates[receivers[~fresh_mask]] += 1
            informed[newly] = True
            new_senders = senders[fresh_mask]

            # receivers/newly/collided are sorted global ids, so each
            # replication's share is one contiguous run.
            col_bounds = np.searchsorted(delivery.collided, offs)
            rcv_bounds = np.searchsorted(receivers, offs)
            new_bounds = np.searchsorted(newly, offs)
            for r in active:
                collisions[r] += int(col_bounds[r + 1] - col_bounds[r])
                off = int(offs[r])
                if overheard is not None:
                    lo, hi = rcv_bounds[r], rcv_bounds[r + 1]
                    for rcv, snd in zip(
                        receivers[lo:hi].tolist(), senders[lo:hi].tolist(), strict=True
                    ):
                        overheard[r].setdefault(rcv - off, []).append(snd - off)

                lo, hi = new_bounds[r], new_bounds[r + 1]
                n_new = int(hi - lo)
                if n_new:
                    newly_r = newly[lo:hi] - off
                    will, relay_slots = policy.schedule(
                        newly_r, new_senders[lo:hi] - off, rngs[r], ctxs[r]
                    )
                    will = np.asarray(will, dtype=bool)
                    relay_slots = np.asarray(relay_slots, dtype=np.int64)
                    if will.shape != (n_new,) or relay_slots.shape != (n_new,):
                        raise ProtocolError(
                            f"{policy!r}.schedule returned mismatched shapes for "
                            f"{n_new} nodes"
                        )
                    if np.any((relay_slots < 0) | (relay_slots >= slots)):
                        raise ProtocolError(
                            f"{policy!r}.schedule produced slots outside [0, {slots})"
                        )
                    push(r, phase + 1, newly_r[will], relay_slots[will])
                    phase_new_rings[r] += np.bincount(
                        ring_idx[r][newly_r], minlength=n_rings[r] + 1
                    )[1:].astype(float)

                new_by_slot[r].append(n_new)
                n_tx_r = int(len(tx_local[r]))
                bcasts_by_slot[r].append(n_tx_r)
                phase_bcasts[r] += n_tx_r

        for r in active:
            new_by_phase_ring[r].append(phase_new_rings[r])
            bcasts_by_phase[r].append(float(phase_bcasts[r]))

    if h_loop is not None:
        h_loop.end(
            phases=phase,
            slots=sum(len(s) for s in new_by_slot),
            collisions=sum(collisions),
        )
    metrics_snapshot = None
    if reg.enabled:
        reg.counter("engine.runs").inc(n_reps)
        reg.counter("engine.slots_resolved").inc(sum(len(s) for s in new_by_slot))
        reg.counter("engine.collisions").inc(int(sum(collisions)))
        reg.counter("engine.batches").inc()
        reg.timer("engine.run_batch").add(time.perf_counter() - t_run0)
        metrics_snapshot = reg.snapshot()

    results: list[RunResult] = []
    for r in range(n_reps):
        if not new_by_phase_ring[r]:  # pragma: no cover - sources always transmit
            new_by_phase_ring[r].append(np.zeros(n_rings[r]))
            bcasts_by_phase[r].append(0.0)
        effective = config.analysis.with_(
            n_rings=n_rings[r], rho=n_field[r] / n_rings[r] ** 2
        )
        trace = BroadcastTrace(
            config=effective,
            p=getattr(policy, "p", float("nan")),
            new_by_phase_ring=np.array(new_by_phase_ring[r]),
            broadcasts_by_phase=np.array(bcasts_by_phase[r]),
        )
        lo, hi = int(offs[r]), int(offs[r + 1])
        results.append(
            RunResult(
                trace=trace,
                new_informed_by_slot=np.array(new_by_slot[r], dtype=np.int64),
                broadcasts_by_slot=np.array(bcasts_by_slot[r], dtype=np.int64),
                n_field_nodes=n_field[r],
                collisions=int(collisions[r]),
                total_tx=int(ledger.tx_counts[lo:hi].sum()),
                total_rx=int(ledger.rx_counts[lo:hi].sum()),
                seed_entropy=seed_seqs[r].entropy,
                informed_mask=informed[lo:hi].copy(),
                metrics=metrics_snapshot,
            )
        )
    if h_run is not None:
        h_run.end(reps=n_reps)
    return results
