"""The vectorized slot-synchronous broadcast engine.

State lives in flat numpy arrays (informed mask, duplicate counters,
first-sender ids); each slot is resolved by one channel call over CSR
adjacency.  This engine implements exactly the semantics the analytical
framework assumes — aligned phases of ``s`` slots, relays scheduled for
the phase after first reception — and is the workhorse behind the
Monte-Carlo reproductions of Figs. 8–11.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.trace import BroadcastTrace
from repro.errors import ProtocolError
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.events import NodeInformed, PhaseComplete, RunComplete, SlotResolved
from repro.models.cam import CollisionAwareChannel
from repro.models.cfm import CollisionFreeChannel
from repro.models.costs import EnergyLedger
from repro.network.deployment import DiskDeployment
from repro.protocols.base import EngineContext, RelayPolicy
from repro.sim.config import SimulationConfig
from repro.sim.results import RunResult
from repro.utils.rng import SeedLike, as_seed_sequence

__all__ = ["run_broadcast"]


def _build_channel(config: SimulationConfig, topology):
    if config.channel == "cfm":
        return CollisionFreeChannel(topology)
    return CollisionAwareChannel(topology, carrier_sense=config.carrier_sense)


def run_broadcast(
    policy: RelayPolicy,
    config: SimulationConfig,
    seed: SeedLike,
    *,
    deployment: DiskDeployment | None = None,
) -> RunResult:
    """Simulate one broadcast execution and return its result.

    Parameters
    ----------
    policy:
        Relay strategy (e.g. :class:`~repro.protocols.pbcast.ProbabilisticRelay`).
    config:
        Scenario parameters.
    seed:
        Seed (or :class:`~numpy.random.SeedSequence`) for this run; the
        deployment draw (when not supplied) and every protocol decision
        derive from it.
    deployment:
        Optional pre-built deployment, e.g. to run several protocols on
        the identical topology (common-random-numbers comparisons).
    """
    seed_seq = as_seed_sequence(seed)
    rng = np.random.default_rng(seed_seq)

    # Telemetry is hoisted to one check per run plus one None-test per
    # slot, so a disabled tracer/registry costs nothing on the hot path.
    tracer = obs_trace.get_tracer()
    emit = tracer.emit if tracer.enabled else None
    reg = obs_metrics.registry()
    t_run0 = time.perf_counter() if reg.enabled else 0.0

    if deployment is None:
        deployment = DiskDeployment.sample(
            rho=config.rho,
            n_rings=config.n_rings,
            radius=config.radius,
            rng=rng,
            population=config.population,
        )
    topology = deployment.topology(
        carrier_radius=config.analysis.carrier_radius if config.carrier_sense else None
    )
    channel = _build_channel(config, topology)
    ctx = EngineContext(
        topology=topology, slots_per_phase=config.slots, radius=config.radius
    )
    n = topology.n_nodes
    source = deployment.source
    n_field = deployment.n_field_nodes
    if n_field < 1:
        raise ProtocolError("deployment has no field nodes to inform")
    ring_idx = deployment.ring_indices()
    # Non-disk deployments (e.g. GridDeployment) can span more distance
    # bands than the configured P; size the trace to the deployment.
    n_rings = max(config.n_rings, int(ring_idx.max()))
    slots = config.slots

    informed = np.zeros(n, dtype=bool)
    informed[source] = True
    duplicates = np.zeros(n, dtype=np.int64)
    ledger = EnergyLedger(n)
    # Per-node overheard-sender lists, maintained only for policies that
    # ask for them (e.g. neighbor-knowledge coverage accumulation).
    overheard: dict[int, list[int]] | None = {} if policy.needs_overheard else None

    # Pending relays, keyed by phase: parallel (nodes, slots) arrays.
    pending: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {}

    def push(phase: int, nodes: np.ndarray, node_slots: np.ndarray) -> None:
        if len(nodes):
            pending.setdefault(phase, []).append(
                (np.asarray(nodes, dtype=np.int64), np.asarray(node_slots, dtype=np.int64))
            )

    # The source opens the algorithm in a random slot of phase 1.
    push(1, np.array([source]), rng.integers(0, slots, size=1))

    new_by_slot: list[int] = []
    bcasts_by_slot: list[int] = []
    new_by_phase_ring: list[np.ndarray] = []
    bcasts_by_phase: list[float] = []
    collisions = 0

    phase = 0
    while pending and phase < config.max_phases:
        phase += 1
        chunks = pending.pop(phase, [])
        if chunks:
            ph_nodes = np.concatenate([c[0] for c in chunks])
            ph_slots = np.concatenate([c[1] for c in chunks])
        else:
            ph_nodes = np.zeros(0, dtype=np.int64)
            ph_slots = np.zeros(0, dtype=np.int64)

        phase_new_rings = np.zeros(n_rings, dtype=float)
        phase_bcasts = 0
        for t in range(slots):
            mask = ph_slots == t
            candidates = ph_nodes[mask]
            if len(candidates):
                heard = None
                if overheard is not None:
                    heard = [
                        np.array(overheard.get(int(c), []), dtype=np.int64)
                        for c in candidates
                    ]
                keep = policy.confirm(
                    candidates, duplicates[candidates], rng, ctx, overheard=heard
                )
                keep = np.asarray(keep, dtype=bool)
                if keep.shape != (len(candidates),):
                    raise ProtocolError(
                        f"{policy!r}.confirm returned shape {keep.shape}, "
                        f"expected ({len(candidates)},)"
                    )
                tx = candidates[keep]
            else:
                tx = candidates

            if len(tx) == 0:
                new_by_slot.append(0)
                bcasts_by_slot.append(0)
                continue

            ledger.record_tx(tx)
            delivery = channel.resolve_slot(tx)
            receivers = delivery.receivers
            senders = delivery.senders
            if config.half_duplex and len(receivers):
                listening = ~np.isin(receivers, tx)
                receivers = receivers[listening]
                senders = senders[listening]
            collisions += len(delivery.collided)
            ledger.record_rx(receivers)

            fresh_mask = ~informed[receivers]
            newly = receivers[fresh_mask]
            duplicates[receivers[~fresh_mask]] += 1
            informed[newly] = True
            if overheard is not None:
                for r, s in zip(receivers.tolist(), senders.tolist(), strict=True):
                    overheard.setdefault(r, []).append(s)

            if len(newly):
                will, relay_slots = policy.schedule(
                    newly, senders[fresh_mask], rng, ctx
                )
                will = np.asarray(will, dtype=bool)
                relay_slots = np.asarray(relay_slots, dtype=np.int64)
                if will.shape != (len(newly),) or relay_slots.shape != (len(newly),):
                    raise ProtocolError(
                        f"{policy!r}.schedule returned mismatched shapes for "
                        f"{len(newly)} nodes"
                    )
                if np.any((relay_slots < 0) | (relay_slots >= slots)):
                    raise ProtocolError(
                        f"{policy!r}.schedule produced slots outside [0, {slots})"
                    )
                push(phase + 1, newly[will], relay_slots[will])
                phase_new_rings += np.bincount(
                    ring_idx[newly], minlength=n_rings + 1
                )[1:].astype(float)

            new_by_slot.append(int(len(newly)))
            bcasts_by_slot.append(int(len(tx)))
            phase_bcasts += int(len(tx))

            if emit is not None:
                abs_slot = (phase - 1) * slots + t
                emit(
                    SlotResolved(
                        phase=phase,
                        slot=abs_slot,
                        n_tx=int(len(tx)),
                        n_rx=int(len(receivers)),
                        n_collisions=int(len(delivery.collided)),
                    )
                )
                for node, snd in zip(newly.tolist(), senders[fresh_mask].tolist(), strict=True):
                    emit(
                        NodeInformed(
                            node=int(node), sender=int(snd), phase=phase, slot=abs_slot
                        )
                    )

        new_by_phase_ring.append(phase_new_rings)
        bcasts_by_phase.append(float(phase_bcasts))
        if emit is not None:
            emit(
                PhaseComplete(
                    phase=phase,
                    n_tx=int(phase_bcasts),
                    n_new=int(phase_new_rings.sum()),
                    informed_total=int(informed.sum()),
                )
            )

    if not new_by_phase_ring:  # pragma: no cover - source always transmits
        new_by_phase_ring.append(np.zeros(n_rings))
        bcasts_by_phase.append(0.0)

    # The trace denominator must be the realized population.
    effective = config.analysis.with_(n_rings=n_rings, rho=n_field / n_rings**2)
    trace = BroadcastTrace(
        config=effective,
        p=getattr(policy, "p", float("nan")),
        new_by_phase_ring=np.array(new_by_phase_ring),
        broadcasts_by_phase=np.array(bcasts_by_phase),
    )
    new_by_slot_arr = np.array(new_by_slot, dtype=np.int64)
    if emit is not None:
        emit(
            RunComplete(
                phases=phase,
                slots=len(new_by_slot),
                collisions=int(collisions),
                reachability=float(new_by_slot_arr.sum()) / n_field,
                n_field_nodes=n_field,
                total_tx=int(ledger.total_tx),
                total_rx=int(ledger.total_rx),
            )
        )
    metrics_snapshot = None
    if reg.enabled:
        reg.counter("engine.runs").inc()
        reg.counter("engine.slots_resolved").inc(len(new_by_slot))
        reg.counter("engine.collisions").inc(int(collisions))
        reg.timer("engine.run").add(time.perf_counter() - t_run0)
        metrics_snapshot = reg.snapshot()
    return RunResult(
        trace=trace,
        new_informed_by_slot=new_by_slot_arr,
        broadcasts_by_slot=np.array(bcasts_by_slot, dtype=np.int64),
        n_field_nodes=n_field,
        collisions=int(collisions),
        total_tx=ledger.total_tx,
        total_rx=ledger.total_rx,
        seed_entropy=seed_seq.entropy,
        informed_mask=informed,
        metrics=metrics_snapshot,
    )
