"""Reliable (CFM-style) flooding implemented over the CAM substrate.

Sec. 3.2.1 of the paper describes the naive CFM implementation on
CSMA/CA hardware: "require acknowledgment from all receivers of each
broadcasting and re-transmit the packet if timeout occurs", warning
that it costs significant traffic.  This module implements that
behavior in the DES engine so the refined cost model of
:mod:`repro.analysis.refined` can be validated by measurement:

* every informed node retransmits the packet in a random slot of each
  successive phase until **all** of its in-range neighbors hold the
  packet (or a retry cap is hit);
* acknowledgments are modeled as out-of-band and perfectly reliable —
  the node simply knows which neighbors are covered — but their cost is
  *accounted*: every (re)transmission is charged one ACK packet per
  already-informed neighbor, the traffic the paper warns about.

The interesting measured quantity is transmissions-per-node, to compare
against ``DensityAwareCostModel.expected_attempts``.
"""

from __future__ import annotations

import numpy as np

from repro.models.packet import Packet
from repro.network.deployment import DiskDeployment
from repro.protocols.pbcast import SimpleFlooding
from repro.sim.config import SimulationConfig
from repro.sim.desimpl import SLOT_LEN, _START_PRIORITY, DesBroadcastSimulation
from repro.sim.results import RunResult
from repro.utils.rng import SeedLike
from repro.utils.validation import check_positive_int

__all__ = ["ReliableFloodingSimulation"]


class ReliableFloodingSimulation(DesBroadcastSimulation):
    """Retransmit-until-neighborhood-covered flooding under CAM.

    Parameters
    ----------
    config, seed, deployment:
        As for :class:`~repro.sim.desimpl.DesBroadcastSimulation`.
    max_attempts:
        Retry cap per node (including the first transmission).  In
        saturated neighborhoods retransmissions keep contending; the cap
        bounds the run and is itself a measurable failure signal
        (``capped_nodes``).
    """

    def __init__(
        self,
        config: SimulationConfig,
        seed: SeedLike,
        *,
        deployment: DiskDeployment | None = None,
        max_attempts: int = 64,
    ):
        super().__init__(SimpleFlooding(), config, seed, deployment=deployment)
        self.max_attempts = check_positive_int("max_attempts", max_attempts)
        self._attempts = np.zeros(self.topology.n_nodes, dtype=np.int64)
        self._informed = np.zeros(self.topology.n_nodes, dtype=bool)
        self._informed[self.deployment.source] = True
        self.ack_packets = 0

    # ------------------------------------------------------------------
    def _uncovered(self, node: int) -> bool:
        nbrs = self.topology.neighbors(node)
        return not bool(self._informed[nbrs].all()) if len(nbrs) else False

    def _schedule_retry(self, node: int, packet: Packet) -> None:
        if self._attempts[node] >= self.max_attempts or not self._uncovered(node):
            return
        now = self.sim.now
        slots = self.config.slots
        phase = int(now // (slots * SLOT_LEN))
        start = (phase + 1) * slots * SLOT_LEN + int(
            self.rng.integers(0, slots)
        ) * SLOT_LEN
        self.sim.schedule_at(
            start, self._begin_tx, node, packet, priority=_START_PRIORITY
        )

    def _begin_tx(self, sender: int, packet: Packet) -> None:
        # A retry scheduled before coverage completed may be stale now.
        if self._attempts[sender] > 0 and not self._uncovered(sender):
            return
        self._attempts[sender] += 1
        # ACK traffic: every already-informed neighbor acknowledges.
        self.ack_packets += int(
            self._informed[self.topology.neighbors(sender)].sum()
        )
        super()._begin_tx(sender, packet)

    def _end_tx(self, sender: int, packet: Packet) -> None:
        super()._end_tx(sender, packet)
        self._schedule_retry(sender, packet)

    def _deliver(self, receiver: int, packet: Packet) -> None:
        first = not self._informed[receiver]
        self._informed[receiver] = True
        super()._deliver(receiver, packet)
        if first:
            # SimpleFlooding scheduled the first transmission; retries
            # chain from _end_tx.
            pass

    # ------------------------------------------------------------------
    @property
    def attempts_per_node(self) -> np.ndarray:
        """Transmissions performed by each node (0 for never-informed)."""
        v = self._attempts.view()
        v.setflags(write=False)
        return v

    @property
    def capped_nodes(self) -> int:
        """Nodes that hit the retry cap with neighbors still uncovered."""
        capped = 0
        for node in range(self.topology.n_nodes):
            if self._attempts[node] >= self.max_attempts and self._uncovered(node):
                capped += 1
        return capped

    def mean_attempts(self) -> float:
        """Average transmissions over nodes that transmitted at least once."""
        active = self._attempts[self._attempts > 0]
        return float(active.mean()) if len(active) else 0.0

    def run(self) -> RunResult:
        result = super().run()
        return result
