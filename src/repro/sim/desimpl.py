"""Object-level broadcast simulation on the DES kernel.

This engine re-implements the slotted broadcast protocols as
per-node state machines with *continuous-time* collision detection:
assumption 6 verbatim — a transmission is received iff it is the only
one audible at the receiver for its entire duration.  It exists for two
reasons:

1. **Cross-validation.**  With aligned slots it must agree
   statistically with the vectorized engine (the integration tests
   check this), giving two independent implementations of CAM.
2. **The alignment ablation.**  The paper's protocol needs no time
   synchronization but its analysis assumes perfectly aligned slots
   (Sec. 3.1/4.2).  ``alignment="jitter"`` starts each node's backoff
   window at its own reception time, measuring what the alignment
   assumption is worth.

Timing conventions: one slot lasts ``1.0`` simulation time units, a
phase lasts ``slots`` units.  Under ``alignment="phase"`` a node first
informed during phase ``k`` (1-based) transmits in a uniformly chosen
slot of phase ``k+1``.  Under ``alignment="jitter"`` it transmits at
``t_rx + (1 + u)`` slot lengths, ``u`` uniform in ``{0..s-1}`` — a
random slot of its *own* next phase.  Back-to-back transmissions in
adjacent slots touch without overlapping (intervals are half-open;
simultaneous end/start events process ends first).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np

from repro.analysis.trace import BroadcastTrace
from repro.des.simulator import Simulator
from repro.errors import ProtocolError
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.events import NodeInformed, PhaseComplete, RunComplete, SlotResolved
from repro.models.costs import EnergyLedger
from repro.models.packet import Packet
from repro.network.deployment import DiskDeployment
from repro.network.node import SensorNode
from repro.protocols.base import EngineContext, RelayPolicy
from repro.sim.config import SimulationConfig
from repro.sim.results import RunResult
from repro.utils.rng import SeedLike, as_seed_sequence
from repro.utils.validation import check_in

__all__ = ["DesBroadcastSimulation"]

SLOT_LEN = 1.0
_END_PRIORITY = 0  # ends before starts at equal times: touching != overlap
_START_PRIORITY = 1


@dataclass
class _RadioState:
    """Continuous-time reception state of one node."""

    active: int = 0  # audible transmissions in progress
    tx_busy: int = 0  # own transmissions in progress (half-duplex)
    cur_tx: int | None = None  # transmitter currently locked onto
    cur_pkt: Packet | None = None
    cur_ok: bool = False


class DesBroadcastSimulation:
    """One broadcast execution on the event kernel.

    Build, then call :meth:`run`; results mirror
    :func:`repro.sim.engine.run_broadcast`.
    """

    def __init__(
        self,
        policy: RelayPolicy,
        config: SimulationConfig,
        seed: SeedLike,
        *,
        deployment: DiskDeployment | None = None,
        alignment: str = "phase",
    ):
        check_in("alignment", alignment, ("phase", "jitter"))
        self.policy = policy
        self.config = config
        self.alignment = alignment
        self._seed_seq = as_seed_sequence(seed)
        self.rng = np.random.default_rng(self._seed_seq)
        if deployment is None:
            deployment = DiskDeployment.sample(
                rho=config.rho,
                n_rings=config.n_rings,
                radius=config.radius,
                rng=self.rng,
                population=config.population,
            )
        self.deployment = deployment
        self.topology = deployment.topology(
            carrier_radius=config.analysis.carrier_radius
            if config.carrier_sense
            else None
        )
        if config.channel != "cam":
            raise ProtocolError(
                "the DES engine models CAM's physical contention; use the "
                "vectorized engine for CFM runs"
            )
        self.ctx = EngineContext(
            topology=self.topology,
            slots_per_phase=config.slots,
            radius=config.radius,
        )
        self.sim = Simulator()
        n = self.topology.n_nodes
        self.nodes = [SensorNode(i) for i in range(n)]
        self.radio = [_RadioState() for _ in range(n)]
        self.ledger = EnergyLedger(n)
        self.collisions = 0
        self._tx_log: list[tuple[float, int]] = []  # (midpoint time, sender)
        self._rx_log: list[tuple[float, int]] = []  # (tx start time, receiver) first rx
        # Slot-level telemetry, populated only while a tracer is active
        # (self._emit is bound at run() start).  _slot_arrivals counts
        # in-range transmissions per (slot, receiver) so collisions can
        # be reported with the vectorized engine's receiver convention.
        self._emit = None
        self._slot_tx: dict[int, int] = {}
        self._slot_rx: dict[int, int] = {}
        self._slot_arrivals: dict[int, dict[int, int]] = {}
        if self.config.carrier_sense:
            self._audible_csr = self.topology.carrier_csr()
        else:
            self._audible_csr = (self.topology.indptr, self.topology.indices)

    # ------------------------------------------------------------------
    # transmission mechanics
    # ------------------------------------------------------------------
    def _audible(self, sender: int) -> np.ndarray:
        indptr, indices = self._audible_csr
        return indices[indptr[sender] : indptr[sender + 1]]

    def _in_range(self, sender: int) -> np.ndarray:
        return self.topology.neighbors(sender)

    def _begin_tx(self, sender: int, packet: Packet) -> None:
        node = self.nodes[sender]
        # Last-moment veto (counter-based / coverage suppression).
        heard = None
        if self.policy.needs_overheard:
            heard = [np.array(node.overheard_senders, dtype=np.int64)]
        keep = self.policy.confirm(
            np.array([sender]),
            np.array([node.duplicate_receptions]),
            self.rng,
            self.ctx,
            overheard=heard,
        )
        if not bool(np.asarray(keep)[0]):
            return
        start = self.sim.now
        self.ledger.record_tx([sender])
        self._tx_log.append((start + 0.5 * SLOT_LEN, sender))

        in_range = set(int(v) for v in self._in_range(sender))
        if self._emit is not None:
            slot = int(start // SLOT_LEN)
            self._slot_tx[slot] = self._slot_tx.get(slot, 0) + 1
            arrivals = self._slot_arrivals.setdefault(slot, {})
            for w in in_range:
                arrivals[w] = arrivals.get(w, 0) + 1
        if self.config.half_duplex:
            own = self.radio[sender]
            if own.cur_pkt is not None:
                own.cur_ok = False
                self.collisions += 1
            own.tx_busy += 1
        for w in self._audible(sender):
            w = int(w)
            st = self.radio[w]
            lost = False
            if st.cur_pkt is not None and st.cur_ok:
                st.cur_ok = False  # ongoing reception corrupted
                lost = True
            if w in in_range:
                busy = st.active > 0 or (self.config.half_duplex and st.tx_busy > 0)
                if not busy:
                    st.cur_tx, st.cur_pkt, st.cur_ok = sender, packet, True
                else:
                    lost = True  # channel busy: this packet is unhearable
            if lost:
                self.collisions += 1
            st.active += 1
        self.sim.schedule(
            SLOT_LEN, self._end_tx, sender, packet, priority=_END_PRIORITY
        )

    def _end_tx(self, sender: int, packet: Packet) -> None:
        if self.config.half_duplex:
            self.radio[sender].tx_busy -= 1
        in_range = set(int(v) for v in self._in_range(sender))
        for w in self._audible(sender):
            w = int(w)
            st = self.radio[w]
            st.active -= 1
            if w in in_range and st.cur_tx == sender and st.cur_pkt is packet:
                if st.cur_ok:
                    self._deliver(w, packet)
                st.cur_tx, st.cur_pkt, st.cur_ok = None, None, False

    # ------------------------------------------------------------------
    # protocol behaviour
    # ------------------------------------------------------------------
    def _deliver(self, receiver: int, packet: Packet) -> None:
        self.ledger.record_rx([receiver])
        node = self.nodes[receiver]
        node.overheard_senders.append(packet.sender)
        now = self.sim.now
        # _deliver runs at the *end* of the transmission; the reception
        # belongs to the slot (and phase) in which the packet was sent.
        # Attributing the boundary instant to the following phase would
        # push last-slot receptions a full phase late relative to the
        # aligned-slot semantics the vectorized engine implements.
        sent_at = now - SLOT_LEN
        phase = int(sent_at // (self.config.slots * SLOT_LEN)) + 1
        first = node.mark_informed(now, phase, packet.sender)
        if self._emit is not None:
            slot = int(sent_at // SLOT_LEN)
            self._slot_rx[slot] = self._slot_rx.get(slot, 0) + 1
        if not first:
            return
        self._rx_log.append((sent_at, receiver))
        will, slot = self.policy.schedule(
            np.array([receiver]),
            np.array([packet.sender]),
            self.rng,
            self.ctx,
        )
        node.relay_decided = True
        node.will_relay = bool(np.asarray(will)[0])
        if not node.will_relay:
            return
        u = int(np.asarray(slot)[0])
        if self.alignment == "phase":
            next_phase_start = phase * self.config.slots * SLOT_LEN
            start = next_phase_start + u * SLOT_LEN
        else:  # jitter: the node's own next phase opens one slot after rx
            start = now + SLOT_LEN * (1 + u)
        relay = packet.relayed_by(receiver)
        self.sim.schedule_at(start, self._begin_tx, receiver, relay, priority=_START_PRIORITY)

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Execute the broadcast to quiescence and collect results."""
        cfg = self.config
        tracer = obs_trace.get_tracer()
        self._emit = tracer.emit if tracer.enabled else None
        reg = obs_metrics.registry()
        t_run0 = time.perf_counter() if reg.enabled else 0.0
        source = self.deployment.source
        self.nodes[source].informed_at = 0.0
        self.nodes[source].informed_phase = 1
        first_slot = int(self.rng.integers(0, cfg.slots))
        root = Packet(origin=source, sender=source)
        self.sim.schedule_at(
            first_slot * SLOT_LEN, self._begin_tx, source, root, priority=_START_PRIORITY
        )
        horizon = cfg.max_phases * cfg.slots * SLOT_LEN
        self.sim.run(until=horizon)

        result = self._collect()
        if reg.enabled:
            reg.counter("des.runs").inc()
            reg.counter("des.collisions").inc(self.collisions)
            reg.timer("des.run").add(time.perf_counter() - t_run0)
            result = replace(result, metrics=reg.snapshot())
        return result

    def _collect(self) -> RunResult:
        cfg = self.config
        n_field = self.deployment.n_field_nodes
        slots = cfg.slots
        ring_idx = self.deployment.ring_indices()
        # Non-disk deployments can span more distance bands than P.
        n_rings = max(cfg.n_rings, int(ring_idx.max()))

        horizon_slots = max(
            (
                int(max((t for t, _ in self._tx_log), default=0.0) // SLOT_LEN) + 1,
                int(max((t for t, _ in self._rx_log), default=0.0) // SLOT_LEN) + 1,
                1,
            )
        )
        new_by_slot = np.zeros(horizon_slots, dtype=np.int64)
        bcasts_by_slot = np.zeros(horizon_slots, dtype=np.int64)
        for t, _sender in self._tx_log:
            bcasts_by_slot[int(t // SLOT_LEN)] += 1
        for t, _receiver in self._rx_log:
            new_by_slot[min(int(t // SLOT_LEN), horizon_slots - 1)] += 1

        n_phases = -(-horizon_slots // slots)
        new_by_phase_ring = np.zeros((n_phases, n_rings))
        bcasts_by_phase = np.zeros(n_phases)
        for t, receiver in self._rx_log:
            ph = min(int(t // (slots * SLOT_LEN)), n_phases - 1)
            new_by_phase_ring[ph, ring_idx[receiver] - 1] += 1
        for t, _sender in self._tx_log:
            ph = min(int(t // (slots * SLOT_LEN)), n_phases - 1)
            bcasts_by_phase[ph] += 1

        if self._emit is not None:
            self._emit_events(horizon_slots, n_phases, bcasts_by_slot, n_field)

        effective = cfg.analysis.with_(n_rings=n_rings, rho=n_field / n_rings**2)
        trace = BroadcastTrace(
            config=effective,
            p=getattr(self.policy, "p", float("nan")),
            new_by_phase_ring=new_by_phase_ring,
            broadcasts_by_phase=bcasts_by_phase,
        )
        return RunResult(
            trace=trace,
            new_informed_by_slot=new_by_slot,
            broadcasts_by_slot=bcasts_by_slot,
            n_field_nodes=n_field,
            collisions=self.collisions,
            total_tx=self.ledger.total_tx,
            total_rx=self.ledger.total_rx,
            seed_entropy=self._seed_seq.entropy,
            informed_mask=np.array([n.informed for n in self.nodes], dtype=bool),
        )

    def _emit_events(
        self,
        horizon_slots: int,
        n_phases: int,
        bcasts_by_slot: np.ndarray,
        n_field: int,
    ) -> None:
        """Replay the run as the same event stream the vectorized engine
        emits: per active slot a :class:`SlotResolved` (collisions in the
        receiver convention, from ``_slot_arrivals``) followed by that
        slot's :class:`NodeInformed` events, then per-phase and per-run
        summaries.  ``RunComplete.collisions`` keeps this engine's own
        corrupting-event convention, matching ``RunResult.collisions``.
        """
        emit = self._emit
        slots = self.config.slots
        informed_by_slot: dict[int, list[int]] = {}
        for t, receiver in self._rx_log:
            slot = min(int(t // SLOT_LEN), horizon_slots - 1)
            informed_by_slot.setdefault(slot, []).append(receiver)
        informed_total = 1  # the source
        for ph in range(1, n_phases + 1):
            phase_tx = 0
            phase_new = 0
            for slot in range((ph - 1) * slots, min(ph * slots, horizon_slots)):
                n_tx = self._slot_tx.get(slot, 0)
                newly = informed_by_slot.get(slot, ())
                if n_tx == 0 and not newly:
                    continue
                arrivals = self._slot_arrivals.get(slot, {})
                emit(
                    SlotResolved(
                        phase=ph,
                        slot=slot,
                        n_tx=n_tx,
                        n_rx=self._slot_rx.get(slot, 0),
                        n_collisions=sum(1 for c in arrivals.values() if c >= 2),
                    )
                )
                for node in sorted(newly):
                    emit(
                        NodeInformed(
                            node=int(node),
                            sender=int(self.nodes[node].first_sender),
                            phase=ph,
                            slot=slot,
                        )
                    )
                phase_tx += n_tx
                phase_new += len(newly)
            informed_total += phase_new
            emit(
                PhaseComplete(
                    phase=ph,
                    n_tx=phase_tx,
                    n_new=phase_new,
                    informed_total=informed_total,
                )
            )
        emit(
            RunComplete(
                phases=n_phases,
                slots=horizon_slots,
                collisions=self.collisions,
                reachability=len(self._rx_log) / n_field,
                n_field_nodes=n_field,
                total_tx=self.ledger.total_tx,
                total_rx=self.ledger.total_rx,
            )
        )
