"""Object-level broadcast simulation on the DES kernel.

This engine re-implements the slotted broadcast protocols as
per-node state machines with *continuous-time* collision detection:
assumption 6 verbatim — a transmission is received iff it is the only
one audible at the receiver for its entire duration.  It exists for two
reasons:

1. **Cross-validation.**  With aligned slots it must agree
   statistically with the vectorized engine (the integration tests
   check this), giving two independent implementations of CAM.
2. **The alignment ablation.**  The paper's protocol needs no time
   synchronization but its analysis assumes perfectly aligned slots
   (Sec. 3.1/4.2).  ``alignment="jitter"`` starts each node's backoff
   window at its own reception time, measuring what the alignment
   assumption is worth.

Timing conventions: one slot lasts ``1.0`` simulation time units, a
phase lasts ``slots`` units.  Under ``alignment="phase"`` a node first
informed during phase ``k`` (1-based) transmits in a uniformly chosen
slot of phase ``k+1``.  Under ``alignment="jitter"`` it transmits at
``t_rx + (1 + u)`` slot lengths, ``u`` uniform in ``{0..s-1}`` — a
random slot of its *own* next phase.  Back-to-back transmissions in
adjacent slots touch without overlapping (intervals are half-open;
simultaneous end/start events process ends first).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.trace import BroadcastTrace
from repro.des.simulator import Simulator
from repro.errors import ProtocolError
from repro.models.costs import EnergyLedger
from repro.models.packet import Packet
from repro.network.deployment import DiskDeployment
from repro.network.node import SensorNode
from repro.protocols.base import EngineContext, RelayPolicy
from repro.sim.config import SimulationConfig
from repro.sim.results import RunResult
from repro.utils.rng import SeedLike, as_seed_sequence
from repro.utils.validation import check_in

__all__ = ["DesBroadcastSimulation"]

SLOT_LEN = 1.0
_END_PRIORITY = 0  # ends before starts at equal times: touching != overlap
_START_PRIORITY = 1


@dataclass
class _RadioState:
    """Continuous-time reception state of one node."""

    active: int = 0  # audible transmissions in progress
    tx_busy: int = 0  # own transmissions in progress (half-duplex)
    cur_tx: int | None = None  # transmitter currently locked onto
    cur_pkt: Packet | None = None
    cur_ok: bool = False


class DesBroadcastSimulation:
    """One broadcast execution on the event kernel.

    Build, then call :meth:`run`; results mirror
    :func:`repro.sim.engine.run_broadcast`.
    """

    def __init__(
        self,
        policy: RelayPolicy,
        config: SimulationConfig,
        seed: SeedLike,
        *,
        deployment: DiskDeployment | None = None,
        alignment: str = "phase",
    ):
        check_in("alignment", alignment, ("phase", "jitter"))
        self.policy = policy
        self.config = config
        self.alignment = alignment
        self._seed_seq = as_seed_sequence(seed)
        self.rng = np.random.default_rng(self._seed_seq)
        if deployment is None:
            deployment = DiskDeployment.sample(
                rho=config.rho,
                n_rings=config.n_rings,
                radius=config.radius,
                rng=self.rng,
                population=config.population,
            )
        self.deployment = deployment
        self.topology = deployment.topology(
            carrier_radius=config.analysis.carrier_radius
            if config.carrier_sense
            else None
        )
        if config.channel != "cam":
            raise ProtocolError(
                "the DES engine models CAM's physical contention; use the "
                "vectorized engine for CFM runs"
            )
        self.ctx = EngineContext(
            topology=self.topology,
            slots_per_phase=config.slots,
            radius=config.radius,
        )
        self.sim = Simulator()
        n = self.topology.n_nodes
        self.nodes = [SensorNode(i) for i in range(n)]
        self.radio = [_RadioState() for _ in range(n)]
        self.ledger = EnergyLedger(n)
        self.collisions = 0
        self._tx_log: list[tuple[float, int]] = []  # (midpoint time, sender)
        self._rx_log: list[tuple[float, int]] = []  # (time, receiver) first rx
        if self.config.carrier_sense:
            self._audible_csr = self.topology.carrier_csr()
        else:
            self._audible_csr = (self.topology.indptr, self.topology.indices)

    # ------------------------------------------------------------------
    # transmission mechanics
    # ------------------------------------------------------------------
    def _audible(self, sender: int) -> np.ndarray:
        indptr, indices = self._audible_csr
        return indices[indptr[sender] : indptr[sender + 1]]

    def _in_range(self, sender: int) -> np.ndarray:
        return self.topology.neighbors(sender)

    def _begin_tx(self, sender: int, packet: Packet) -> None:
        node = self.nodes[sender]
        # Last-moment veto (counter-based / coverage suppression).
        heard = None
        if self.policy.needs_overheard:
            heard = [np.array(node.overheard_senders, dtype=np.int64)]
        keep = self.policy.confirm(
            np.array([sender]),
            np.array([node.duplicate_receptions]),
            self.rng,
            self.ctx,
            overheard=heard,
        )
        if not bool(np.asarray(keep)[0]):
            return
        start = self.sim.now
        self.ledger.record_tx([sender])
        self._tx_log.append((start + 0.5 * SLOT_LEN, sender))

        in_range = set(int(v) for v in self._in_range(sender))
        if self.config.half_duplex:
            own = self.radio[sender]
            if own.cur_pkt is not None:
                own.cur_ok = False
                self.collisions += 1
            own.tx_busy += 1
        for w in self._audible(sender):
            w = int(w)
            st = self.radio[w]
            lost = False
            if st.cur_pkt is not None and st.cur_ok:
                st.cur_ok = False  # ongoing reception corrupted
                lost = True
            if w in in_range:
                busy = st.active > 0 or (self.config.half_duplex and st.tx_busy > 0)
                if not busy:
                    st.cur_tx, st.cur_pkt, st.cur_ok = sender, packet, True
                else:
                    lost = True  # channel busy: this packet is unhearable
            if lost:
                self.collisions += 1
            st.active += 1
        self.sim.schedule(
            SLOT_LEN, self._end_tx, sender, packet, priority=_END_PRIORITY
        )

    def _end_tx(self, sender: int, packet: Packet) -> None:
        if self.config.half_duplex:
            self.radio[sender].tx_busy -= 1
        in_range = set(int(v) for v in self._in_range(sender))
        for w in self._audible(sender):
            w = int(w)
            st = self.radio[w]
            st.active -= 1
            if w in in_range and st.cur_tx == sender and st.cur_pkt is packet:
                if st.cur_ok:
                    self._deliver(w, packet)
                st.cur_tx, st.cur_pkt, st.cur_ok = None, None, False

    # ------------------------------------------------------------------
    # protocol behaviour
    # ------------------------------------------------------------------
    def _deliver(self, receiver: int, packet: Packet) -> None:
        self.ledger.record_rx([receiver])
        node = self.nodes[receiver]
        node.overheard_senders.append(packet.sender)
        now = self.sim.now
        phase = int(now // (self.config.slots * SLOT_LEN)) + 1
        first = node.mark_informed(now, phase, packet.sender)
        if not first:
            return
        self._rx_log.append((now, receiver))
        will, slot = self.policy.schedule(
            np.array([receiver]),
            np.array([packet.sender]),
            self.rng,
            self.ctx,
        )
        node.relay_decided = True
        node.will_relay = bool(np.asarray(will)[0])
        if not node.will_relay:
            return
        u = int(np.asarray(slot)[0])
        if self.alignment == "phase":
            next_phase_start = phase * self.config.slots * SLOT_LEN
            start = next_phase_start + u * SLOT_LEN
        else:  # jitter: the node's own next phase opens one slot after rx
            start = now + SLOT_LEN * (1 + u)
        relay = packet.relayed_by(receiver)
        self.sim.schedule_at(start, self._begin_tx, receiver, relay, priority=_START_PRIORITY)

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Execute the broadcast to quiescence and collect results."""
        cfg = self.config
        source = self.deployment.source
        self.nodes[source].informed_at = 0.0
        self.nodes[source].informed_phase = 1
        first_slot = int(self.rng.integers(0, cfg.slots))
        root = Packet(origin=source, sender=source)
        self.sim.schedule_at(
            first_slot * SLOT_LEN, self._begin_tx, source, root, priority=_START_PRIORITY
        )
        horizon = cfg.max_phases * cfg.slots * SLOT_LEN
        self.sim.run(until=horizon)

        return self._collect()

    def _collect(self) -> RunResult:
        cfg = self.config
        n_field = self.deployment.n_field_nodes
        slots = cfg.slots
        ring_idx = self.deployment.ring_indices()
        # Non-disk deployments can span more distance bands than P.
        n_rings = max(cfg.n_rings, int(ring_idx.max()))

        horizon_slots = max(
            (
                int(max((t for t, _ in self._tx_log), default=0.0) // SLOT_LEN) + 1,
                int(max((t for t, _ in self._rx_log), default=0.0) // SLOT_LEN) + 1,
                1,
            )
        )
        new_by_slot = np.zeros(horizon_slots, dtype=np.int64)
        bcasts_by_slot = np.zeros(horizon_slots, dtype=np.int64)
        for t, _sender in self._tx_log:
            bcasts_by_slot[int(t // SLOT_LEN)] += 1
        for t, _receiver in self._rx_log:
            new_by_slot[min(int(t // SLOT_LEN), horizon_slots - 1)] += 1

        n_phases = -(-horizon_slots // slots)
        new_by_phase_ring = np.zeros((n_phases, n_rings))
        bcasts_by_phase = np.zeros(n_phases)
        for t, receiver in self._rx_log:
            ph = min(int(t // (slots * SLOT_LEN)), n_phases - 1)
            new_by_phase_ring[ph, ring_idx[receiver] - 1] += 1
        for t, _sender in self._tx_log:
            ph = min(int(t // (slots * SLOT_LEN)), n_phases - 1)
            bcasts_by_phase[ph] += 1

        effective = cfg.analysis.with_(n_rings=n_rings, rho=n_field / n_rings**2)
        trace = BroadcastTrace(
            config=effective,
            p=getattr(self.policy, "p", float("nan")),
            new_by_phase_ring=new_by_phase_ring,
            broadcasts_by_phase=bcasts_by_phase,
        )
        return RunResult(
            trace=trace,
            new_informed_by_slot=new_by_slot,
            broadcasts_by_slot=bcasts_by_slot,
            n_field_nodes=n_field,
            collisions=self.collisions,
            total_tx=self.ledger.total_tx,
            total_rx=self.ledger.total_rx,
            seed_entropy=self._seed_seq.entropy,
            informed_mask=np.array([n.informed for n in self.nodes], dtype=bool),
        )
