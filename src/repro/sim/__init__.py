"""Slot-level simulation of broadcast protocols over CFM/CAM.

Two engines implement the same semantics:

* :func:`repro.sim.engine.run_broadcast` — a vectorized slot-synchronous
  engine (flat numpy state, CSR adjacency kernels); the workhorse for
  the paper's Monte-Carlo sweeps (Figs. 8–11).
* :class:`repro.sim.desimpl.DesBroadcastSimulation` — an object-level
  engine on the :mod:`repro.des` kernel with continuous-time collision
  detection; slower, but supports *unaligned* slots (the paper's
  protocols do not require synchronization; its analysis assumes it)
  and serves as an independent cross-check of the fast engine.

:mod:`repro.sim.runner` replicates runs over seeds/processes and
aggregates results with confidence intervals.
"""

from repro.sim.config import SimulationConfig
from repro.sim.results import AggregateResult, RunResult, aggregate_metric
from repro.sim.engine import run_broadcast, run_broadcast_batch
from repro.sim.desimpl import DesBroadcastSimulation
from repro.sim.reliable import ReliableFloodingSimulation
from repro.sim.runner import replicate, simulate_pb

__all__ = [
    "SimulationConfig",
    "RunResult",
    "AggregateResult",
    "aggregate_metric",
    "run_broadcast",
    "run_broadcast_batch",
    "DesBroadcastSimulation",
    "ReliableFloodingSimulation",
    "replicate",
    "simulate_pb",
]
