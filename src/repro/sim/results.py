"""Result records for simulated broadcast executions.

A :class:`RunResult` carries both a phase/ring-aggregated
:class:`~repro.analysis.trace.BroadcastTrace` — so every analytic metric
applies verbatim to simulation output — and slot-resolution series for
the metrics where the simulator can do better than phase interpolation
(exact latency and budget crossings).

:class:`AggregateResult` summarizes a metric over independent
replications with a normal-approximation confidence interval, matching
the paper's "averaged over 30 random runs".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.analysis.trace import BroadcastTrace
from repro.errors import InfeasibleConstraintError
from repro.utils.stats import norm_ppf
from repro.utils.validation import check_fraction, check_positive

__all__ = ["RunResult", "AggregateResult", "aggregate_metric"]


@dataclass(frozen=True)
class RunResult:
    """Outcome of one simulated broadcast execution.

    Attributes
    ----------
    trace:
        Phase/ring-aggregated execution trace (the simulation
        counterpart of the analytical recursion's output).  Its config
        carries the *realized* density, so trace reachabilities use the
        actual node count as denominator.
    new_informed_by_slot:
        Field nodes first informed in each absolute slot (slot 0 is the
        first slot of phase 1).
    broadcasts_by_slot:
        Transmissions in each absolute slot (including the source's).
    n_field_nodes:
        Reachability denominator (deployment size minus the source).
    collisions:
        Total (receiver, slot) collision events observed.
    total_tx, total_rx:
        Energy-ledger totals: transmissions and successful receptions.
    seed_entropy:
        Entropy of the seed sequence that drove this run (for replay).
    """

    trace: BroadcastTrace
    new_informed_by_slot: np.ndarray = field(repr=False)
    broadcasts_by_slot: np.ndarray = field(repr=False)
    n_field_nodes: int = 0
    collisions: int = 0
    total_tx: int = 0
    total_rx: int = 0
    seed_entropy: object = None
    #: final per-node informed flags (source included), when the engine
    #: provides them; None for results reconstructed from series alone
    informed_mask: np.ndarray | None = field(default=None, repr=False)
    #: :meth:`repro.obs.metrics.MetricsRegistry.snapshot` taken at run
    #: end when metric collection was enabled; None otherwise.  Excluded
    #: from comparisons: telemetry must never affect result identity.
    metrics: dict | None = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    @property
    def slots_per_phase(self) -> int:
        """Slots per phase of the underlying configuration."""
        return self.trace.config.slots

    @property
    def reachability(self) -> float:
        """Fraction of field nodes informed by the end of the run."""
        return float(self.new_informed_by_slot.sum()) / self.n_field_nodes

    @property
    def broadcasts_total(self) -> int:
        """Total transmissions — the paper's energy metric ``M``."""
        return int(self.broadcasts_by_slot.sum())

    def reachability_after_phases(self, phases: float) -> float:
        """Reachability within a phase budget, at slot resolution."""
        check_positive("phases", phases, allow_zero=True)
        slot_budget = phases * self.slots_per_phase
        cum = np.cumsum(self.new_informed_by_slot)
        if len(cum) == 0:
            return 0.0
        idx = min(int(math.ceil(slot_budget)), len(cum)) - 1
        if idx < 0:
            return 0.0
        return float(cum[idx]) / self.n_field_nodes

    def latency_phases_to(self, reachability: float) -> float:
        """Phases (slot-resolution, fractional) to a reachability target."""
        target = check_fraction("reachability", reachability)
        cum = np.cumsum(self.new_informed_by_slot) / self.n_field_nodes
        if len(cum) == 0 or cum[-1] < target:
            peak = float(cum[-1]) if len(cum) else 0.0
            raise InfeasibleConstraintError(
                f"reachability {target:.3f} unattained (peak {peak:.3f})"
            )
        slot = int(np.searchsorted(cum, target))
        return (slot + 1) / self.slots_per_phase

    def broadcasts_to(self, reachability: float) -> int:
        """Transmissions spent when a reachability target is first hit."""
        target = check_fraction("reachability", reachability)
        cum_r = np.cumsum(self.new_informed_by_slot) / self.n_field_nodes
        if len(cum_r) == 0 or cum_r[-1] < target:
            peak = float(cum_r[-1]) if len(cum_r) else 0.0
            raise InfeasibleConstraintError(
                f"reachability {target:.3f} unattained (peak {peak:.3f})"
            )
        slot = int(np.searchsorted(cum_r, target))
        return int(self.broadcasts_by_slot[: slot + 1].sum())

    def reachability_within_budget(self, budget: float) -> float:
        """Reachability reached before the broadcast budget is exceeded."""
        check_positive("budget", budget)
        cum_b = np.cumsum(self.broadcasts_by_slot)
        cum_r = np.cumsum(self.new_informed_by_slot) / self.n_field_nodes
        if len(cum_b) == 0:
            return 0.0
        within = np.flatnonzero(cum_b <= budget)
        if len(within) == 0:
            return 0.0
        return float(cum_r[within[-1]])


@dataclass(frozen=True)
class AggregateResult:
    """A metric summarized over independent replications.

    ``NaN`` samples (infeasible runs) are excluded from the moments but
    reported via ``n_failed`` — the paper's figures likewise omit
    infeasible grid points.
    """

    name: str
    samples: np.ndarray = field(repr=False)
    confidence: float = 0.95

    @property
    def n(self) -> int:
        """Number of feasible samples."""
        return int(np.sum(~np.isnan(self.samples)))

    @property
    def n_failed(self) -> int:
        """Number of infeasible (NaN) samples."""
        return int(np.sum(np.isnan(self.samples)))

    @property
    def mean(self) -> float:
        """Sample mean over feasible replications (NaN if none)."""
        return float(np.nanmean(self.samples)) if self.n else float("nan")

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1; NaN for < 2 samples)."""
        return float(np.nanstd(self.samples, ddof=1)) if self.n >= 2 else float("nan")

    @property
    def half_width(self) -> float:
        """Normal-approximation CI half width at ``confidence``."""
        if self.n < 2:
            return float("nan")
        z = norm_ppf(0.5 + self.confidence / 2.0)
        return float(z * self.std / math.sqrt(self.n))

    @property
    def ci(self) -> tuple[float, float]:
        """The confidence interval ``(lo, hi)``."""
        hw = self.half_width
        return (self.mean - hw, self.mean + hw)

    def __str__(self) -> str:
        return f"{self.name}: {self.mean:.4f} ± {self.half_width:.4f} (n={self.n})"


def aggregate_metric(
    results: Sequence[RunResult],
    metric: Callable[[RunResult], float],
    *,
    name: str = "metric",
    confidence: float = 0.95,
) -> AggregateResult:
    """Evaluate ``metric`` on each run; infeasible runs count as NaN."""
    samples = np.empty(len(results))
    for i, run in enumerate(results):
        try:
            samples[i] = metric(run)
        except InfeasibleConstraintError:
            samples[i] = np.nan
    return AggregateResult(name=name, samples=samples, confidence=confidence)
