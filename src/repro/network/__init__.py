"""Network deployment and topology substrate.

Implements the deployment half of the abstract network model: uniform
random placement on a disk (Sec. 4, "uniform deployment of N nodes in a
circle of radius P*r" with the source at the center) and the symmetric
unit-disk communication graph of assumptions 1–2, built with a
grid-bucket spatial index so construction is linear in the node count.
"""

from repro.network.deployment import DiskDeployment
from repro.network.grid import GridDeployment
from repro.network.topology import Topology
from repro.network.node import SensorNode
from repro.network.stats import (
    DeploymentStats,
    connectivity_probability,
    deployment_stats,
    expected_isolation_probability,
)

__all__ = [
    "DiskDeployment",
    "GridDeployment",
    "Topology",
    "SensorNode",
    "DeploymentStats",
    "deployment_stats",
    "connectivity_probability",
    "expected_isolation_probability",
]
