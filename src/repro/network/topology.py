"""Unit-disk communication graphs in CSR form.

The communication graph of assumption 2 connects every pair of nodes
within transmission radius ``r``.  For the vectorized engine we need the
adjacency as flat CSR arrays (``indptr``/``indices``), and we need to
build it fast for thousands of Monte-Carlo replications; a grid-bucket
spatial index with cell size ``r`` reduces candidate pairs to the nine
surrounding cells, and all distance work happens in per-cell-pair numpy
blocks rather than per node.

The same machinery builds the ``carrier_radius`` graph of Appendix A on
demand (neighbors within carrier-sense range but *also* within it —
the carrier graph includes the transmission graph; CAM code subtracts
as needed).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.utils.validation import check_positive

__all__ = ["Topology", "build_disk_graph_csr"]


def _grid_cells(positions: np.ndarray, cell: float) -> tuple[np.ndarray, dict]:
    """Assign each point to a grid cell; return cell keys and an index map."""
    ij = np.floor(positions / cell).astype(np.int64)
    ij -= ij.min(axis=0, keepdims=True)
    width = int(ij[:, 0].max()) + 2 if len(ij) else 1
    keys = ij[:, 0] + ij[:, 1] * width
    buckets: dict[int, np.ndarray] = {}
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    bounds = np.flatnonzero(np.diff(sorted_keys)) + 1
    starts = np.concatenate(([0], bounds))
    ends = np.concatenate((bounds, [len(keys)]))
    for s, e in zip(starts, ends, strict=True):
        buckets[int(sorted_keys[s])] = order[s:e]
    return keys, {"buckets": buckets, "width": width}


def build_disk_graph_csr(
    positions: np.ndarray, radius: float
) -> tuple[np.ndarray, np.ndarray]:
    """CSR adjacency (``indptr``, ``indices``) of the unit-disk graph.

    Edges connect distinct points at Euclidean distance ``<= radius``;
    the graph is symmetric and has no self-loops.  Each row's neighbor
    list is sorted ascending.
    """
    positions = np.asarray(positions, dtype=float)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ValueError(f"positions must be (n, 2), got {positions.shape}")
    radius = check_positive("radius", radius)
    n = positions.shape[0]
    if n == 0:
        return np.zeros(1, dtype=np.int64), np.zeros(0, dtype=np.int64)

    keys, grid = _grid_cells(positions, radius)
    buckets: dict[int, np.ndarray] = grid["buckets"]
    width: int = grid["width"]
    r2 = radius * radius

    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    # Scan unordered cell pairs once: (0,0) same-cell plus 4 of the 8
    # neighbor offsets; symmetry supplies the rest.
    half_offsets = (0, (1, 0), (0, 1), (1, 1), (-1, 1))
    for key, members in buckets.items():
        pos_a = positions[members]
        for off in half_offsets:
            if off == 0:
                # Same cell: strict upper-triangle pairs.
                d2 = ((pos_a[:, None, :] - pos_a[None, :, :]) ** 2).sum(-1)
                ii, jj = np.triu_indices(len(members), k=1)
                hit = d2[ii, jj] <= r2
                src_parts.append(members[ii[hit]])
                dst_parts.append(members[jj[hit]])
                continue
            nb_key = key + off[0] + off[1] * width
            other = buckets.get(nb_key)
            if other is None:
                continue
            pos_b = positions[other]
            d2 = ((pos_a[:, None, :] - pos_b[None, :, :]) ** 2).sum(-1)
            ii, jj = np.nonzero(d2 <= r2)
            src_parts.append(members[ii])
            dst_parts.append(other[jj])

    if src_parts:
        src = np.concatenate(src_parts)
        dst = np.concatenate(dst_parts)
    else:
        src = np.zeros(0, dtype=np.int64)
        dst = np.zeros(0, dtype=np.int64)
    # Symmetrize and build CSR.
    rows = np.concatenate((src, dst))
    cols = np.concatenate((dst, src))
    order = np.lexsort((cols, rows))
    rows = rows[order]
    cols = cols[order]
    counts = np.bincount(rows, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, cols.astype(np.int64)


class Topology:
    """A sensor network's communication structure.

    Wraps the transmission-range CSR adjacency and, lazily, the
    carrier-sense-range adjacency (Appendix A).  Immutable once built.

    Parameters
    ----------
    positions:
        ``(n, 2)`` node coordinates.
    radius:
        Transmission radius ``r``.
    carrier_radius:
        Carrier-sense radius; defaults to ``2 * radius`` when the
        carrier graph is first requested.
    """

    def __init__(
        self,
        positions: np.ndarray,
        radius: float,
        *,
        carrier_radius: float | None = None,
    ):
        self.positions = np.array(positions, dtype=float)
        self.positions.setflags(write=False)
        self.radius = check_positive("radius", radius)
        if carrier_radius is not None and carrier_radius < radius:
            raise ValueError("carrier_radius must be >= radius")
        self._carrier_radius = carrier_radius
        self.indptr, self.indices = build_disk_graph_csr(self.positions, radius)
        self._carrier_csr: tuple[np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of nodes (including the source)."""
        return self.positions.shape[0]

    @property
    def n_edges(self) -> int:
        """Number of undirected communication links."""
        return int(len(self.indices) // 2)

    @property
    def degrees(self) -> np.ndarray:
        """Neighbor count per node."""
        return np.diff(self.indptr)

    @property
    def mean_degree(self) -> float:
        """Average neighbor count (the empirical counterpart of ``rho``)."""
        return float(self.degrees.mean()) if self.n_nodes else 0.0

    @property
    def carrier_radius(self) -> float:
        """Carrier-sense radius in effect (default ``2 r``)."""
        return self._carrier_radius if self._carrier_radius is not None else 2.0 * self.radius

    def neighbors(self, node: int) -> np.ndarray:
        """Neighbor ids of ``node`` (sorted, read-only view)."""
        view = self.indices[self.indptr[node] : self.indptr[node + 1]]
        return view

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        """Undirected edges as ``(u, v)`` with ``u < v``."""
        for u in range(self.n_nodes):
            for v in self.neighbors(u):
                if u < int(v):
                    yield u, int(v)

    def carrier_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR adjacency at carrier-sense radius (built lazily, cached)."""
        if self._carrier_csr is None:
            self._carrier_csr = build_disk_graph_csr(self.positions, self.carrier_radius)
        return self._carrier_csr

    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """Whether the transmission graph is a single connected component."""
        n = self.n_nodes
        if n == 0:
            return True
        seen = np.zeros(n, dtype=bool)
        stack = [0]
        seen[0] = True
        while stack:
            u = stack.pop()
            for v in self.neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    stack.append(int(v))
        return bool(seen.all())

    def reachable_from(self, node: int) -> np.ndarray:
        """Boolean mask of nodes reachable from ``node`` in the graph."""
        n = self.n_nodes
        seen = np.zeros(n, dtype=bool)
        stack = [node]
        seen[node] = True
        while stack:
            u = stack.pop()
            for v in self.neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    stack.append(int(v))
        return seen

    def to_networkx(self):
        """Export to a :class:`networkx.Graph` with ``pos`` node attributes."""
        import networkx as nx

        g = nx.Graph()
        for i in range(self.n_nodes):
            g.add_node(i, pos=tuple(self.positions[i]))
        g.add_edges_from(self.iter_edges())
        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Topology(n={self.n_nodes}, edges={self.n_edges}, "
            f"r={self.radius}, mean_degree={self.mean_degree:.1f})"
        )
