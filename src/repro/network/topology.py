"""Unit-disk communication graphs in CSR form.

The communication graph of assumption 2 connects every pair of nodes
within transmission radius ``r``.  For the vectorized engine we need the
adjacency as flat CSR arrays (``indptr``/``indices``), and we need to
build it fast for thousands of Monte-Carlo replications; a grid-bucket
spatial index with cell size ``r`` reduces candidate pairs to the nine
surrounding cells, and all distance work happens in per-cell-pair numpy
blocks rather than per node.

The same machinery builds the ``carrier_radius`` graph of Appendix A on
demand (neighbors within carrier-sense range but *also* within it —
the carrier graph includes the transmission graph; CAM code subtracts
as needed).

For replication-batched Monte-Carlo, :class:`StackedTopology` stores
``R`` independent deployments as one CSR structure over globally
renumbered nodes (replication ``r`` owns ids
``[node_offsets[r], node_offsets[r+1])``), so a single gather/bincount
pass serves every replication's slot at once.  Its builder
(:func:`build_disk_graph_csr_stacked`) folds the replication index into
the grid-cell key and generates candidate pairs with sorted-key
``searchsorted`` runs instead of a Python loop over cells — one
vectorized pass over all ``R`` point sets, with cross-replication edges
impossible by construction.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.utils.validation import check_positive

__all__ = [
    "Topology",
    "StackedTopology",
    "build_disk_graph_csr",
    "build_disk_graph_csr_stacked",
]


def _grid_cells(positions: np.ndarray, cell: float) -> tuple[np.ndarray, dict]:
    """Assign each point to a grid cell; return cell keys and an index map."""
    ij = np.floor(positions / cell).astype(np.int64)
    ij -= ij.min(axis=0, keepdims=True)
    width = int(ij[:, 0].max()) + 2 if len(ij) else 1
    keys = ij[:, 0] + ij[:, 1] * width
    buckets: dict[int, np.ndarray] = {}
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    bounds = np.flatnonzero(np.diff(sorted_keys)) + 1
    starts = np.concatenate(([0], bounds))
    ends = np.concatenate((bounds, [len(keys)]))
    for s, e in zip(starts, ends, strict=True):
        buckets[int(sorted_keys[s])] = order[s:e]
    return keys, {"buckets": buckets, "width": width}


def build_disk_graph_csr(
    positions: np.ndarray, radius: float
) -> tuple[np.ndarray, np.ndarray]:
    """CSR adjacency (``indptr``, ``indices``) of the unit-disk graph.

    Edges connect distinct points at Euclidean distance ``<= radius``;
    the graph is symmetric and has no self-loops.  Each row's neighbor
    list is sorted ascending.
    """
    positions = np.asarray(positions, dtype=float)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ValueError(f"positions must be (n, 2), got {positions.shape}")
    radius = check_positive("radius", radius)
    n = positions.shape[0]
    if n == 0:
        return np.zeros(1, dtype=np.int64), np.zeros(0, dtype=np.int64)

    keys, grid = _grid_cells(positions, radius)
    buckets: dict[int, np.ndarray] = grid["buckets"]
    width: int = grid["width"]
    r2 = radius * radius

    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    # Scan unordered cell pairs once: (0,0) same-cell plus 4 of the 8
    # neighbor offsets; symmetry supplies the rest.
    half_offsets = (0, (1, 0), (0, 1), (1, 1), (-1, 1))
    for key, members in buckets.items():
        pos_a = positions[members]
        for off in half_offsets:
            if off == 0:
                # Same cell: strict upper-triangle pairs.
                d2 = ((pos_a[:, None, :] - pos_a[None, :, :]) ** 2).sum(-1)
                ii, jj = np.triu_indices(len(members), k=1)
                hit = d2[ii, jj] <= r2
                src_parts.append(members[ii[hit]])
                dst_parts.append(members[jj[hit]])
                continue
            nb_key = key + off[0] + off[1] * width
            other = buckets.get(nb_key)
            if other is None:
                continue
            pos_b = positions[other]
            d2 = ((pos_a[:, None, :] - pos_b[None, :, :]) ** 2).sum(-1)
            ii, jj = np.nonzero(d2 <= r2)
            src_parts.append(members[ii])
            dst_parts.append(other[jj])

    if src_parts:
        src = np.concatenate(src_parts)
        dst = np.concatenate(dst_parts)
    else:
        src = np.zeros(0, dtype=np.int64)
        dst = np.zeros(0, dtype=np.int64)
    # Symmetrize and build CSR.
    rows = np.concatenate((src, dst))
    cols = np.concatenate((dst, src))
    order = np.lexsort((cols, rows))
    rows = rows[order]
    cols = cols[order]
    counts = np.bincount(rows, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, cols.astype(np.int64)


def _flat_runs(first: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenate integer ranges ``[first[i], first[i] + lengths[i])``.

    The cumsum-of-unit-steps trick from the CAM gather kernel: cheaper
    than ``repeat`` + ``arange`` per run, and fully vectorized.
    ``lengths`` must be non-negative with a positive total.
    """
    nz = lengths > 0
    s_nz = first[nz]
    l_nz = lengths[nz]
    total = int(l_nz.sum())
    bounds = np.cumsum(l_nz)
    steps = np.ones(total, dtype=np.int64)
    steps[0] = s_nz[0]
    ends = s_nz + l_nz
    steps[bounds[:-1]] = s_nz[1:] - ends[:-1] + 1
    return np.cumsum(steps)


def _build_field_csr(
    positions: np.ndarray, radius: float
) -> tuple[np.ndarray, np.ndarray]:
    """One field's CSR adjacency via offset-searchsorted candidate runs.

    Same edge set and neighbor order as :func:`build_disk_graph_csr`,
    but with no Python loop over grid cells: points are sorted by cell
    key once, each of the five half-offsets resolves all its candidate
    pairs with two ``searchsorted`` calls plus one flat-run expansion,
    and the final CSR comes from an in-place value sort of packed
    ``row * (n + 1) + col`` keys (each directed edge is unique, so the
    packed keys are too, and sorting values beats argsort + gathers).
    """
    n = positions.shape[0]
    ij = np.floor(positions / radius).astype(np.int64)
    ij -= ij.min(axis=0, keepdims=True)
    width = int(ij[:, 0].max()) + 2
    keys = ij[:, 1] * width + ij[:, 0]
    order = np.argsort(keys, kind="stable")
    skeys = keys[order]
    sx = np.ascontiguousarray(positions[order, 0])
    sy = np.ascontiguousarray(positions[order, 1])
    r2 = radius * radius
    # Packed (row, col) edge keys fit in int32 for any field below ~46k
    # nodes; the narrower dtype halves the traffic of the edge sort
    # that dominates CSR assembly.
    stride = n + 1
    edge_dtype = (
        np.int32 if stride * stride <= np.iinfo(np.int32).max else np.int64
    )
    order_ids = order.astype(edge_dtype)

    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    # Unordered cell pairs once: same-cell plus 4 of the 8 neighbor
    # offsets; symmetry supplies the rest (as in the per-run builder).
    for di, dj in ((0, 0), (1, 0), (0, 1), (1, 1), (-1, 1)):
        delta = dj * width + di
        if delta == 0:
            # Same cell: each point pairs with the strictly-later points
            # of its own key run (the sorted-order triu).
            first = np.arange(1, n + 1, dtype=np.int64)
            right = np.searchsorted(skeys, skeys, side="right")
        else:
            target = skeys + delta
            first = np.searchsorted(skeys, target, side="left")
            right = np.searchsorted(skeys, target, side="right")
        lengths = right - first
        if int(lengths.sum()) == 0:
            continue
        a_idx = np.repeat(np.arange(n, dtype=np.int64), lengths)
        b_idx = _flat_runs(first, lengths)
        dx = sx[a_idx] - sx[b_idx]
        dy = sy[a_idx] - sy[b_idx]
        dx *= dx
        dy *= dy
        dx += dy
        hit = dx <= r2
        src_parts.append(order_ids[a_idx[hit]])
        dst_parts.append(order_ids[b_idx[hit]])

    if not src_parts:
        return np.zeros(n + 1, dtype=np.int64), np.zeros(0, dtype=np.int64)
    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)
    packed = np.concatenate((src, dst)) * edge_dtype(stride)
    packed += np.concatenate((dst, src))
    packed.sort()
    # Row starts fall straight out of bisecting the sorted packed keys
    # at each row's key range — no per-edge row decode needed.
    bounds = (np.arange(n + 1, dtype=np.int64) * stride).astype(edge_dtype)
    indptr = np.searchsorted(packed, bounds).astype(np.int64)
    cols = packed % edge_dtype(stride)
    return indptr, cols


def build_disk_graph_csr_stacked(
    positions: np.ndarray, node_offsets: np.ndarray, radius: float
) -> tuple[np.ndarray, np.ndarray]:
    """CSR adjacency of ``R`` stacked unit-disk graphs.

    Parameters
    ----------
    positions:
        ``(N, 2)`` coordinates of all replications concatenated;
        replication ``r`` owns rows ``[node_offsets[r], node_offsets[r+1])``.
    node_offsets:
        ``(R + 1,)`` cumulative node counts (``node_offsets[0] == 0``,
        ``node_offsets[-1] == N``).
    radius:
        Transmission radius, shared by every replication.

    Returns
    -------
    (indptr, indices):
        One CSR structure over the *global* ids.  Within each
        replication's block it is bit-identical to what
        :func:`build_disk_graph_csr` produces for that replication alone
        (same edges, neighbor lists sorted ascending); there are never
        edges between replications.

    Notes
    -----
    Each replication goes through :func:`_build_field_csr` — the
    offset-searchsorted builder with no per-cell Python loop — and the
    per-replication CSR blocks are spliced together with the global id
    offsets applied.  Working one replication at a time is deliberate:
    a single replication's candidate/edge arrays fit in cache, whereas
    one flat pass over all ``R`` replications pushes every gather and
    the final edge sort out to main memory and ends up slower than the
    per-run builder it is meant to beat.
    """
    positions = np.asarray(positions, dtype=float)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ValueError(f"positions must be (n, 2), got {positions.shape}")
    radius = check_positive("radius", radius)
    node_offsets = np.asarray(node_offsets, dtype=np.int64)
    n = positions.shape[0]
    if node_offsets.ndim != 1 or node_offsets[0] != 0 or node_offsets[-1] != n:
        raise ValueError("node_offsets must run from 0 to len(positions)")
    if np.any(np.diff(node_offsets) < 0):
        raise ValueError("node_offsets must be non-decreasing")
    if n == 0:
        return np.zeros(1, dtype=np.int64), np.zeros(0, dtype=np.int64)

    indptr = np.zeros(n + 1, dtype=np.int64)
    blocks: list[tuple[int, int, np.ndarray]] = []
    n_edges = 0
    for r in range(len(node_offsets) - 1):
        lo = int(node_offsets[r])
        hi = int(node_offsets[r + 1])
        if hi == lo:
            continue
        rep_indptr, rep_cols = _build_field_csr(positions[lo:hi], radius)
        indptr[lo + 1 : hi + 1] = n_edges + rep_indptr[1:]
        blocks.append((lo, n_edges, rep_cols))
        n_edges += int(rep_indptr[-1])
    # Write each block's globalized columns straight into the final
    # array — a concatenate-then-offset assembly would touch the whole
    # edge set twice.  int32 columns when the global id space fits:
    # every downstream slot resolution gathers these by the million,
    # and the narrower dtype halves that traffic.
    col_dtype = np.int32 if n <= np.iinfo(np.int32).max else np.int64
    indices = np.empty(n_edges, dtype=col_dtype)
    for lo, e0, rep_cols in blocks:
        np.add(rep_cols, lo, dtype=col_dtype, out=indices[e0 : e0 + len(rep_cols)])
    return indptr, indices


class Topology:
    """A sensor network's communication structure.

    Wraps the transmission-range CSR adjacency and, lazily, the
    carrier-sense-range adjacency (Appendix A).  Immutable once built.

    Parameters
    ----------
    positions:
        ``(n, 2)`` node coordinates.
    radius:
        Transmission radius ``r``.
    carrier_radius:
        Carrier-sense radius; defaults to ``2 * radius`` when the
        carrier graph is first requested.
    """

    def __init__(
        self,
        positions: np.ndarray,
        radius: float,
        *,
        carrier_radius: float | None = None,
    ):
        self.positions = np.array(positions, dtype=float)
        self.positions.setflags(write=False)
        self.radius = check_positive("radius", radius)
        if carrier_radius is not None and carrier_radius < radius:
            raise ValueError("carrier_radius must be >= radius")
        self._carrier_radius = carrier_radius
        self.indptr, self.indices = build_disk_graph_csr(self.positions, radius)
        self._carrier_csr: tuple[np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of nodes (including the source)."""
        return self.positions.shape[0]

    @property
    def n_edges(self) -> int:
        """Number of undirected communication links."""
        return int(len(self.indices) // 2)

    @property
    def degrees(self) -> np.ndarray:
        """Neighbor count per node."""
        return np.diff(self.indptr)

    @property
    def mean_degree(self) -> float:
        """Average neighbor count (the empirical counterpart of ``rho``)."""
        return float(self.degrees.mean()) if self.n_nodes else 0.0

    @property
    def carrier_radius(self) -> float:
        """Carrier-sense radius in effect (default ``2 r``)."""
        return self._carrier_radius if self._carrier_radius is not None else 2.0 * self.radius

    def neighbors(self, node: int) -> np.ndarray:
        """Neighbor ids of ``node`` (sorted, read-only view)."""
        view = self.indices[self.indptr[node] : self.indptr[node + 1]]
        return view

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        """Undirected edges as ``(u, v)`` with ``u < v``."""
        for u in range(self.n_nodes):
            for v in self.neighbors(u):
                if u < int(v):
                    yield u, int(v)

    def carrier_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR adjacency at carrier-sense radius (built lazily, cached)."""
        if self._carrier_csr is None:
            self._carrier_csr = build_disk_graph_csr(self.positions, self.carrier_radius)
        return self._carrier_csr

    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """Whether the transmission graph is a single connected component."""
        n = self.n_nodes
        if n == 0:
            return True
        seen = np.zeros(n, dtype=bool)
        stack = [0]
        seen[0] = True
        while stack:
            u = stack.pop()
            for v in self.neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    stack.append(int(v))
        return bool(seen.all())

    def reachable_from(self, node: int) -> np.ndarray:
        """Boolean mask of nodes reachable from ``node`` in the graph."""
        n = self.n_nodes
        seen = np.zeros(n, dtype=bool)
        stack = [node]
        seen[node] = True
        while stack:
            u = stack.pop()
            for v in self.neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    stack.append(int(v))
        return seen

    def to_networkx(self):
        """Export to a :class:`networkx.Graph` with ``pos`` node attributes."""
        import networkx as nx

        g = nx.Graph()
        for i in range(self.n_nodes):
            g.add_node(i, pos=tuple(self.positions[i]))
        g.add_edges_from(self.iter_edges())
        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Topology(n={self.n_nodes}, edges={self.n_edges}, "
            f"r={self.radius}, mean_degree={self.mean_degree:.1f})"
        )


class _StackedRepView(Topology):
    """One replication of a :class:`StackedTopology` as a `Topology`.

    The local ``indptr`` is a cheap re-based slice of the stacked one;
    the local ``indices`` (the full edge list shifted back to local
    ids) is only materialized if something actually reads it — most
    policies never do, and the batched engine resolves slots on the
    stacked structure directly.
    """

    def __init__(self, stacked: "StackedTopology", rep: int) -> None:
        lo = int(stacked.node_offsets[rep])
        hi = int(stacked.node_offsets[rep + 1])
        self.positions = stacked.positions[lo:hi]
        self.radius = stacked.radius
        self._carrier_radius = stacked._carrier_radius
        self._carrier_csr = None
        e0 = int(stacked.indptr[lo])
        self.indptr = stacked.indptr[lo : hi + 1] - e0
        self._stacked = stacked
        self._lo = lo
        self._hi = hi
        self._indices_local: np.ndarray | None = None

    @property
    def indices(self) -> np.ndarray:
        e0 = int(self._stacked.indptr[self._lo])
        e1 = int(self._stacked.indptr[self._hi])
        if self._indices_local is None:
            self._indices_local = self._stacked.indices[e0:e1] - self._lo
        return self._indices_local


class StackedTopology:
    """``R`` independent deployments as one CSR structure.

    Node ids are globally renumbered: replication ``r`` owns the
    contiguous block ``[node_offsets[r], node_offsets[r+1])``, so flat
    boolean state arrays and a single bincount-based channel resolution
    serve every replication at once, and per-replication quantities fall
    out of ``searchsorted`` against the offsets.

    Parameters
    ----------
    positions:
        ``(N, 2)`` concatenated coordinates of all replications.
    node_offsets:
        ``(R + 1,)`` cumulative node counts.
    radius:
        Transmission radius ``r`` (shared — one scenario, many draws).
    carrier_radius:
        Carrier-sense radius; defaults to ``2 * radius`` when the
        carrier CSR is first requested.
    """

    def __init__(
        self,
        positions: np.ndarray,
        node_offsets: np.ndarray,
        radius: float,
        *,
        carrier_radius: float | None = None,
    ):
        self.positions = np.asarray(positions, dtype=float)
        self.node_offsets = np.asarray(node_offsets, dtype=np.int64)
        self.radius = check_positive("radius", radius)
        if carrier_radius is not None and carrier_radius < radius:
            raise ValueError("carrier_radius must be >= radius")
        self._carrier_radius = carrier_radius
        self.indptr, self.indices = build_disk_graph_csr_stacked(
            self.positions, self.node_offsets, radius
        )
        self._carrier_csr: tuple[np.ndarray, np.ndarray] | None = None
        self._rep_views: list[Topology | None] = [None] * self.n_reps

    # ------------------------------------------------------------------
    @property
    def n_reps(self) -> int:
        """Number of stacked replications ``R``."""
        return len(self.node_offsets) - 1

    @property
    def n_nodes(self) -> int:
        """Total node count across all replications."""
        return self.positions.shape[0]

    @property
    def carrier_radius(self) -> float:
        """Carrier-sense radius in effect (default ``2 r``)."""
        return (
            self._carrier_radius
            if self._carrier_radius is not None
            else 2.0 * self.radius
        )

    def carrier_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Stacked CSR at carrier-sense radius (built lazily, cached)."""
        if self._carrier_csr is None:
            self._carrier_csr = build_disk_graph_csr_stacked(
                self.positions, self.node_offsets, self.carrier_radius
            )
        return self._carrier_csr

    def rep_slice(self, rep: int) -> tuple[np.ndarray, np.ndarray]:
        """Replication ``rep``'s CSR adjacency in *local* node ids."""
        lo = int(self.node_offsets[rep])
        hi = int(self.node_offsets[rep + 1])
        e0 = int(self.indptr[lo])
        indptr_local = self.indptr[lo : hi + 1] - e0
        indices_local = self.indices[e0 : int(self.indptr[hi])] - lo
        return indptr_local, indices_local

    def rep_topology(self, rep: int) -> Topology:
        """A per-replication :class:`Topology` view (cached, lazy)."""
        cached = self._rep_views[rep]
        if cached is None:
            cached = _StackedRepView(self, rep)
            self._rep_views[rep] = cached
        return cached

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StackedTopology(reps={self.n_reps}, n={self.n_nodes}, "
            f"r={self.radius})"
        )
