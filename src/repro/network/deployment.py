"""Uniform disk deployments with the source at the center (Sec. 4).

A :class:`DiskDeployment` holds node positions for one realization of
the paper's deployment model: ``N`` field nodes uniformly distributed in
a circle of radius ``P * r``, plus the broadcast source pinned at the
origin as node 0.  ``N`` defaults to the expectation
``rho * P^2`` and can be drawn ``"fixed"`` (rounded expectation — the
paper's setting) or ``"poisson"`` (a spatial Poisson process, matching
the independence assumptions of the analysis more closely).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.rings import RingPartition
from repro.geometry.sampling import sample_disk
from repro.network.topology import StackedTopology, Topology
from repro.utils.validation import check_in, check_positive, check_positive_int

__all__ = ["DiskDeployment", "DeploymentBatch"]

SOURCE = 0  #: node id of the broadcast source in every deployment


@dataclass(frozen=True)
class DiskDeployment:
    """One realization of the paper's network deployment.

    Attributes
    ----------
    positions:
        ``(n_nodes, 2)`` coordinates; row 0 is the source at the origin.
    radius:
        Transmission radius ``r``.
    n_rings:
        The paper's ``P`` (field radius is ``P * r``).
    """

    positions: np.ndarray = field(repr=False)
    radius: float
    n_rings: int

    def __post_init__(self) -> None:
        pos = np.asarray(self.positions, dtype=float)
        if pos.ndim != 2 or pos.shape[1] != 2 or pos.shape[0] < 1:
            raise ValueError(f"positions must be (n >= 1, 2), got {pos.shape}")
        if not np.allclose(pos[SOURCE], 0.0):
            raise ValueError("node 0 must be the source at the origin")
        check_positive("radius", self.radius)
        check_positive_int("n_rings", self.n_rings)
        limit = self.radius * self.n_rings * (1 + 1e-9)
        if np.any(np.hypot(pos[:, 0], pos[:, 1]) > limit):
            raise ValueError("some nodes lie outside the field radius P*r")
        pos = pos.copy()
        pos.setflags(write=False)
        object.__setattr__(self, "positions", pos)

    # ------------------------------------------------------------------
    @classmethod
    def sample(
        cls,
        *,
        rho: float,
        n_rings: int,
        radius: float = 1.0,
        rng: np.random.Generator,
        population: str = "fixed",
    ) -> "DiskDeployment":
        """Draw a deployment at neighbor-density ``rho``.

        Parameters
        ----------
        rho:
            Expected neighbors per node, ``delta * pi * r^2``; expected
            field population is ``rho * n_rings^2``.
        n_rings, radius:
            Field geometry (``P`` rings of width ``r``).
        rng:
            Random source (never taken from global state).
        population:
            ``"fixed"`` places exactly ``round(rho * P^2)`` field nodes;
            ``"poisson"`` draws the count from Poisson with that mean.
        """
        check_positive("rho", rho)
        check_positive_int("n_rings", n_rings)
        check_positive("radius", radius)
        check_in("population", population, ("fixed", "poisson"))
        mean_n = rho * n_rings**2
        if population == "fixed":
            n_field = int(round(mean_n))
        else:
            n_field = int(rng.poisson(mean_n))
        field_pts = sample_disk(n_field, n_rings * radius, rng)
        positions = np.vstack((np.zeros((1, 2)), field_pts))
        return cls(positions=positions, radius=radius, n_rings=n_rings)

    # ------------------------------------------------------------------
    @property
    def source(self) -> int:
        """Node id of the broadcast source (always 0)."""
        return SOURCE

    @property
    def n_nodes(self) -> int:
        """Total node count including the source."""
        return self.positions.shape[0]

    @property
    def n_field_nodes(self) -> int:
        """Nodes excluding the source — the reachability denominator."""
        return self.n_nodes - 1

    @property
    def field_radius(self) -> float:
        """Field radius ``P * r``."""
        return self.n_rings * self.radius

    @property
    def radial_distances(self) -> np.ndarray:
        """Distance of every node from the source/origin."""
        return np.hypot(self.positions[:, 0], self.positions[:, 1])

    def ring_indices(self) -> np.ndarray:
        """Ring number (1-based) of every node; the source is in ring 1."""
        partition = RingPartition(self.n_rings, self.radius)
        return np.asarray(partition.ring_of(self.radial_distances))

    def empirical_rho(self, topology: Topology | None = None) -> float:
        """Measured mean degree (sanity check against the target ``rho``)."""
        topo = topology or self.topology()
        return topo.mean_degree

    def topology(self, *, carrier_radius: float | None = None) -> Topology:
        """Build the unit-disk communication graph for this deployment."""
        return Topology(self.positions, self.radius, carrier_radius=carrier_radius)


class DeploymentBatch:
    """``R`` deployments of one scenario, stacked for batched execution.

    The batch is the deployment-side half of the replication-batched
    engine (:func:`repro.sim.engine.run_broadcast_batch`): ``R``
    independent :class:`DiskDeployment` draws concatenated into one flat
    ``(N, 2)`` position array with ``node_offsets`` marking each
    replication's contiguous global-id block, plus a padded/masked
    ``(R, n_max, 2)`` view for callers that want a rectangular tensor.

    Bit-identity contract: :meth:`sample` draws each replication with
    *its own* generator via :meth:`DiskDeployment.sample`, consuming
    exactly the random values the per-run path would — the stacking is
    a storage layout, never a change to the random stream.  Populations
    may differ across replications (``"poisson"``), which is why the
    flat + offsets layout is primary and the ``(R, n_max)`` view is
    padding over it.
    """

    def __init__(self, deployments: tuple[DiskDeployment, ...] | list[DiskDeployment]):
        deployments = tuple(deployments)
        if not deployments:
            raise ValueError("DeploymentBatch needs at least one deployment")
        first = deployments[0]
        for dep in deployments[1:]:
            if dep.radius != first.radius or dep.n_rings != first.n_rings:
                raise ValueError(
                    "all deployments in a batch must share radius and n_rings"
                )
        self.deployments = deployments
        self.radius = first.radius
        self.n_rings = first.n_rings
        counts = np.array([dep.n_nodes for dep in deployments], dtype=np.int64)
        self.node_offsets = np.zeros(len(deployments) + 1, dtype=np.int64)
        np.cumsum(counts, out=self.node_offsets[1:])
        self.positions = np.vstack([dep.positions for dep in deployments])
        self.positions.setflags(write=False)

    # ------------------------------------------------------------------
    @classmethod
    def sample(
        cls,
        *,
        rho: float,
        n_rings: int,
        radius: float = 1.0,
        rngs: list[np.random.Generator],
        population: str = "fixed",
    ) -> "DeploymentBatch":
        """Draw ``len(rngs)`` deployments, one per generator.

        Each replication consumes random values from its own generator
        in exactly the order :meth:`DiskDeployment.sample` would, so a
        batch draw is bit-identical to ``R`` independent per-run draws.
        """
        return cls(
            [
                DiskDeployment.sample(
                    rho=rho,
                    n_rings=n_rings,
                    radius=radius,
                    rng=rng,
                    population=population,
                )
                for rng in rngs
            ]
        )

    # ------------------------------------------------------------------
    @property
    def n_reps(self) -> int:
        """Number of stacked replications ``R``."""
        return len(self.deployments)

    @property
    def n_nodes_total(self) -> int:
        """Total node count across all replications."""
        return int(self.node_offsets[-1])

    @property
    def source_ids(self) -> np.ndarray:
        """Global node id of each replication's source (its block start)."""
        return self.node_offsets[:-1].copy()

    def padded_positions(self) -> tuple[np.ndarray, np.ndarray]:
        """``(R, n_max, 2)`` positions plus the ``(R, n_max)`` validity mask.

        Replications shorter than ``n_max`` are zero-padded; the mask is
        ``True`` exactly where a real node exists.
        """
        counts = np.diff(self.node_offsets)
        n_max = int(counts.max())
        padded = np.zeros((self.n_reps, n_max, 2), dtype=float)
        mask = np.arange(n_max)[None, :] < counts[:, None]
        padded[mask] = self.positions
        return padded, mask

    def ring_indices(self) -> np.ndarray:
        """Flat ``(N,)`` ring number (1-based) of every stacked node."""
        partition = RingPartition(self.n_rings, self.radius)
        radial = np.hypot(self.positions[:, 0], self.positions[:, 1])
        return np.asarray(partition.ring_of(radial))

    def stacked_topology(
        self, *, carrier_radius: float | None = None
    ) -> StackedTopology:
        """One stacked CSR adjacency serving every replication."""
        return StackedTopology(
            self.positions,
            self.node_offsets,
            self.radius,
            carrier_radius=carrier_radius,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeploymentBatch(reps={self.n_reps}, n={self.n_nodes_total}, "
            f"r={self.radius}, P={self.n_rings})"
        )
