"""Square-lattice deployments (the related-work grid scenario).

The paper's related work (its ref. [32], Sasson et al.) studies
probability-based broadcast on a *grid* deployment with collision-free
communication and finds the critical broadcast probability near 0.59 —
the site-percolation threshold of the square lattice.  This module
provides the grid deployment so that claim is reproducible inside the
same engine stack (see ``benchmarks/bench_percolation.py``).

:class:`GridDeployment` is duck-type compatible with
:class:`~repro.network.deployment.DiskDeployment` for everything the
engines consume (positions, source, topology, ring indices).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network.topology import Topology
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["GridDeployment"]


@dataclass(frozen=True)
class GridDeployment:
    """An odd ``side x side`` unit-spacing lattice with the source centered.

    Node 0 is the source at the origin (lattice center); transmission
    radius 1 connects the four axial neighbors (diagonals are at
    ``sqrt(2) > 1``).

    Parameters
    ----------
    side:
        Lattice side length; must be odd so a center node exists.
    spacing:
        Lattice constant (the transmission radius equals it).
    """

    side: int
    spacing: float = 1.0
    positions: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        check_positive_int("side", self.side)
        check_positive("spacing", self.spacing)
        if self.side % 2 == 0:
            raise ValueError("side must be odd so the source sits at the center")
        half = self.side // 2
        coords = np.arange(-half, half + 1) * self.spacing
        xx, yy = np.meshgrid(coords, coords)
        pts = np.column_stack((xx.ravel(), yy.ravel()))
        # Put the center (the source) first; keep the rest in scan order.
        center = np.flatnonzero((pts[:, 0] == 0.0) & (pts[:, 1] == 0.0))[0]
        order = np.concatenate(([center], np.delete(np.arange(len(pts)), center)))
        pts = pts[order]
        pts.setflags(write=False)
        object.__setattr__(self, "positions", pts)

    # ------------------------------------------------------------------
    @property
    def source(self) -> int:
        """Node id of the broadcast source (always 0)."""
        return 0

    @property
    def radius(self) -> float:
        """Transmission radius: one lattice spacing."""
        return self.spacing

    @property
    def n_nodes(self) -> int:
        """Total node count (``side**2``)."""
        return self.side**2

    @property
    def n_field_nodes(self) -> int:
        """Nodes excluding the source — the reachability denominator."""
        return self.n_nodes - 1

    @property
    def n_rings(self) -> int:
        """Euclidean distance bands of width ``spacing`` covering the lattice."""
        half = self.side // 2
        corner = np.hypot(half, half) * self.spacing
        return int(np.ceil(corner / self.spacing)) or 1

    @property
    def field_radius(self) -> float:
        """Circumradius of the lattice."""
        return self.n_rings * self.spacing

    @property
    def radial_distances(self) -> np.ndarray:
        """Distance of every node from the source."""
        return np.hypot(self.positions[:, 0], self.positions[:, 1])

    def ring_indices(self) -> np.ndarray:
        """1-based Euclidean ring index of every node (source in ring 1)."""
        idx = np.ceil(self.radial_distances / self.spacing).astype(int)
        return np.maximum(idx, 1)

    def topology(self, *, carrier_radius: float | None = None) -> Topology:
        """The 4-neighbor lattice graph (radius = spacing)."""
        return Topology(
            self.positions,
            self.spacing * 1.0001,  # float-safe: include exact-distance links
            carrier_radius=carrier_radius,
        )
