"""Per-node state for the object-level (DES) engine.

The vectorized engine keeps node state in flat arrays; the DES engine
gives each sensor an object so protocol logic reads like the paper's
prose ("after receiving the information ... broadcasts with probability
p").  Both views describe the same machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SensorNode"]


@dataclass
class SensorNode:
    """State machine of one sensor during a broadcast execution.

    Attributes
    ----------
    node_id:
        Index into the deployment / topology arrays.
    informed_at:
        Simulation time of first successful reception (``None`` until
        informed).  The source is informed at time 0.
    informed_phase:
        Phase number (1-based) of first reception.
    relay_decided:
        Whether the node has already taken its one relay decision
        (each node broadcasts at most once — Sec. 4).
    will_relay:
        Outcome of that decision.
    relay_slot:
        Absolute slot index chosen for the relay, when scheduled.
    duplicate_receptions:
        Collision-free receptions of the packet *after* the first one
        (consumed by the counter-based extension protocol).
    """

    node_id: int
    informed_at: float | None = None
    informed_phase: int | None = None
    relay_decided: bool = False
    will_relay: bool = False
    relay_slot: int | None = None
    duplicate_receptions: int = 0
    first_sender: int | None = field(default=None)
    overheard_senders: list[int] = field(default_factory=list)

    @property
    def informed(self) -> bool:
        """Whether the node has received the broadcast information."""
        return self.informed_at is not None

    def mark_informed(self, time: float, phase: int, sender: int | None) -> bool:
        """Record a successful reception; returns True on *first* reception."""
        if self.informed:
            self.duplicate_receptions += 1
            return False
        self.informed_at = time
        self.informed_phase = phase
        self.first_sender = sender
        return True
