"""Structural statistics of disk deployments.

The analytical framework leans on geometric-random-graph facts — the
expected degree is ``rho = delta * pi * r^2``, isolation probability
decays like ``exp(-rho)``, connectivity sets in well below the paper's
density range — and these helpers make those facts checkable against
sampled deployments (the tests do exactly that).  They are also useful
on their own when adapting the model to a new deployment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.deployment import DiskDeployment
from repro.network.topology import Topology
from repro.utils.rng import SeedLike, as_seed_sequence
from repro.utils.validation import check_positive, check_positive_int

__all__ = [
    "DeploymentStats",
    "deployment_stats",
    "expected_isolation_probability",
    "connectivity_probability",
]


@dataclass(frozen=True)
class DeploymentStats:
    """Summary statistics of one deployment's communication graph.

    Attributes
    ----------
    n_nodes, n_edges:
        Graph size.
    mean_degree / min_degree / max_degree:
        Degree statistics; ``mean_degree`` is the empirical ``rho``
        (slightly below the nominal one because of the field border).
    isolated_fraction:
        Fraction of nodes with no neighbors at all.
    source_component_fraction:
        Fraction of nodes reachable from the source — the ceiling on
        any broadcast's reachability.
    connected:
        Whether the whole graph is one component.
    """

    n_nodes: int
    n_edges: int
    mean_degree: float
    min_degree: int
    max_degree: int
    isolated_fraction: float
    source_component_fraction: float
    connected: bool


def deployment_stats(
    deployment: DiskDeployment, topology: Topology | None = None
) -> DeploymentStats:
    """Compute :class:`DeploymentStats` for one deployment."""
    topo = topology or deployment.topology()
    degrees = topo.degrees
    reachable = topo.reachable_from(deployment.source)
    return DeploymentStats(
        n_nodes=topo.n_nodes,
        n_edges=topo.n_edges,
        mean_degree=float(degrees.mean()),
        min_degree=int(degrees.min()),
        max_degree=int(degrees.max()),
        isolated_fraction=float((degrees == 0).mean()),
        source_component_fraction=float(reachable.mean()),
        connected=bool(reachable.all()),
    )


def expected_isolation_probability(rho: float) -> float:
    """Poisson-field probability that a node has no neighbor: ``exp(-rho)``.

    Border effects make the sampled value slightly larger (nodes near
    the rim see less area); at the paper's densities both are ~0.
    """
    check_positive("rho", rho)
    return float(np.exp(-rho))


def connectivity_probability(
    *,
    rho: float,
    n_rings: int,
    seed: SeedLike = None,
    trials: int = 20,
    radius: float = 1.0,
) -> float:
    """Monte-Carlo estimate of P(source component = whole graph).

    At the paper's densities (``rho >= 20``) this is ~1; the estimate
    is mainly useful for mapping where the model's implicit
    connectivity assumption starts to bite at sparse settings.
    """
    check_positive("rho", rho)
    check_positive_int("trials", trials)
    root = as_seed_sequence(seed)
    hits = 0
    for child in root.spawn(trials):
        rng = np.random.default_rng(child)
        dep = DiskDeployment.sample(
            rho=rho, n_rings=n_rings, radius=radius, rng=rng
        )
        if dep.topology().is_connected():
            hits += 1
    return hits / trials
