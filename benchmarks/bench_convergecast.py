"""Extension workload: convergecast (unicast data gathering) under CAM.

Not a paper figure — the unicast counterpart of the broadcast storm.
Sweeps the per-phase transmission probability and records the delivery
ratio and cost per report; asserts the PB_CAM-style finding that the
thinned schedule dominates the saturated one.
"""

import numpy as np

from repro.analysis.config import AnalysisConfig
from repro.protocols.convergecast import run_convergecast
from repro.sim.config import SimulationConfig
from repro.utils.tables import format_series
from conftest import RESULTS_DIR

RHO = 25
Q_VALUES = (1.0, 0.5, 0.25, 0.12)


def test_convergecast_contention_sweep(benchmark):
    cfg = SimulationConfig(analysis=AnalysisConfig(n_rings=3, rho=RHO))

    def run():
        ratios, cost = [], []
        for q in Q_VALUES:
            res = run_convergecast(
                cfg,
                seed=11,
                tx_probability=q,
                max_phases=1500,
                max_attempts_per_hop=150,
            )
            ratios.append(res.delivery_ratio)
            cost.append(res.transmissions / max(res.delivered, 1))
        return np.array(ratios), np.array(cost)

    ratios, cost = benchmark.pedantic(run, rounds=1, iterations=1)

    text = format_series(
        "q",
        list(Q_VALUES),
        {"delivery_ratio": ratios, "tx_per_report": cost},
        title=f"convergecast contention sweep (rho={RHO}, s=3)",
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "convergecast.txt").write_text(text + "\n")
    print("\n" + text)

    # Saturation strands reports; the thinnest schedule delivers all.
    assert ratios[0] < 0.5
    assert ratios[-1] == 1.0
    # And costs less per delivered report.
    assert cost[-1] < cost[0]
