"""Figure 5: analytic latency of PB_CAM for the 72% reachability target.

Paper headline: the optimal probability equals Fig. 4(b)'s (dual
problems) and achieves the target in ~5 phases at every density, while
flooding needs > 8 phases at ``rho = 140``.
"""

import numpy as np

from repro.experiments.figures import generate_figure


def test_fig5a_latency_sweep(benchmark, scale, record_figure):
    result = benchmark.pedantic(
        lambda: generate_figure("fig5a", scale), rounds=1, iterations=1
    )
    record_figure(result)
    # Small p is infeasible at some densities — NaN gaps, like the paper.
    values = np.concatenate([result.series_array(k) for k in result.series])
    finite = values[np.isfinite(values)]
    assert finite.min() >= 1.0  # nothing reaches 72% inside phase 1


def test_fig5b_optimal_probability(benchmark, scale, record_figure):
    result = benchmark.pedantic(
        lambda: generate_figure("fig5b", scale), rounds=1, iterations=1
    )
    record_figure(result)
    opt_p = result.series_array("optimal_p")
    fig4 = generate_figure("fig4b", scale).series_array("optimal_p")
    # Duality: the same curve as fig4b (within one grid step).
    assert np.nanmax(np.abs(opt_p - fig4)) <= scale.analysis_p_step * 1.5 + 1e-9
    # Flooding is slower than the optimum everywhere it's feasible.
    flood = result.series_array("flooding_latency_phases")
    tuned = result.series_array("latency_phases")
    mask = np.isfinite(flood) & np.isfinite(tuned)
    assert np.all(flood[mask] >= tuned[mask] - 1e-9)
