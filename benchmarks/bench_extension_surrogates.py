"""Future work delivered: analytic surrogates for the other scheme families.

The paper defers the analysis of area-based and neighbor-knowledge
broadcasting to future work.  `repro.analysis.extensions` models any
suppression scheme as PB_CAM at its effective relay fraction; this
benchmark reports, per scheme, the effective probability and the
surrogate's reachability error against ground-truth simulation — the
honest accuracy of the first-order extension.
"""

import numpy as np

from repro.analysis.config import AnalysisConfig
from repro.analysis.extensions import (
    distance_effective_probability,
    surrogate_model,
)
from repro.protocols import (
    CounterBasedRelay,
    DistanceBasedRelay,
    NeighborKnowledgeRelay,
)
from repro.utils.tables import format_table
from conftest import RESULTS_DIR

RHO = 40


def test_suppression_scheme_surrogates(benchmark):
    cfg = AnalysisConfig(n_rings=4, rho=RHO, quad_nodes=48)
    schemes = [
        ("distance (0.6r)", DistanceBasedRelay(0.6)),
        ("counter (C=2)", CounterBasedRelay(threshold=2)),
        ("neighbor-knowledge", NeighborKnowledgeRelay()),
    ]

    def run():
        rows = []
        for label, policy in schemes:
            sr = surrogate_model(policy, cfg, seed=41, replications=6)
            sim_final = float(np.mean([r.reachability for r in sr.simulated]))
            rows.append(
                (
                    label,
                    sr.p_eff,
                    sr.trace.final_reachability,
                    sim_final,
                    sr.reachability_error(5),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = format_table(
        [
            "scheme",
            "p_eff (measured)",
            "surrogate final reach",
            "simulated final reach",
            "reach@5 abs error",
        ],
        rows,
        precision=3,
        title=f"PB_CAM surrogates of the suppression schemes (rho={RHO})",
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "extension_surrogates.txt").write_text(table + "\n")
    print("\n" + table)

    for label, _p_eff, surrogate, simulated, err5 in rows:
        assert abs(surrogate - simulated) < 0.06, label
        assert err5 < 0.15, label
    # The closed-form distance estimate is a (slight) underestimate of
    # the measured fraction: wavefront informers skew toward max range.
    dist_p_eff = rows[0][1]
    assert dist_p_eff >= distance_effective_probability(0.6) - 0.02
