"""Microbenchmarks of the collision-probability kernels.

These are true pytest-benchmark timings (multiple rounds): the mu table
build is the setup cost of every ring model, and the vectorized mu
lookup sits in the innermost loop of the recursion (once per quadrature
node per ring per phase).
"""

import numpy as np

from repro.collision.carrier import no_good_slot_table
from repro.collision.slots import SlotCollisionTable, no_singleton_table
from repro.collision.poisson import mu_poisson


def test_mu_table_build_256(benchmark):
    result = benchmark(lambda: no_singleton_table(256, 3))
    assert len(result) == 257


def test_mu_table_build_1024(benchmark):
    result = benchmark(lambda: no_singleton_table(1024, 3))
    assert len(result) == 1025


def test_mu_real_vector_lookup(benchmark):
    table = SlotCollisionTable(initial_kmax=256)
    lam = np.linspace(0.0, 150.0, 96)
    table.mu_real(lam, 3)  # warm the cache

    out = benchmark(lambda: table.mu_real(lam, 3))
    assert out.shape == (96,)


def test_mu_poisson_closed_form(benchmark):
    lam = np.linspace(0.0, 150.0, 96)
    out = benchmark(lambda: mu_poisson(lam, 3))
    assert out.shape == (96,)


def test_carrier_table_build_48x48(benchmark):
    result = benchmark.pedantic(
        lambda: no_good_slot_table(48, 48, 3), rounds=3, iterations=1
    )
    assert result.shape == (49, 49)
