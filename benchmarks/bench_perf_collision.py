"""Microbenchmarks of the collision-probability kernels.

These are true pytest-benchmark timings (multiple rounds): the mu table
build is the setup cost of every ring model, and the vectorized mu
lookup sits in the innermost loop of the recursion (once per quadrature
node per ring per phase).
"""

import numpy as np
import pytest

from repro.collision.carrier import no_good_slot_table
from repro.collision.slots import SlotCollisionTable, no_singleton_table
from repro.collision.poisson import mu_poisson
from repro.models.cam import CollisionAwareChannel
from repro.network.deployment import DiskDeployment


def test_mu_table_build_256(benchmark):
    result = benchmark(lambda: no_singleton_table(256, 3))
    assert len(result) == 257


def test_mu_table_build_1024(benchmark):
    result = benchmark(lambda: no_singleton_table(1024, 3))
    assert len(result) == 1025


def test_mu_real_vector_lookup(benchmark):
    table = SlotCollisionTable(initial_kmax=256)
    lam = np.linspace(0.0, 150.0, 96)
    table.mu_real(lam, 3)  # warm the cache

    out = benchmark(lambda: table.mu_real(lam, 3))
    assert out.shape == (96,)


def test_mu_poisson_closed_form(benchmark):
    lam = np.linspace(0.0, 150.0, 96)
    out = benchmark(lambda: mu_poisson(lam, 3))
    assert out.shape == (96,)


def test_carrier_table_build_48x48(benchmark):
    result = benchmark.pedantic(
        lambda: no_good_slot_table(48, 48, 3), rounds=3, iterations=1
    )
    assert result.shape == (49, 49)


# ----------------------------------------------------------------------
# CAM slot resolution (the simulation engine's inner loop)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def dense_flood():
    """A rho=140 deployment with every node transmitting — the CAM
    channel's worst case and the engine's hottest slot shape."""
    rng = np.random.default_rng(20050404)
    deployment = DiskDeployment.sample(rho=140.0, n_rings=5, rng=rng)
    topo = deployment.topology()
    channel = CollisionAwareChannel(topo)
    tx = np.arange(topo.n_nodes, dtype=np.intp)
    return channel, tx


def test_cam_flooding_resolve_rho140(benchmark, dense_flood):
    channel, tx = dense_flood
    delivery = benchmark(lambda: channel.resolve_slot(tx))
    assert delivery.receivers.size + delivery.collided.size > 0


def test_cam_flooding_resolve_rho140_reference(benchmark, dense_flood):
    """The per-transmitter loop kernel, kept as the comparison baseline."""
    channel, tx = dense_flood
    counts, _ = benchmark.pedantic(
        lambda: channel._counts_and_senders_reference(
            tx, channel.topology.indptr, channel.topology.indices
        ),
        rounds=3,
        iterations=1,
    )
    assert counts.max() >= 1


def test_cam_sparse_resolve_rho140(benchmark, dense_flood):
    """~10% of nodes transmitting: the gather's non-contiguous path."""
    channel, tx = dense_flood
    rng = np.random.default_rng(7)
    sparse = np.sort(rng.choice(tx.size, size=tx.size // 10, replace=False))
    delivery = benchmark(lambda: channel.resolve_slot(sparse))
    assert delivery.receivers.size + delivery.collided.size > 0
