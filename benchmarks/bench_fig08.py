"""Figure 8: *simulated* reachability of PB_CAM within 5 time phases.

The paper averages 30 GloMoSim runs per grid point; we average
replications of our slot-level CAM engine.  Paper headline: the
simulated optimum tracks the analytic trend of Fig. 4(b) (a higher
absolute p) and its reachability plateaus around 0.63.

This is the benchmark that pays for the shared Monte-Carlo grid; the
other simulation figures (9-11) post-process the same runs.
"""

import numpy as np

from repro.experiments.figures import generate_figure


def test_fig8a_simulated_reachability_sweep(benchmark, scale, record_figure):
    result = benchmark.pedantic(
        lambda: generate_figure("fig8a", scale), rounds=1, iterations=1
    )
    record_figure(result)
    for key in result.series:
        vals = result.series_array(key)
        assert np.all((vals >= 0) & (vals <= 1))


def test_fig8b_simulated_optimum(benchmark, scale, record_figure):
    result = benchmark.pedantic(
        lambda: generate_figure("fig8b", scale), rounds=1, iterations=1
    )
    record_figure(result)
    opt = result.series_array("optimal_p")
    assert opt[-1] < opt[0]  # optimum decays with density
    reach = result.series_array("reachability")
    # Paper: "consistently around 63%".
    assert np.all((reach > 0.5) & (reach < 0.75))
