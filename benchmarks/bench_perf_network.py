"""Microbenchmarks of deployment sampling and topology construction.

Topology construction dominates per-replication cost in the Monte-Carlo
sweeps (the broadcast itself touches far fewer node pairs), so the
grid-bucket CSR builder is the component worth watching.
"""

import numpy as np

from repro.network.deployment import DiskDeployment
from repro.network.topology import build_disk_graph_csr


def _positions(n, rng):
    r = 5.0 * np.sqrt(rng.random(n))
    th = rng.random(n) * 2 * np.pi
    return np.column_stack((r * np.cos(th), r * np.sin(th)))


def test_csr_build_500_nodes(benchmark):
    pos = _positions(500, np.random.default_rng(0))
    indptr, indices = benchmark(lambda: build_disk_graph_csr(pos, 1.0))
    assert len(indptr) == 501


def test_csr_build_3500_nodes(benchmark):
    pos = _positions(3500, np.random.default_rng(1))
    indptr, indices = benchmark(lambda: build_disk_graph_csr(pos, 1.0))
    assert len(indptr) == 3501
    # Sanity: mean degree ~ rho = delta * pi * r^2 = 3500/(pi*25) * pi = 140.
    assert 100 < len(indices) / 3500 < 180


def test_deployment_sample_dense(benchmark):
    rng = np.random.default_rng(2)
    dep = benchmark(
        lambda: DiskDeployment.sample(rho=140, n_rings=5, rng=rng)
    )
    assert dep.n_field_nodes == 3500


def test_full_deployment_plus_topology(benchmark):
    def build():
        rng = np.random.default_rng(3)
        dep = DiskDeployment.sample(rho=140, n_rings=5, rng=rng)
        return dep.topology()

    topo = benchmark.pedantic(build, rounds=3, iterations=1)
    assert topo.n_nodes == 3501
