"""Appendix A: the carrier-sense collision model, analysis and simulation.

The paper argues the carrier-sense extension does not change the story —
"more concurrent communication leads to higher probability of packet
collision" — only the constants.  This benchmark reproduces that check:
the optimal probability under the carrier-sense ring model still decays
with density and sits at or below the transmission-range optimum, and
the simulated carrier-sense engine agrees directionally.
"""

import numpy as np

from repro.analysis.carrier_model import CarrierRingModel
from repro.analysis.optimizer import optimal_probability
from repro.analysis.ring_model import RingModel
from repro.protocols.pbcast import ProbabilisticRelay
from repro.sim.config import SimulationConfig
from repro.sim.engine import run_broadcast
from repro.sim.results import aggregate_metric
from repro.utils.tables import format_series
from conftest import RESULTS_DIR


def test_carrier_sense_analysis(benchmark, scale, record_figure):
    p_grid = np.arange(0.02, 1.001, max(scale.analysis_p_step, 0.02))

    def run():
        base_p, cs_p, base_r, cs_r = [], [], [], []
        for rho in scale.rho_grid:
            cfg = scale.analysis_config(rho)
            base = optimal_probability(
                RingModel(cfg), "reachability_at_latency", 5, p_grid=p_grid
            )
            cs = optimal_probability(
                CarrierRingModel(cfg), "reachability_at_latency", 5, p_grid=p_grid
            )
            base_p.append(base.p)
            cs_p.append(cs.p)
            base_r.append(base.value)
            cs_r.append(cs.value)
        return map(np.array, (base_p, cs_p, base_r, cs_r))

    base_p, cs_p, base_r, cs_r = benchmark.pedantic(run, rounds=1, iterations=1)

    text = format_series(
        "rho",
        list(scale.rho_grid),
        {
            "opt_p_transmission": base_p,
            "opt_p_carrier": cs_p,
            "reach_transmission": base_r,
            "reach_carrier": cs_r,
        },
        title="Appendix A: optimal p under carrier-sense collisions (analysis)",
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "carrier_sense_analysis.txt").write_text(text + "\n")
    print("\n" + text)

    # More collision surface => smaller or equal optimal p, lower reach.
    assert np.all(cs_p <= base_p + 1e-9)
    assert np.all(cs_r <= base_r + 1e-9)
    assert cs_p[-1] < cs_p[0]  # the density trend survives


def test_carrier_sense_simulation(benchmark, scale):
    cfg = scale.simulation_config(60)
    cs_cfg = cfg.with_(carrier_sense=True)
    reps = max(4, scale.replications // 2)
    p = 0.3

    def run():
        def mean_reach(c, seed0):
            runs = [
                run_broadcast(ProbabilisticRelay(p), c, seed0 + s) for s in range(reps)
            ]
            return aggregate_metric(
                runs, lambda r: r.reachability_after_phases(5)
            ).mean

        return mean_reach(cfg, 0), mean_reach(cs_cfg, 0)

    base, cs = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nsimulated reach@5 (rho=60, p={p}): transmission={base:.3f} carrier={cs:.3f}")
    assert cs < base  # carrier sensing strictly hurts at fixed p
