"""Analyzer throughput: the whole-program lint pass must stay cheap.

The flow analyses (symbol table, call graph, provenance/taint/effect
fixed points) run on every CI build and are meant to be a pre-commit
habit, so the warm-cache wall time over ``src/`` is gated with an
absolute budget in ``check_perf.py`` (``HARD_LIMITS``): regressing the
analyzer into tens of seconds would push it out of the edit loop.

The cache is primed once per benchmark (module summaries are
content-addressed), so what's measured is the steady state a developer
sees: re-parse, per-module rules, cache hits, and the project-level
fixed points.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.lint.core import check_paths

REPO_ROOT = Path(__file__).resolve().parent.parent


def _run_analyzer(cache_dir: Path) -> int:
    findings, _unused = check_paths(
        ["src"],
        root=REPO_ROOT,
        cache_dir=str(cache_dir),
    )
    return len(findings)


def test_analyzer_warm_cache_src(benchmark, tmp_path, monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    cache_dir = tmp_path / "lint-cache"
    _run_analyzer(cache_dir)  # prime the summary cache
    assert any(cache_dir.iterdir()), "cache should be populated after priming"

    n = benchmark.pedantic(lambda: _run_analyzer(cache_dir), rounds=3, iterations=1)
    assert n >= 0


def test_analyzer_cold_cache_src(benchmark, tmp_path, monkeypatch):
    """Cold-cache cost (summary extraction included), for the history
    sparklines; only the warm run is budget-gated."""
    monkeypatch.chdir(REPO_ROOT)
    counter = [0]

    def run():
        counter[0] += 1
        return _run_analyzer(tmp_path / f"cold-{counter[0]}")

    n = benchmark.pedantic(run, rounds=3, iterations=1)
    assert n >= 0
