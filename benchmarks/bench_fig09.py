"""Figure 9: simulated latency of PB_CAM to 63% reachability.

Paper headline: the latency-optimal probability is close to Fig. 8(b)'s
and the corresponding latency is about 5 phases.
"""

import numpy as np

from repro.experiments.figures import generate_figure


def test_fig9a_simulated_latency_sweep(benchmark, scale, record_figure):
    result = benchmark.pedantic(
        lambda: generate_figure("fig9a", scale), rounds=1, iterations=1
    )
    record_figure(result)
    values = np.concatenate([result.series_array(k) for k in result.series])
    finite = values[np.isfinite(values)]
    assert finite.min() >= 1.0


def test_fig9b_simulated_optimum(benchmark, scale, record_figure):
    result = benchmark.pedantic(
        lambda: generate_figure("fig9b", scale), rounds=1, iterations=1
    )
    record_figure(result)
    latency = result.series_array("latency_phases")
    # Paper: ~5 phases at the optimum across densities.
    assert np.nanmax(latency) < 8.0
    opt = result.series_array("optimal_p")
    fig8 = generate_figure("fig8b", scale).series_array("optimal_p")
    # Duality with fig8b, allowing Monte-Carlo noise of a few grid steps.
    assert np.nanmean(np.abs(opt - fig8)) <= 3 * scale.sim_p_step
