"""Observability overhead: what telemetry costs the hot paths.

The acceptance bar is <2% on the instrumented paths with every sink
detached (the default state) — the engines hoist the tracer check to one
attribute read per run and one ``is not None`` test per slot, so the
disabled medians here must stay on top of ``bench_perf_engines``'s.
The attached-sink benchmarks quantify what a user pays to actually
record a trace (ring buffer, JSONL file) or collect metrics.
"""

from repro.analysis.config import AnalysisConfig
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans
from repro.obs import trace as obs_trace
from repro.protocols.pbcast import ProbabilisticRelay, SimpleFlooding
from repro.sim.config import SimulationConfig
from repro.sim.engine import run_broadcast

CFG_MID = SimulationConfig(analysis=AnalysisConfig(rho=60))
CFG_DENSE = SimulationConfig(analysis=AnalysisConfig(rho=140))


def _run_mid():
    return run_broadcast(ProbabilisticRelay(0.2), CFG_MID, 0)


def test_tracing_disabled_pb_rho60(benchmark):
    """Baseline with the instrumentation compiled in but no sink attached."""
    assert not obs_trace.get_tracer().enabled
    assert not obs_metrics.registry().enabled
    res = benchmark(_run_mid)
    assert res.reachability > 0.5


def test_tracing_disabled_flooding_rho140(benchmark):
    assert not obs_trace.get_tracer().enabled
    res = benchmark.pedantic(
        lambda: run_broadcast(SimpleFlooding(), CFG_DENSE, 0),
        rounds=3,
        iterations=1,
    )
    assert res.collisions > 0


def test_tracing_null_sink_pb_rho60(benchmark):
    """The emit path itself: events built and dropped."""
    sink = obs_trace.NullSink()

    def run():
        with obs_trace.capture(sink):
            return _run_mid()

    res = benchmark(run)
    assert res.reachability > 0.5
    assert sink.count > 0


def test_tracing_ring_sink_pb_rho60(benchmark):
    def run():
        with obs_trace.capture() as buf:
            out = _run_mid()
        assert len(buf) > 0
        return out

    res = benchmark(run)
    assert res.reachability > 0.5


def test_tracing_jsonl_sink_pb_rho60(benchmark, tmp_path):
    counter = [0]

    def run():
        counter[0] += 1
        path = tmp_path / f"run{counter[0]}.jsonl"
        with obs_trace.capture(obs_trace.JsonlSink(path)):
            return _run_mid()

    res = benchmark.pedantic(run, rounds=5, iterations=1)
    assert res.reachability > 0.5


def test_spans_disabled_pb_rho60(benchmark):
    """Span hooks compiled in but no sink attached: must match the
    tracing-disabled baseline (the A of the A/B neutrality pair)."""
    assert not obs_spans.profiler().enabled
    res = benchmark(_run_mid)
    assert res.reachability > 0.5


def test_spans_enabled_pb_rho60(benchmark):
    """The B of the pair: spans recorded into an in-memory buffer."""

    def run():
        with obs_spans.capture_spans() as buf:
            out = _run_mid()
        assert len(buf) > 0
        return out

    res = benchmark(run)
    assert res.reachability > 0.5


def test_metrics_enabled_pb_rho60(benchmark):
    def run():
        with obs_metrics.collect():
            return _run_mid()

    res = benchmark(run)
    assert res.metrics is not None
