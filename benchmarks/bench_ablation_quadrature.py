"""Ablation 4 (DESIGN.md): quadrature resolution of the Eq. (4) integral.

Shows that the default 96-node Gauss-Legendre rule is converged: the
5-phase reachability at a mid-density point moves by < 1e-4 beyond
~48 nodes.
"""

import numpy as np

from repro.analysis.config import AnalysisConfig
from repro.analysis.ring_model import RingModel
from repro.utils.tables import format_series
from conftest import RESULTS_DIR

NODE_COUNTS = (8, 16, 32, 48, 96, 192)


def test_quadrature_convergence(benchmark):
    def run():
        vals = []
        for n in NODE_COUNTS:
            cfg = AnalysisConfig(rho=60, quad_nodes=n)
            vals.append(RingModel(cfg).run(0.2, max_phases=5).reachability_after(5))
        return np.array(vals)

    vals = benchmark.pedantic(run, rounds=1, iterations=1)

    text = format_series(
        "quad_nodes",
        list(NODE_COUNTS),
        {"reach_at_5_phases": vals, "abs_error_vs_finest": np.abs(vals - vals[-1])},
        precision=6,
        title="ablation: Gauss-Legendre node count (rho=60, p=0.2)",
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_quadrature.txt").write_text(text + "\n")
    print("\n" + text)

    # Default (96) within 1e-4 of the finest rule; coarse rules drift more.
    assert abs(vals[-2] - vals[-1]) < 1e-4
    assert abs(vals[0] - vals[-1]) > abs(vals[-2] - vals[-1])
