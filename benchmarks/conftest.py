"""Shared machinery for the benchmark harness.

Every paper figure has a benchmark that regenerates it and records the
series the paper plots.  Scale is controlled by the environment:

    REPRO_BENCH_SCALE=quick   (default) coarse grids, seconds-to-minutes
    REPRO_BENCH_SCALE=full    the paper's exact grids

Each figure benchmark writes its table to ``benchmarks/results/<name>.txt``
(so output survives pytest's capture) and also prints it (visible with
``pytest -s``).  Simulation figures share one Monte-Carlo grid per scale
via the module-level cache in :mod:`repro.experiments.figures`; the first
simulation benchmark in a session pays for the grid, the rest post-process
it — mirroring how the experiments themselves share raw data.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.params import ExperimentScale

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> ExperimentScale:
    """The experiment scale selected by REPRO_BENCH_SCALE."""
    name = os.environ.get("REPRO_BENCH_SCALE", "quick")
    if name == "full":
        return ExperimentScale.full(workers=1)
    return ExperimentScale.quick(workers=1)


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return bench_scale()


@pytest.fixture(scope="session")
def record_figure():
    """Persist a FigureResult's table and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(result) -> None:
        text = result.to_text()
        path = RESULTS_DIR / f"{result.figure}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _record
