"""Shared machinery for the benchmark harness.

Every paper figure has a benchmark that regenerates it and records the
series the paper plots.  Scale is controlled by the environment:

    REPRO_BENCH_SCALE=quick   (default) coarse grids, seconds-to-minutes
    REPRO_BENCH_SCALE=full    the paper's exact grids

Each figure benchmark writes its table to ``benchmarks/results/<name>.txt``
(so output survives pytest's capture) and also prints it (visible with
``pytest -s``).  Simulation figures share one Monte-Carlo grid per scale
via the module-level cache in :mod:`repro.experiments.figures`; the first
simulation benchmark in a session pays for the grid, the rest post-process
it — mirroring how the experiments themselves share raw data.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments.params import ExperimentScale

RESULTS_DIR = Path(__file__).parent / "results"
DEFAULT_PERF_JSON = Path(__file__).resolve().parent.parent / "BENCH_perf.json"


def pytest_addoption(parser):
    parser.addoption(
        "--perf-json",
        nargs="?",
        const=str(DEFAULT_PERF_JSON),
        default=None,
        metavar="PATH",
        help=(
            "After the run, merge each benchmark's median timing (seconds) "
            "into the given JSON file under the 'current' key "
            f"(default path: {DEFAULT_PERF_JSON}). Existing keys — e.g. the "
            "recorded 'seed' baselines — are preserved."
        ),
    )


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--perf-json", default=None)
    if not path:
        return
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:
        return
    medians = {}
    for bench in bench_session.benchmarks:
        if not bench:  # no recorded rounds (errored / skipped)
            continue
        medians[bench.fullname] = bench.stats.median
    if not medians:
        return
    out_path = Path(path)
    data = {}
    if out_path.exists():
        try:
            data = json.loads(out_path.read_text())
        except ValueError:
            data = {}
    data.setdefault("current", {}).update(medians)
    out_path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"\n[perf medians for {len(medians)} benchmarks merged into {out_path}]")


def bench_scale() -> ExperimentScale:
    """The experiment scale selected by REPRO_BENCH_SCALE."""
    name = os.environ.get("REPRO_BENCH_SCALE", "quick")
    if name == "full":
        return ExperimentScale.full(workers=1)
    return ExperimentScale.quick(workers=1)


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return bench_scale()


@pytest.fixture(scope="session")
def record_figure():
    """Persist a FigureResult's table and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(result) -> None:
        text = result.to_text()
        path = RESULTS_DIR / f"{result.figure}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _record
