"""Figure 11: simulated reachability within an 80-broadcast budget.

Paper headline: the optimal probability is (almost) within 0.2
throughout the density range — the dual of Fig. 10.
"""

import numpy as np

from repro.experiments.figures import generate_figure


def test_fig11a_simulated_budget_sweep(benchmark, scale, record_figure):
    result = benchmark.pedantic(
        lambda: generate_figure("fig11a", scale), rounds=1, iterations=1
    )
    record_figure(result)
    for key in result.series:
        vals = result.series_array(key)
        assert np.all((vals >= 0) & (vals <= 1))


def test_fig11b_simulated_optimum(benchmark, scale, record_figure):
    result = benchmark.pedantic(
        lambda: generate_figure("fig11b", scale), rounds=1, iterations=1
    )
    record_figure(result)
    opt = result.series_array("optimal_p")
    # Paper: "almost within 0.2" — the sparse end is the exception (few
    # nodes per broadcast, so a bigger p spends the budget better).
    assert np.nanmax(opt[1:]) <= 0.2 + scale.sim_p_step + 1e-9
    assert opt[0] <= 0.5
    reach = result.series_array("reachability")
    assert np.all(reach > 0.25)
