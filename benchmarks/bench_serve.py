"""Serving-tier performance: warm query latency and store sharding.

The serving claims live in two places.  The end-to-end numbers —
cold-pass coalescing ratio and warm-pass p50 over the 200-task
acceptance workload — come from ``repro-serve --bench`` (run in CI
before the perf gate), which merges ``serve.bench.*`` keys that
``check_perf.py`` bounds with a hard warm-latency limit and a hard
coalescing floor.  The micro benchmarks here price the tier's moving
parts so a regression in either headline number is attributable: a
single warm query through the full asyncio stack, a memory-tier read,
and the sharded backend's put/get round trip against the classic
layout.
"""

import asyncio

import pytest

from repro.analysis.config import AnalysisConfig
from repro.protocols.pbcast import ProbabilisticRelay
from repro.serve import MemoryTier, QueryService, ReadThroughStore
from repro.sim.config import SimulationConfig
from repro.sim.runner import replicate
from repro.store import DiskStore, ShardedBackend, task_key

SEED = 20050113
QUERY = {
    "kind": "bound",
    "rho": 30.0,
    "p": 0.5,
    "seed": SEED,
    "replications": 10,
    "bounds": {"latency": 8.0},
    "n_rings": 4,
}


def test_serve_warm_query(benchmark, tmp_path):
    """One warm query end to end: parse, plan, memory hits, evaluate."""
    service = QueryService(tmp_path / "store")

    async def _one():
        return await service.query(QUERY)

    async def _close():
        await service.close()

    cold = asyncio.run(_one())  # populate disk + memory tiers
    warm = benchmark(lambda: asyncio.run(_one()))
    assert warm == cold
    asyncio.run(_close())


@pytest.fixture(scope="module")
def one_run():
    cfg = SimulationConfig(analysis=AnalysisConfig(n_rings=4, rho=30))
    return replicate(ProbabilisticRelay(0.5), cfg, 1, seed=SEED)


def _key(i: int = 0) -> str:
    cfg = SimulationConfig(analysis=AnalysisConfig(n_rings=4, rho=30))
    return task_key(ProbabilisticRelay(0.5), cfg, SEED + i, "vector", "phase")


def test_serve_memory_tier_get(benchmark, one_run):
    tier = MemoryTier(max_entries=1024)
    tier.put(_key(), list(one_run))
    got = benchmark(lambda: tier.get(_key()))
    assert got is not None


def test_serve_read_through_warm_get(benchmark, tmp_path, one_run):
    store = ReadThroughStore(DiskStore(tmp_path / "store"), max_entries=64)
    store.put(_key(), one_run)
    store.get(_key())
    got = benchmark(lambda: store.get(_key()))
    assert len(got) == 1


@pytest.mark.parametrize("backend_cls", [DiskStore, ShardedBackend])
def test_store_backend_put_get(benchmark, tmp_path, one_run, backend_cls):
    """Sharding must not price the single-writer round trip out."""
    store = backend_cls(tmp_path / "store")
    key = _key()

    def round_trip():
        store.put(key, one_run)
        return store.get(key)

    got = benchmark(round_trip)
    assert len(got) == 1
