"""Ablation 1 (DESIGN.md): the real-K extension of mu.

The paper plugs the *expectation* ``g(x) * p`` into the integer-argument
``mu(K, s)``; we default to linear interpolation of the exact table and
offer a Poisson-mixture alternative that models the transmitter-count
distribution.  This ablation measures how much the choice moves the
figures' headline quantities.
"""

import numpy as np

from repro.analysis.config import AnalysisConfig
from repro.analysis.optimizer import optimal_probability
from repro.utils.tables import format_series
from conftest import RESULTS_DIR


def _optima(mu_method: str, rho_grid, p_grid):
    out_p, out_r = [], []
    for rho in rho_grid:
        cfg = AnalysisConfig(rho=rho, mu_method=mu_method)
        res = optimal_probability(cfg, "reachability_at_latency", 5, p_grid=p_grid)
        out_p.append(res.p)
        out_r.append(res.value)
    return np.array(out_p), np.array(out_r)


def test_mu_extension_ablation(benchmark, scale, record_figure):
    p_grid = scale.analysis_p_grid

    def run():
        interp = _optima("interpolate", scale.rho_grid, p_grid)
        poisson = _optima("poisson", scale.rho_grid, p_grid)
        return interp, poisson

    (ip, ir), (pp, pr) = benchmark.pedantic(run, rounds=1, iterations=1)

    text = format_series(
        "rho",
        list(scale.rho_grid),
        {
            "opt_p_interpolate": ip,
            "opt_p_poisson": pp,
            "reach_interpolate": ir,
            "reach_poisson": pr,
        },
        title="ablation: mu real-K extension (fig4b quantities)",
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_mu.txt").write_text(text + "\n")
    print("\n" + text)

    # The two extensions must agree on the story: the same decaying trend
    # and plateaus within a few points of reachability.  The optima
    # themselves shift by up to ~25% (Poisson's variance softens the
    # collision penalty, favoring slightly larger p) — that shift IS the
    # ablation's finding.
    assert ip[-1] < ip[0] and pp[-1] < pp[0]
    assert np.all(np.abs(ip - pp) <= 0.3 * np.maximum(ip, pp) + 2 * scale.analysis_p_step)
    assert np.all(np.abs(ir - pr) < 0.1)
    # And they are genuinely different models (not accidentally aliased).
    assert np.any(np.abs(ir - pr) > 1e-6)
