"""Microbenchmarks of the analytical recursion.

One `run()` is the unit of work behind every grid point of Figs. 4-7;
a full probability sweep is one curve of a panel-(a) figure.
"""

import numpy as np

from repro.analysis.config import AnalysisConfig
from repro.analysis.ring_model import RingModel
from repro.analysis.carrier_model import CarrierRingModel


def test_model_construction(benchmark):
    model = benchmark(lambda: RingModel(AnalysisConfig(rho=140)))
    assert model.config.rho == 140


def test_run_5_phases_sparse(benchmark):
    model = RingModel(AnalysisConfig(rho=20))
    trace = benchmark(lambda: model.run(0.6, max_phases=5))
    assert trace.phases <= 5


def test_run_5_phases_dense(benchmark):
    model = RingModel(AnalysisConfig(rho=140))
    trace = benchmark(lambda: model.run(0.1, max_phases=5))
    assert trace.phases <= 5


def test_run_to_quiescence_small_p(benchmark):
    model = RingModel(AnalysisConfig(rho=60))
    trace = benchmark(lambda: model.run(0.03, max_phases=200))
    assert trace.phases > 5  # the slow-wave regime


def test_probability_sweep_one_density(benchmark):
    """One curve of a panel-(a) figure, via the batched recursion."""
    model = RingModel(AnalysisConfig(rho=60))
    grid = np.arange(0.05, 1.001, 0.05)

    def sweep():
        return [
            t.reachability_after(5) for t in model.run_batch(grid, max_phases=5)
        ]

    vals = benchmark.pedantic(sweep, rounds=15, warmup_rounds=2, iterations=1)
    assert len(vals) == len(grid)


def test_probability_sweep_scalar_loop(benchmark):
    """The pre-batching per-p loop, kept as the comparison baseline."""
    model = RingModel(AnalysisConfig(rho=60))
    grid = np.arange(0.05, 1.001, 0.05)

    def sweep():
        return [model.run(float(p), max_phases=5).reachability_after(5) for p in grid]

    vals = benchmark.pedantic(sweep, rounds=15, warmup_rounds=2, iterations=1)
    assert len(vals) == len(grid)


def test_quiescent_sweep_dense(benchmark):
    """Full-depth batched sweep at the paper's densest setting."""
    model = RingModel(AnalysisConfig(rho=140))
    grid = np.arange(0.05, 1.001, 0.05)

    traces = benchmark.pedantic(
        lambda: model.run_batch(grid, max_phases=200), rounds=3, iterations=1
    )
    assert len(traces) == len(grid)


def test_carrier_model_run(benchmark):
    model = CarrierRingModel(AnalysisConfig(rho=60))
    trace = benchmark.pedantic(
        lambda: model.run(0.2, max_phases=5), rounds=3, iterations=1
    )
    assert trace.phases <= 5
