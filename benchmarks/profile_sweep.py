#!/usr/bin/env python
"""Profile the canonical 200-task sweep and emit every span artifact.

Runs the same 2-density x 5-probability x 20-replication grid the store
benchmarks use (cold, into a scratch store) with span profiling on, then
writes into ``--out``:

* ``spans.jsonl``      — the raw span stream (``SpanJsonlSink``),
* ``trace.json``       — Chrome trace-event JSON (``chrome://tracing``
  or https://ui.perfetto.dev),
* ``manifest.json``    — the sweep's provenance manifest,
* ``report.md``        — the fused ``repro-report`` output (also printed).

The script asserts the PR's acceptance bar before exiting: the recorded
span tree must account for >=90% of the measured wall time, with store,
engine, and runner phases attributed.  CI runs this and uploads
``trace.json`` as a workflow artifact, so every build leaves behind an
openable picture of where the sweep's seconds went.

Pass ``--warm`` to profile a warm-cache replay instead (the store is
populated unprofiled first) — the comparison walkthrough lives in
EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

from repro.analysis.config import AnalysisConfig
from repro.obs import report as obs_report
from repro.obs import spans as obs_spans
from repro.obs.export import SpanJsonlSink, read_spans_jsonl, write_chrome_trace
from repro.sim.config import SimulationConfig
from repro.sim.runner import sweep_grid

CFG = SimulationConfig(analysis=AnalysisConfig(n_rings=4, rho=40))
RHOS = (30, 40)
PS = (0.1, 0.3, 0.5, 0.7, 0.9)
REPLICATIONS = 20  # 2 x 5 x 20 = 200 tasks
SEED = 20050113


def profile_sweep(out: Path, store: Path, *, warm: bool = False) -> int:
    """Run the profiled sweep; write artifacts into ``out``; return 0/1."""
    out.mkdir(parents=True, exist_ok=True)
    if warm:
        print("populating store (unprofiled cold pass)...", flush=True)
        sweep_grid(CFG, RHOS, PS, REPLICATIONS, seed=SEED, store=store)

    spans_path = out / "spans.jsonl"
    label = "warm" if warm else "cold"
    print(f"profiling {label} 200-task sweep...", flush=True)
    t0 = time.perf_counter()
    with obs_spans.capture_spans(SpanJsonlSink(spans_path)):
        grid = sweep_grid(
            CFG, RHOS, PS, REPLICATIONS, seed=SEED, store=store, manifest_dir=out
        )
    wall = time.perf_counter() - t0
    assert len(grid) == len(RHOS) * len(PS)

    recorded = list(read_spans_jsonl(spans_path))
    roots = [s for s in recorded if s.parent_id is None]
    coverage = sum(r.dur for r in roots) / wall if wall > 0 else 0.0
    cats = {s.cat for s in recorded}
    trace_path = write_chrome_trace(recorded, out / "trace.json")

    print(
        f"{len(recorded)} spans over {wall:.2f}s wall "
        f"({coverage:.1%} attributed); trace at {trace_path}"
    )

    report_text = obs_report.render_report(
        spans_path=spans_path,
        manifest_path=out / "manifest.json",
        markdown=True,
    )
    (out / "report.md").write_text(report_text + "\n")
    print()
    print(report_text)

    ok = True
    if coverage < 0.9:
        print(f"FAIL: span tree covers {coverage:.1%} of wall time (< 90%)")
        ok = False
    # A warm replay never reaches the engine (every task is a cache hit).
    required = {"runner", "store"} if warm else {"runner", "store", "engine"}
    if not required <= cats:
        print(f"FAIL: missing span categories {sorted(required - cats)}")
        ok = False
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default="profile-out",
        help="artifact directory (default: ./profile-out)",
    )
    parser.add_argument(
        "--store",
        default=None,
        help="result-store directory (default: a fresh temp dir = cold run)",
    )
    parser.add_argument(
        "--warm",
        action="store_true",
        help="populate the store first, then profile the warm replay",
    )
    args = parser.parse_args(argv)
    out = Path(args.out)
    if args.store is not None:
        return profile_sweep(out, Path(args.store), warm=args.warm)
    with tempfile.TemporaryDirectory(prefix="repro-profile-") as tmp:
        return profile_sweep(out, Path(tmp) / "store", warm=args.warm)


if __name__ == "__main__":
    sys.exit(main())
