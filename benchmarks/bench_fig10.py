"""Figure 10: simulated broadcast count (energy) for 63% reachability.

Paper headline: the optimal probability stays within 0.2 across
densities and the optimal count is around 80 broadcasts.
"""

import numpy as np

from repro.experiments.figures import generate_figure


def test_fig10a_simulated_energy_sweep(benchmark, scale, record_figure):
    result = benchmark.pedantic(
        lambda: generate_figure("fig10a", scale), rounds=1, iterations=1
    )
    record_figure(result)
    # Broadcast counts increase with p wherever the target is feasible.
    for key in result.series:
        vals = result.series_array(key)
        finite = np.flatnonzero(np.isfinite(vals))
        if len(finite) >= 2:
            assert vals[finite[-1]] > vals[finite[0]]


def test_fig10b_simulated_optimum(benchmark, scale, record_figure):
    result = benchmark.pedantic(
        lambda: generate_figure("fig10b", scale), rounds=1, iterations=1
    )
    record_figure(result)
    opt = result.series_array("optimal_p")
    assert np.nanmax(opt) <= 0.2 + scale.sim_p_step + 1e-9  # paper: within 0.2
    m = result.series_array("broadcasts")
    # Paper: "around 80" — allow a factor-2 band (denominator/grid effects).
    assert np.nanmin(m) > 30 and np.nanmax(m) < 220
