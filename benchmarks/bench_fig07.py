"""Figure 7: analytic reachability of PB_CAM within a 35-broadcast budget.

Paper headline: the optimal probability is near 0 (and matches
Fig. 6(b), its dual), the achievable reachability is ~0.70, and simple
flooding manages < 0.20.
"""

import numpy as np

from repro.experiments.figures import generate_figure


def test_fig7a_budget_sweep(benchmark, scale, record_figure):
    result = benchmark.pedantic(
        lambda: generate_figure("fig7a", scale), rounds=1, iterations=1
    )
    record_figure(result)
    for key in result.series:
        vals = result.series_array(key)
        assert np.all((vals >= 0) & (vals <= 1))


def test_fig7b_optimal_probability(benchmark, scale, record_figure):
    result = benchmark.pedantic(
        lambda: generate_figure("fig7b", scale), rounds=1, iterations=1
    )
    record_figure(result)
    opt = result.series_array("optimal_p")
    assert np.nanmax(opt) <= 0.12 + scale.analysis_p_step
    reach = result.series_array("reachability")
    assert np.all(reach > 0.5)  # paper: ~0.70 plateau
    flood = result.series_array("flooding_reachability")
    assert np.max(flood) < 0.30  # paper: < 0.20
    # The dual of fig6b: optimal probabilities agree within a grid step.
    fig6 = generate_figure("fig6b", scale).series_array("optimal_p")
    assert np.nanmax(np.abs(opt - fig6)) <= scale.analysis_p_step * 2 + 1e-9
