"""Figure 4: analytic reachability of PB_CAM within 5 time phases.

Panel (a) sweeps reachability over ``(rho, p)``; panel (b) extracts the
optimal probability per density.  Paper headline: the optimum decays
rapidly with density while its reachability stays flat (~0.72 in the
paper's numbers; ~0.83 with our integration choices), and flooding at
``rho = 140`` achieves only ~0.55x the optimum.
"""

from repro.experiments.figures import generate_figure


def test_fig4a_reachability_sweep(benchmark, scale, record_figure):
    result = benchmark.pedantic(
        lambda: generate_figure("fig4a", scale), rounds=1, iterations=1
    )
    record_figure(result)
    flat = [v for series in result.series.values() for v in series]
    assert all(0.0 <= v <= 1.0 for v in flat)


def test_fig4b_optimal_probability(benchmark, scale, record_figure):
    result = benchmark.pedantic(
        lambda: generate_figure("fig4b", scale), rounds=1, iterations=1
    )
    record_figure(result)
    opt = result.series_array("optimal_p")
    # The paper's headline trend: optimal p decreases with density.
    assert opt[-1] < opt[0]
    # Flooding vs optimum at the densest point: paper reports ~0.55.
    ratio = result.notes["flooding_over_optimal_at_max_rho"]
    assert 0.4 < ratio < 0.7
