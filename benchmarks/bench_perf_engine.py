"""Replication-batched engine vs per-run loop.

The batched engine's reason to exist: a 32-replication block pays for
one stacked topology build and one channel-resolution pass per slot
instead of 32, so the block must beat 32 sequential
:func:`~repro.sim.engine.run_broadcast` calls by a wide margin (the
acceptance bar is 3x at flooding rho=140).  Timings land in
``BENCH_perf.json`` via ``--perf-json``; the per-run seed floor for
this scenario is recorded there as
``bench_perf_obs.py::test_tracing_disabled_flooding_rho140``
(0.117 s/run at the time the batched path was added).
"""

import numpy as np

from repro.analysis.config import AnalysisConfig
from repro.protocols.pbcast import ProbabilisticRelay, SimpleFlooding
from repro.sim.config import SimulationConfig
from repro.sim.engine import run_broadcast, run_broadcast_batch

CFG_MID = SimulationConfig(analysis=AnalysisConfig(rho=60))
CFG_DENSE = SimulationConfig(analysis=AnalysisConfig(rho=140))
BLOCK = 32


def _seeds():
    return np.random.SeedSequence(0).spawn(BLOCK)


def test_batched_flooding_rho140_block32(benchmark):
    seeds = _seeds()
    results = benchmark.pedantic(
        lambda: run_broadcast_batch(SimpleFlooding(), CFG_DENSE, seeds),
        rounds=3,
        iterations=1,
    )
    assert len(results) == BLOCK
    assert results[0].collisions > 0


def test_per_run_flooding_rho140_block32(benchmark):
    seeds = _seeds()
    results = benchmark.pedantic(
        lambda: [run_broadcast(SimpleFlooding(), CFG_DENSE, s) for s in seeds],
        rounds=3,
        iterations=1,
    )
    assert len(results) == BLOCK
    assert results[0].collisions > 0


def test_batched_pb_rho60_block32(benchmark):
    seeds = _seeds()
    results = benchmark.pedantic(
        lambda: run_broadcast_batch(ProbabilisticRelay(0.2), CFG_MID, seeds),
        rounds=3,
        iterations=1,
    )
    assert len(results) == BLOCK
    assert results[0].reachability > 0.5


def test_per_run_pb_rho60_block32(benchmark):
    seeds = _seeds()
    results = benchmark.pedantic(
        lambda: [run_broadcast(ProbabilisticRelay(0.2), CFG_MID, s) for s in seeds],
        rounds=3,
        iterations=1,
    )
    assert len(results) == BLOCK
    assert results[0].reachability > 0.5
