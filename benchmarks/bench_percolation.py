"""Related-work reproduction: the percolation threshold on grid + CFM.

The paper's survey (Sec. 2, its ref. [32]) reports that for a *grid*
deployment with *collision-free* communication, the critical broadcast
probability sits around 0.59 — the site-percolation threshold of the
square lattice (p_c ≈ 0.5927).  Probability-based broadcast under CFM
is exactly site percolation: a node relays (is "open") with probability
``p``, and the informed set is the source's open cluster plus its
boundary.

This benchmark sweeps ``p`` on a 41x41 lattice and locates the
reachability transition; it must bracket 0.59.
"""

import numpy as np

from repro.analysis.config import AnalysisConfig
from repro.network.grid import GridDeployment
from repro.protocols.pbcast import ProbabilisticRelay
from repro.sim.config import SimulationConfig
from repro.sim.engine import run_broadcast
from repro.utils.tables import format_series
from conftest import RESULTS_DIR

SIDE = 41
P_GRID = (0.40, 0.48, 0.54, 0.58, 0.62, 0.68, 0.80, 1.00)
REPS = 10


def test_grid_cfm_percolation_transition(benchmark):
    dep = GridDeployment(side=SIDE)
    cfg = SimulationConfig(
        analysis=AnalysisConfig(n_rings=dep.n_rings, rho=4.0), channel="cfm"
    )

    def run():
        means = []
        for p in P_GRID:
            reach = [
                run_broadcast(
                    ProbabilisticRelay(p), cfg, (31, i, int(p * 100)), deployment=dep
                ).reachability
                for i in range(REPS)
            ]
            means.append(float(np.mean(reach)))
        return np.array(means)

    means = benchmark.pedantic(run, rounds=1, iterations=1)

    text = format_series(
        "p",
        list(P_GRID),
        {"mean_reachability": means},
        title=f"site percolation on a {SIDE}x{SIDE} grid under CFM "
        f"(paper ref. [32]: threshold ~0.59)",
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "percolation.txt").write_text(text + "\n")
    print("\n" + text)

    # Subcritical: the broadcast dies locally.  Supercritical: it spans.
    assert means[0] < 0.15
    assert means[-2] > 0.9
    # The half-reachability crossing brackets the site threshold ~0.5927.
    crossing = np.interp(0.5, means, P_GRID)
    assert 0.50 < crossing < 0.70
    # Monotone transition (up to Monte-Carlo noise).
    assert np.all(np.diff(means) > -0.05)
