"""Result-store performance: cold sweeps vs warm-cache replays.

The acceptance bar for :mod:`repro.store` is that a warm-cache
``sweep_grid`` over a 200-task grid (2 densities x 5 probabilities x 20
replications) returns bit-identical results at >=10x lower wall time
than the cold run that populated it — the cold/warm medians land in
``BENCH_perf.json`` via ``--perf-json`` so the ratio is on record.
The micro benchmarks price the store's moving parts (keying, packing,
a put/get round trip) so regressions are attributable.
"""

import shutil

import numpy as np
import pytest

from repro.analysis.config import AnalysisConfig
from repro.protocols.pbcast import ProbabilisticRelay
from repro.sim.config import SimulationConfig
from repro.sim.runner import replicate, sweep_grid
from repro.store import DiskStore, pack_result, task_key, unpack_result

CFG = SimulationConfig(analysis=AnalysisConfig(n_rings=4, rho=40))
RHOS = (30, 40)
PS = (0.1, 0.3, 0.5, 0.7, 0.9)
REPLICATIONS = 20  # 2 x 5 x 20 = 200 tasks
SEED = 20050113


def _sweep(store):
    return sweep_grid(
        CFG, RHOS, PS, REPLICATIONS, seed=SEED, workers=1, store=store
    )


def test_store_cold_sweep_200(benchmark, tmp_path):
    """Compute + persist all 200 tasks into an empty store."""
    root = tmp_path / "store"

    def fresh():
        shutil.rmtree(root, ignore_errors=True)
        return (), {}

    grid = benchmark.pedantic(lambda: _sweep(root), setup=fresh, rounds=3)
    assert len(grid) == len(RHOS) * len(PS)


def test_store_warm_sweep_200(benchmark, tmp_path):
    """Serve all 200 tasks from a warm store; verify bit-identity."""
    root = tmp_path / "store"
    cold = _sweep(root)
    warm = benchmark(lambda: _sweep(root))
    for key, runs in cold.items():
        for x, y in zip(runs, warm[key], strict=True):
            np.testing.assert_array_equal(
                x.new_informed_by_slot, y.new_informed_by_slot
            )
            np.testing.assert_array_equal(
                x.broadcasts_by_slot, y.broadcasts_by_slot
            )


@pytest.fixture(scope="module")
def one_run():
    return replicate(ProbabilisticRelay(0.3), CFG, 1, seed=SEED)


def test_store_task_key(benchmark):
    key = benchmark(
        lambda: task_key(ProbabilisticRelay(0.3), CFG, SEED, "vector", "phase")
    )
    assert len(key) == 64


def test_store_pack_unpack_round_trip(benchmark, one_run):
    out = benchmark(lambda: unpack_result(pack_result(one_run[0])))
    assert out.n_field_nodes == one_run[0].n_field_nodes


def test_store_put_get_round_trip(benchmark, tmp_path, one_run):
    store = DiskStore(tmp_path / "store")
    key = task_key(ProbabilisticRelay(0.3), CFG, SEED, "vector", "phase")

    def round_trip():
        store.put(key, one_run)
        return store.get(key)

    got = benchmark(round_trip)
    assert len(got) == 1
