"""Future-work feature: density-aware CFM costs vs measured retransmissions.

The paper's concluding remarks propose pricing CFM's reliable
transmission as a function of node density.  We built that model
(:mod:`repro.analysis.refined`) and a reliable retransmit-until-covered
flooding implementation over CAM (:mod:`repro.sim.reliable`); this
benchmark compares the model's predicted retry factor against the
measured transmissions-per-node, and against plain CFM's density-free
O(N) story.

Finding: the ring-derived prediction tracks measurement at low density;
at higher densities, naive retransmission self-interferes (every retry
adds contention) and the measured cost runs away — precisely the
"significant network traffic" the paper warns the naive CFM
implementation costs.
"""

import numpy as np

from repro.analysis.config import AnalysisConfig
from repro.analysis.refined import DensityAwareCostModel
from repro.sim.config import SimulationConfig
from repro.sim.reliable import ReliableFloodingSimulation
from repro.utils.tables import format_series
from conftest import RESULTS_DIR

RHO_GRID = (6, 10, 14, 18, 22)
REPS = 3
N_RINGS = 3


def test_refined_cfm_validation(benchmark):
    def run():
        predicted, measured, reach = [], [], []
        for rho in RHO_GRID:
            acfg = AnalysisConfig(n_rings=N_RINGS, rho=rho)
            predicted.append(
                DensityAwareCostModel.for_density(acfg).expected_attempts
            )
            sims = [
                ReliableFloodingSimulation(
                    SimulationConfig(analysis=acfg), 7000 + s, max_attempts=64
                )
                for s in range(REPS)
            ]
            results = [s.run() for s in sims]
            measured.append(float(np.mean([s.mean_attempts() for s in sims])))
            reach.append(float(np.mean([r.reachability for r in results])))
        return np.array(predicted), np.array(measured), np.array(reach)

    predicted, measured, reach = benchmark.pedantic(run, rounds=1, iterations=1)

    text = format_series(
        "rho",
        list(RHO_GRID),
        {
            "predicted_attempts (refined CFM)": predicted,
            "measured_attempts (reliable flooding)": measured,
            "plain_cfm_attempts": np.ones(len(RHO_GRID)),
            "reachability": reach,
        },
        title="refined CFM cost model vs measured retransmissions",
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "refined_cfm.txt").write_text(text + "\n")
    print("\n" + text)

    # Reliable flooding always finishes the job (that's its contract).
    assert np.all(reach > 0.95)
    # Both model and measurement grow with density — plain CFM's
    # density-free costs are the thing being refuted.
    assert predicted[-1] > predicted[0]
    assert measured[-1] > measured[0]
    # At the sparse end the prediction is tight (within 2x).
    assert 0.5 < measured[0] / predicted[0] < 2.0
