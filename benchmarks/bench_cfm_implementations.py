"""Three ways to broadcast: the CFM-implementation comparison of Sec. 3.2.1.

The paper sketches two realizations of CFM's reliable broadcast on real
(collision-prone) radios — ACK/retransmit over CSMA, and TDMA-style
multi-packet-reception scheduling — and contrasts them with accepting
loss (CAM + probability-based broadcast).  We built all three; this
benchmark puts them side by side at one density:

* reliable retransmit flooding (`repro.sim.reliable`),
* TDMA flooding over a distance-2 coloring (`repro.models.tdma`),
* PB_CAM at its latency-optimal probability.

The paper's qualitative ordering must hold: the CFM implementations
reach everyone but pay for it — retransmit in energy, TDMA in schedule
latency — while PB_CAM is cheap and fast but caps out below full
reachability.
"""

import numpy as np

from repro.analysis.config import AnalysisConfig
from repro.analysis.optimizer import optimal_probability
from repro.models.tdma import run_tdma_flooding
from repro.network.deployment import DiskDeployment
from repro.protocols.pbcast import ProbabilisticRelay
from repro.sim.config import SimulationConfig
from repro.sim.engine import run_broadcast
from repro.sim.reliable import ReliableFloodingSimulation
from repro.utils.tables import format_table
from conftest import RESULTS_DIR

RHO = 15
N_RINGS = 3
REPS = 3


def test_cfm_implementation_comparison(benchmark):
    acfg = AnalysisConfig(n_rings=N_RINGS, rho=RHO)
    scfg = SimulationConfig(analysis=acfg)
    p_star = optimal_probability(
        acfg, "reachability_at_latency", 5, p_grid=np.arange(0.05, 1.001, 0.05)
    ).p

    def run():
        rows = {"reliable": [], "tdma": [], "pb_cam": []}
        for s in range(REPS):
            rng = np.random.default_rng((99, s))
            dep = DiskDeployment.sample(rho=RHO, n_rings=N_RINGS, rng=rng)

            rel = ReliableFloodingSimulation(scfg, (1, s), deployment=dep)
            rel_res = rel.run()
            rows["reliable"].append(
                (rel_res.reachability, rel_res.broadcasts_total,
                 len(rel_res.new_informed_by_slot) / scfg.slots)
            )

            tdma = run_tdma_flooding(dep)
            rows["tdma"].append(
                (tdma.reachability, tdma.broadcasts, tdma.latency_slots / scfg.slots)
            )

            pb = run_broadcast(ProbabilisticRelay(p_star), scfg, (2, s), deployment=dep)
            rows["pb_cam"].append(
                (pb.reachability, pb.broadcasts_total,
                 len(pb.new_informed_by_slot) / scfg.slots)
            )
        return {k: np.array(v).mean(axis=0) for k, v in rows.items()}

    means = benchmark.pedantic(run, rounds=1, iterations=1)

    table = format_table(
        ["implementation", "reachability", "broadcasts", "latency (phases of s=3)"],
        [
            ("reliable retransmit (CFM impl.)", *means["reliable"]),
            ("TDMA schedule (CFM impl.)", *means["tdma"]),
            (f"PB_CAM p={p_star:.2f}", *means["pb_cam"]),
        ],
        precision=2,
        title=f"three realizations of broadcast at rho={RHO} (mean of {REPS} deployments)",
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "cfm_implementations.txt").write_text(table + "\n")
    print("\n" + table)

    rel_reach, rel_cost, _ = means["reliable"]
    tdma_reach, tdma_cost, tdma_lat = means["tdma"]
    pb_reach, pb_cost, pb_lat = means["pb_cam"]
    # CFM implementations deliver (modulo disconnected stragglers).
    assert rel_reach > 0.97 and tdma_reach > 0.97
    # Their costs: retransmit pays energy, TDMA pays latency.
    assert rel_cost > tdma_cost
    assert tdma_lat > pb_lat
    # PB_CAM is the cheap lossy point.
    assert pb_cost < rel_cost and pb_cost < tdma_cost
    assert pb_reach < 1.0
