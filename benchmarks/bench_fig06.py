"""Figure 6: analytic broadcast count (energy) for 72% reachability.

Paper headline: the energy-optimal probability sits between 0 and 0.1
across the whole density range, the optimal count stays within ~40
broadcasts, and the corresponding latencies run 7-15 phases.
"""

import numpy as np

from repro.experiments.figures import generate_figure


def test_fig6a_energy_sweep(benchmark, scale, record_figure):
    result = benchmark.pedantic(
        lambda: generate_figure("fig6a", scale), rounds=1, iterations=1
    )
    record_figure(result)
    # Energy grows with p once feasible (more relays, same target).
    for key in result.series:
        vals = result.series_array(key)
        finite = np.flatnonzero(np.isfinite(vals))
        assert vals[finite[-1]] > vals[finite[0]]


def test_fig6b_optimal_probability(benchmark, scale, record_figure):
    result = benchmark.pedantic(
        lambda: generate_figure("fig6b", scale), rounds=1, iterations=1
    )
    record_figure(result)
    opt = result.series_array("optimal_p")
    assert np.nanmax(opt) <= 0.12 + scale.analysis_p_step  # paper: (0, 0.1]
    m = result.series_array("broadcasts")
    assert np.nanmax(m) < 60  # paper: within ~40
    lat = result.series_array("latency_at_optimum")
    assert 5.0 <= np.nanmin(lat) and np.nanmax(lat) <= 18.0  # paper: 7-15
