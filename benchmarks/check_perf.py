#!/usr/bin/env python
"""CI guard: fail when a tracked benchmark median regresses past tolerance.

Reads ``BENCH_perf.json`` and compares each key of its ``seed`` section
against the same key in ``current`` (the medians the benchmark run just
merged via ``--perf-json``).  Two baseline forms are supported:

* a number — an absolute pre-optimization median, recorded only where
  the optimized path has enough headroom that machine-to-machine
  variance cannot produce false failures;
* ``"baseline:<other-key>"`` — resolves to the *same run's* current
  median of ``<other-key>``, guarding a relative claim (e.g. the
  replication-batched engine must stay faster than the per-run loop,
  the frontier search faster than the dense grid) independent of the
  machine.

A tracked key missing from ``current`` fails the guard: silently
dropping a benchmark is how regressions hide.

Tolerance: ``--tolerance`` or the ``REPRO_PERF_TOLERANCE`` environment
variable (default 0.25 = current may exceed baseline by 25%).

History: ``--append-history`` additionally appends one JSONL record —
``{"unix": ..., "sha": ..., "medians": {...current...}}`` — to
``BENCH_history.jsonl`` (or ``--history-path``), building the perf
trajectory that ``repro-report --history`` renders as sparklines.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

DEFAULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf.json"
DEFAULT_HISTORY = Path(__file__).resolve().parent.parent / "BENCH_history.jsonl"
ALIAS_PREFIX = "baseline:"

#: Absolute wall-time budgets (seconds), enforced with NO tolerance:
#: these guard "stays in the edit loop" claims rather than relative
#: regressions.  The budgets are set with generous headroom over
#: current medians, so machine variance cannot trip them.
HARD_LIMITS: dict[str, float] = {
    # Whole-program lint pass (warm summary cache) over src/: must stay
    # cheap enough to run as a pre-commit habit.
    "benchmarks/bench_perf_lint.py::test_analyzer_warm_cache_src": 5.0,
    # Warm serve queries answer from the read-through memory tier; the
    # single-digit-millisecond budget is the serving-tier claim
    # (``repro-serve --bench`` merges this key).
    "serve.bench.warm_p50_s": 0.005,
}

#: Lower bounds (dimensionless ratios, NOT seconds), enforced with no
#: tolerance: these guard "the mechanism engages at all" claims.  A
#: tracked key missing from ``current`` fails, same as HARD_LIMITS.
HARD_FLOORS: dict[str, float] = {
    # The benchmark workload holds duplicate queries in flight
    # together; if single-flight coalescing stops engaging, the ratio
    # collapses to 1.0.
    "serve.bench.cold_coalescing_ratio": 1.5,
}


def check(data: dict, tolerance: float) -> list[str]:
    """Return a list of failure messages (empty = guard passes)."""
    current = data.get("current", {})
    seed = data.get("seed", {})
    failures: list[str] = []
    for key, baseline in sorted(seed.items()):
        cur = current.get(key)
        if cur is None:
            failures.append(f"{key}: tracked in 'seed' but absent from 'current'")
            continue
        if isinstance(baseline, str):
            if not baseline.startswith(ALIAS_PREFIX):
                failures.append(f"{key}: malformed baseline spec {baseline!r}")
                continue
            ref = baseline[len(ALIAS_PREFIX) :]
            base = current.get(ref)
            if base is None:
                failures.append(
                    f"{key}: baseline alias {ref!r} absent from 'current'"
                )
                continue
            label = f"alias {ref.split('::')[-1]}"
        else:
            base = float(baseline)
            label = "absolute"
        limit = base * (1.0 + tolerance)
        ok = cur <= limit
        print(
            f"{'ok  ' if ok else 'FAIL'} {key}\n"
            f"     current {cur:.6g}s vs {label} baseline {base:.6g}s "
            f"(limit {limit:.6g}s)"
        )
        if not ok:
            failures.append(
                f"{key}: median {cur:.6g}s exceeds {label} baseline "
                f"{base:.6g}s by more than {tolerance:.0%}"
            )
    for key, limit in sorted(HARD_LIMITS.items()):
        cur = current.get(key)
        if cur is None:
            failures.append(
                f"{key}: tracked in HARD_LIMITS but absent from 'current'"
            )
            continue
        ok = cur <= limit
        print(
            f"{'ok  ' if ok else 'FAIL'} {key}\n"
            f"     current {cur:.6g}s vs hard limit {limit:.6g}s"
        )
        if not ok:
            failures.append(
                f"{key}: median {cur:.6g}s exceeds the absolute budget "
                f"{limit:.6g}s"
            )
    for key, floor in sorted(HARD_FLOORS.items()):
        cur = current.get(key)
        if cur is None:
            failures.append(
                f"{key}: tracked in HARD_FLOORS but absent from 'current'"
            )
            continue
        ok = cur >= floor
        print(
            f"{'ok  ' if ok else 'FAIL'} {key}\n"
            f"     current {cur:.6g} vs hard floor {floor:.6g}"
        )
        if not ok:
            failures.append(
                f"{key}: value {cur:.6g} fell below the floor {floor:.6g}"
            )
    return failures


def git_sha() -> str | None:
    """HEAD commit of the working tree, or None outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return out.stdout.strip() if out.returncode == 0 else None


def append_history(data: dict, path: Path) -> dict:
    """Append this run's medians (+ SHA, timestamp) to the history file."""
    entry = {
        "unix": time.time(),
        "sha": git_sha(),
        "medians": dict(data.get("current", {})),
    }
    with path.open("a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--path", default=str(DEFAULT_PATH), help="BENCH_perf.json location"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed relative regression (default: REPRO_PERF_TOLERANCE or 0.25)",
    )
    parser.add_argument(
        "--append-history",
        action="store_true",
        help="append this run's medians (+ git SHA, timestamp) to the history",
    )
    parser.add_argument(
        "--history-path",
        default=str(DEFAULT_HISTORY),
        help="BENCH_history.jsonl location (with --append-history)",
    )
    args = parser.parse_args(argv)
    tolerance = args.tolerance
    if tolerance is None:
        tolerance = float(os.environ.get("REPRO_PERF_TOLERANCE", "0.25"))

    path = Path(args.path)
    if not path.exists():
        print(f"error: {path} not found (run benchmarks with --perf-json first)")
        return 1
    data = json.loads(path.read_text())

    if args.append_history:
        entry = append_history(data, Path(args.history_path))
        sha = entry["sha"] or "no-git"
        print(
            f"history: appended {len(entry['medians'])} medians "
            f"({str(sha)[:12]}) to {args.history_path}"
        )

    failures = check(data, tolerance)
    tracked = len(data.get("seed", {}))
    if failures:
        print(f"\nperf guard: {len(failures)}/{tracked} tracked keys FAILED")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"\nperf guard: all {tracked} tracked keys within {tolerance:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
