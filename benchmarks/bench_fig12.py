"""Figure 12: flooding success rate vs the optimal broadcast probability.

Paper headline: the ratio optimal-p / success-rate is nearly constant
across densities (the paper reads ~11 off its curves; our definition —
counting still-uninformed receivers, see EXPERIMENTS.md — gives ~10),
suggesting density-free tuning of ``p`` from a locally observable rate.
"""

import numpy as np

from repro.experiments.figures import generate_figure


def test_fig12_success_rate_correlation(benchmark, scale, record_figure):
    result = benchmark.pedantic(
        lambda: generate_figure("fig12", scale), rounds=1, iterations=1
    )
    record_figure(result)
    ratio = result.series_array("ratio")
    # Near-constant: max/min spread under 40%.
    assert ratio.max() / ratio.min() < 1.4
    # In the paper's ballpark (they report ~11).
    assert 7.0 < ratio.mean() < 14.0
    # The rate itself decays with density while optimal p tracks it.
    rate = result.series_array("flooding_success_rate")
    assert np.all(np.diff(rate) < 0)
