"""Engine microbenchmarks: vectorized slot-stepper vs object-level DES.

DESIGN.md ablation 3: the two engines implement identical aligned-slot
semantics; the vectorized one exists because the paper's grids need
thousands of runs.  These benchmarks quantify the gap.
"""

from repro.analysis.config import AnalysisConfig
from repro.protocols.pbcast import ProbabilisticRelay, SimpleFlooding
from repro.sim.config import SimulationConfig
from repro.sim.desimpl import DesBroadcastSimulation
from repro.sim.engine import run_broadcast

CFG_MID = SimulationConfig(analysis=AnalysisConfig(rho=60))
CFG_DENSE = SimulationConfig(analysis=AnalysisConfig(rho=140))


def test_vector_engine_pb_rho60(benchmark):
    res = benchmark(lambda: run_broadcast(ProbabilisticRelay(0.2), CFG_MID, 0))
    assert res.reachability > 0.5


def test_vector_engine_pb_rho140(benchmark):
    res = benchmark.pedantic(
        lambda: run_broadcast(ProbabilisticRelay(0.1), CFG_DENSE, 0),
        rounds=3,
        iterations=1,
    )
    assert res.reachability > 0.5


def test_vector_engine_flooding_rho140(benchmark):
    res = benchmark.pedantic(
        lambda: run_broadcast(SimpleFlooding(), CFG_DENSE, 0),
        rounds=3,
        iterations=1,
    )
    assert res.collisions > 0


def test_des_engine_pb_rho60(benchmark):
    res = benchmark.pedantic(
        lambda: DesBroadcastSimulation(ProbabilisticRelay(0.2), CFG_MID, 0).run(),
        rounds=3,
        iterations=1,
    )
    assert res.reachability > 0.5
