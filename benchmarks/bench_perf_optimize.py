"""Adaptive frontier search vs brute-force dense (rho, p) grid.

The optimizer's reason to exist: answering "best p for this deployment"
must not cost a dense probability grid of Monte-Carlo sweeps.  Both
paths here answer the same query — maximize reachability within the
paper's 5-phase latency budget at rho=140 — on the same 0.05 ladder
with common random numbers (the per-rung :func:`candidate_seed`
streams), so their per-rung simulation results are bit-identical and
the comparison is purely about how many rungs each pays to simulate:

* dense grid: every rung, ``20 * REPLICATIONS`` simulator runs;
* frontier search: analytic surrogate probes the ladder, the simulator
  verifies at most ``MAX_VERIFY`` candidates — >= 10x fewer runs for
  the same optimal p within one ladder step (asserted below, not just
  timed; everything is seeded, so the answers are machine-independent).

Timings land in ``BENCH_perf.json`` via ``--perf-json``; the CI guard
(``check_perf.py``) pins the search median to the dense-grid median of
the same run via a ``baseline:`` alias.
"""

from repro.analysis.config import AnalysisConfig
from repro.analysis.optimizer import default_probability_grid
from repro.optimize import (
    OptimizeQuery,
    better,
    candidate_seed,
    evaluate_runs,
    optimize,
)
from repro.sim.config import SimulationConfig
from repro.sim.runner import sweep_grid
from repro.utils.rng import as_seed_sequence

CFG = SimulationConfig(analysis=AnalysisConfig(rho=140))
RESOLUTION = 0.05
LADDER = default_probability_grid(RESOLUTION)
REPLICATIONS = 6
MAX_VERIFY = 2
SEED = 20050113
BOUNDS = {"latency": 5.0}
OBJECTIVES = ("reachability",)

_DENSE_MEMO: dict[str, float] = {}


def _dense_best_p() -> float:
    """Brute force: simulate every rung, pick the best aggregate."""
    root = as_seed_sequence(SEED)
    grid = sweep_grid(
        CFG,
        [CFG.rho],
        list(LADDER),
        REPLICATIONS,
        seed=root,
        point_seed=lambda _rho, i: candidate_seed(root, i),
    )
    query = OptimizeQuery(bounds=BOUNDS, objectives=OBJECTIVES)
    best = None
    for p in LADDER:
        ev = evaluate_runs(grid[(CFG.rho, float(p))], query, float(p))
        if ev.feasible and (best is None or better(ev, best, query)):
            best = ev
    assert best is not None
    _DENSE_MEMO["p"] = best.p
    return best.p


def _search():
    return optimize(
        CFG,
        bounds=BOUNDS,
        objectives=OBJECTIVES,
        seed=SEED,
        resolution=RESOLUTION,
        replications=REPLICATIONS,
        max_verify=MAX_VERIFY,
    )


def test_dense_grid_pb_rho140(benchmark):
    p = benchmark.pedantic(_dense_best_p, rounds=3, iterations=1)
    assert 0.0 < p <= 1.0


def test_frontier_search_pb_rho140(benchmark):
    result = benchmark.pedantic(_search, rounds=3, iterations=1)
    assert result.best is not None

    # Same answer: the verified optimum within one ladder step of the
    # dense grid's (common random numbers make per-rung results equal).
    dense_p = _DENSE_MEMO.get("p")
    if dense_p is None:  # ran standalone, pay for the reference once
        dense_p = _dense_best_p()
    assert abs(result.best.p - dense_p) <= RESOLUTION + 1e-9

    # The point of the exercise: an order of magnitude fewer MC runs.
    dense_tasks = LADDER.size * REPLICATIONS
    assert result.sim_tasks * 10 <= dense_tasks, (
        f"frontier search paid {result.sim_tasks} simulator runs; "
        f"dense grid pays {dense_tasks}"
    )
