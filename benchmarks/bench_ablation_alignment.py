"""Ablation: the analysis' slot-alignment assumption (paper Sec. 3.1).

PB_CAM needs no synchronization, but the paper *analyzes* it assuming
perfectly aligned slots.  The DES engine can run both ways; this
ablation quantifies what alignment is worth at a mid-density point.
"""

import numpy as np

from repro.analysis.config import AnalysisConfig
from repro.protocols.pbcast import ProbabilisticRelay
from repro.sim.config import SimulationConfig
from repro.sim.desimpl import DesBroadcastSimulation
from repro.utils.tables import format_series
from conftest import RESULTS_DIR


def test_alignment_ablation(benchmark, scale):
    cfg = SimulationConfig(analysis=AnalysisConfig(rho=60))
    p = 0.2
    reps = max(4, scale.replications // 2)

    def run():
        rows = {}
        for mode in ("phase", "jitter"):
            reach = [
                DesBroadcastSimulation(
                    ProbabilisticRelay(p), cfg, 1000 + s, alignment=mode
                )
                .run()
                .reachability
                for s in range(reps)
            ]
            rows[mode] = (float(np.mean(reach)), float(np.std(reach)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    text = format_series(
        "alignment",
        list(rows),
        {
            "mean_final_reachability": [v[0] for v in rows.values()],
            "std": [v[1] for v in rows.values()],
        },
        title=f"ablation: slot alignment (rho=60, p={p}, DES engine)",
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_alignment.txt").write_text(text + "\n")
    print("\n" + text)

    # Jitter decorrelates contention; final reachability stays in the
    # same band — the alignment assumption is benign at this density.
    assert abs(rows["phase"][0] - rows["jitter"][0]) < 0.15
