#!/usr/bin/env python
"""Watch the broadcast wave: terminal visualization of PB_CAM dynamics.

Renders, for one density:

* the ring-by-phase heatmap of the analytical wave at three broadcast
  probabilities (too small / optimal / flooding) — the wavefront
  stretching, marching, and stalling;
* the Fig. 4(a) bell curve as an ASCII chart;
* one simulated deployment with the informed set drawn on the field.

Everything is plain text (`repro.viz`); no plotting backend needed.
"""

import numpy as np

from repro import (
    AnalysisConfig,
    ProbabilisticRelay,
    RingModel,
    SimulationConfig,
    optimal_probability,
    run_broadcast,
)
from repro.network import DiskDeployment
from repro.viz import field_map, line_chart, sparkline, wave_heatmap

RHO = 80
PHASES = 5


def main() -> None:
    cfg = AnalysisConfig(n_rings=5, rho=RHO)
    model = RingModel(cfg)
    best = optimal_probability(cfg, "reachability_at_latency", PHASES)

    print(f"=== the wave at three probabilities (rho={RHO}) ===\n")
    for label, p in [
        ("starved (p = p*/8)", best.p / 8),
        (f"optimal (p = {best.p:.2f})", best.p),
        ("flooding (p = 1)", 1.0),
    ]:
        trace = model.run(p, max_phases=12)
        print(f"--- {label} ---")
        print(wave_heatmap(trace))
        print(f"per-phase arrivals: {sparkline(trace.new_by_phase)}\n")

    print(f"=== Fig. 4(a) bell curve at rho={RHO} ===\n")
    grid = np.arange(0.02, 1.001, 0.02)
    reach = [model.run(p, max_phases=PHASES).reachability_after(PHASES) for p in grid]
    print(
        line_chart(
            grid,
            {"reach@5": reach},
            width=60,
            height=12,
            title=f"reachability within {PHASES} phases vs p",
            y_label="reach",
        )
    )

    print(f"\n=== one simulated run at the optimum (p={best.p:.2f}) ===\n")
    rng = np.random.default_rng(2005)
    dep = DiskDeployment.sample(rho=RHO, n_rings=5, rng=rng)
    sim_cfg = SimulationConfig(analysis=cfg)
    res = run_broadcast(ProbabilisticRelay(best.p), sim_cfg, 7, deployment=dep)
    print(field_map(dep, res.informed_mask, width=71))
    print(
        f"\nsimulated: reachability {res.reachability:.3f}, "
        f"{res.broadcasts_total} broadcasts, {res.collisions} collision events"
    )


if __name__ == "__main__":
    main()
