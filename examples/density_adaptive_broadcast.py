#!/usr/bin/env python
"""Density-free tuning from the Fig. 12 correlation.

The paper's concluding observation: the ratio between the optimal
broadcast probability and the *success rate* of flooding broadcasts is
nearly constant across densities.  A node that can estimate the local
success rate can therefore set ``p ≈ RATIO * success_rate`` without
knowing the deployment density at all — valuable when density varies in
space or time.

This example plays that strategy: it calibrates the ratio at one
density, then applies it blind at other densities and compares the
achieved reachability against the oracle optimum.
"""

from repro import AnalysisConfig, flooding_success_rate, optimal_probability
from repro.analysis import RingModel
from repro.utils.tables import format_table

CALIBRATION_RHO = 60
TEST_RHOS = (20, 40, 80, 100, 120, 140)
PHASES = 5


def main() -> None:
    # Calibrate the ratio at one known density.
    cal_cfg = AnalysisConfig(rho=CALIBRATION_RHO)
    cal_opt = optimal_probability(cal_cfg, "reachability_at_latency", PHASES)
    cal_rate = flooding_success_rate(cal_cfg).rate
    ratio = cal_opt.p / cal_rate
    print(
        f"calibration at rho={CALIBRATION_RHO}: p*={cal_opt.p:.2f}, "
        f"success rate={cal_rate:.4f}, ratio={ratio:.1f}\n"
    )

    rows = []
    for rho in TEST_RHOS:
        cfg = AnalysisConfig(rho=rho)
        # What a density-oblivious node would do: observe the flooding
        # success rate, multiply by the calibrated ratio.
        rate = flooding_success_rate(cfg).rate
        p_adaptive = min(1.0, ratio * rate)
        reach_adaptive = (
            RingModel(cfg).run(p_adaptive, max_phases=PHASES).reachability_after(PHASES)
        )
        # The oracle that knows rho exactly.
        oracle = optimal_probability(cfg, "reachability_at_latency", PHASES)
        rows.append(
            (
                rho,
                rate,
                p_adaptive,
                oracle.p,
                reach_adaptive,
                oracle.value,
                reach_adaptive / oracle.value,
            )
        )

    print(
        format_table(
            [
                "rho",
                "success rate",
                "adaptive p",
                "oracle p",
                "adaptive reach",
                "oracle reach",
                "efficiency",
            ],
            rows,
            precision=3,
            title="density-free p from the Fig. 12 ratio (analysis, 5 phases)",
        )
    )
    print(
        "\nThe blind strategy recovers ~99% of the oracle's reachability"
        "\nacross a 7x density range — the practical payoff of Fig. 12."
    )


if __name__ == "__main__":
    main()
