#!/usr/bin/env python
"""Data gathering under CAM: the PB_CAM lesson applied to unicast.

The paper's models cover broadcast *and* unicast (Sec. 3.2); this
example exercises the unicast half on the workload its related-work
section cites most — convergecast data gathering.  Every node sends one
report up a routing tree to the base station; under CAM an upward hop
succeeds only in a collision-free slot.

The experiment sweeps the per-phase transmission probability ``q`` and
shows the same phenomenon as the broadcast case: saturated contention
(q = 1) livelocks in dense networks, while ``q ≈ s / rho`` — the
analogue of the paper's optimal broadcast probability — delivers
everything at minimal cost.
"""

from repro import AnalysisConfig, SimulationConfig
from repro.protocols import run_convergecast
from repro.utils.tables import format_table

RHO = 25
Q_VALUES = (1.0, 0.5, 0.25, 0.12, None)  # None = auto (s / mean degree)


def main() -> None:
    cfg = SimulationConfig(analysis=AnalysisConfig(n_rings=3, rho=RHO))
    rows = []
    for q in Q_VALUES:
        res = run_convergecast(
            cfg,
            seed=11,
            tx_probability=q,
            max_phases=1500,
            max_attempts_per_hop=150,
        )
        label = "auto (s/degree)" if q is None else f"{q:.2f}"
        rows.append(
            (
                label,
                res.delivery_ratio,
                res.transmissions,
                res.transmissions / max(res.delivered, 1),
                res.phases,
            )
        )

    print(
        format_table(
            ["q per phase", "delivery ratio", "transmissions", "tx per report", "phases"],
            rows,
            precision=3,
            title=f"convergecast under CAM (rho={RHO}, s=3, one report per node)",
        )
    )
    print(
        "\nSaturated contention is the unicast broadcast storm; thinning to"
        "\n~one contender per slot per neighborhood (the PB_CAM optimum"
        "\ncarried over) restores full delivery at the lowest cost."
    )


if __name__ == "__main__":
    main()
