#!/usr/bin/env python
"""Appendix A in practice: how carrier sensing shifts the optimal p.

When collisions are triggered by any transmitter within carrier-sense
range (typically 2r) rather than only within transmission range, the
effective contention around every receiver roughly quadruples.  This
study runs the carrier-sense ring model side by side with the base
model and shows where the optimum moves — then cross-checks one point
in the carrier-sense simulator.
"""

import numpy as np

from repro import (
    AnalysisConfig,
    CarrierRingModel,
    ProbabilisticRelay,
    RingModel,
    SimulationConfig,
    aggregate_metric,
    optimal_probability,
    replicate,
)
from repro.utils.tables import format_table

RHO_GRID = (20, 60, 100)
PHASES = 5


def main() -> None:
    grid = np.arange(0.02, 1.001, 0.02)
    rows = []
    for rho in RHO_GRID:
        cfg = AnalysisConfig(n_rings=5, rho=rho)
        base = optimal_probability(
            RingModel(cfg), "reachability_at_latency", PHASES, p_grid=grid
        )
        cs = optimal_probability(
            CarrierRingModel(cfg), "reachability_at_latency", PHASES, p_grid=grid
        )
        rows.append((rho, base.p, cs.p, base.value, cs.value))

    print(
        format_table(
            ["rho", "p* (tx-range)", "p* (carrier)", "reach (tx)", "reach (carrier)"],
            rows,
            precision=3,
            title="optimal probability with and without carrier-sense collisions",
        )
    )

    # Cross-check one configuration in the simulator.
    rho, p = 60, 0.2
    cfg = SimulationConfig(analysis=AnalysisConfig(n_rings=5, rho=rho))
    base_runs = replicate(ProbabilisticRelay(p), cfg, 10, seed=1)
    cs_runs = replicate(
        ProbabilisticRelay(p), cfg.with_(carrier_sense=True), 10, seed=1
    )
    base_r = aggregate_metric(
        base_runs, lambda r: r.reachability_after_phases(PHASES)
    )
    cs_r = aggregate_metric(cs_runs, lambda r: r.reachability_after_phases(PHASES))
    print(
        f"\nsimulated reach@{PHASES} phases at rho={rho}, p={p}: "
        f"tx-range {base_r.mean:.3f} vs carrier-sense {cs_r.mean:.3f}"
    )
    print(
        "\nCarrier sensing scales the collision term, not the shape: the"
        "\noptimum shifts down but still decays with density — the paper's"
        "\nAppendix A claim."
    )


if __name__ == "__main__":
    main()
