#!/usr/bin/env python
"""The broadcast-storm story: simple flooding vs tuned PB_CAM vs CFM.

Reproduces the paper's motivating comparison in one table.  For each
density, it simulates

* simple flooding under CFM — the idealized model where flooding is
  'optimal' (reachability 1 in P phases),
* simple flooding under CAM — the same protocol in a collision-aware
  world (the broadcast storm),
* PB_CAM with the analytically tuned probability.

Runs ~1 minute serially.
"""

import numpy as np

from repro import (
    AnalysisConfig,
    SimpleFlooding,
    SimulationConfig,
    aggregate_metric,
    optimal_probability,
    replicate,
    simulate_pb,
)
from repro.utils.tables import format_table

RHO_GRID = (20, 60, 100, 140)
PHASES = 5
REPS = 12


def mean_reach(runs):
    return aggregate_metric(
        runs, lambda r: r.reachability_after_phases(PHASES)
    ).mean


def main() -> None:
    rows = []
    for rho in RHO_GRID:
        cfg = AnalysisConfig(n_rings=5, rho=rho)
        p_star = optimal_probability(cfg, "reachability_at_latency", PHASES).p

        cam = SimulationConfig(analysis=cfg)
        cfm = cam.with_(channel="cfm")

        flood_cfm = mean_reach(replicate(SimpleFlooding(), cfm, REPS, seed=rho))
        flood_cam_runs = replicate(SimpleFlooding(), cam, REPS, seed=rho)
        flood_cam = mean_reach(flood_cam_runs)
        pb_runs = simulate_pb(cam, p_star, replications=REPS, seed=rho)
        pb_cam = mean_reach(pb_runs)

        rows.append(
            (
                rho,
                flood_cfm,
                flood_cam,
                pb_cam,
                p_star,
                float(np.mean([r.broadcasts_total for r in flood_cam_runs])),
                float(np.mean([r.broadcasts_total for r in pb_runs])),
            )
        )

    print(
        format_table(
            [
                "rho",
                "flood/CFM reach",
                "flood/CAM reach",
                "PB_CAM reach",
                "tuned p",
                "flood bcasts",
                "PB bcasts",
            ],
            rows,
            precision=3,
            title=f"reachability within {PHASES} phases ({REPS} runs each)",
        )
    )
    print(
        "\nCFM says flooding is perfect; CAM shows the broadcast storm"
        "\n(reachability collapsing with density); a tuned p restores the"
        "\nplateau at a fraction of the energy — the paper's case for"
        "\ncollision-aware modeling."
    )


if __name__ == "__main__":
    main()
